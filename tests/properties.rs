//! Cross-crate property tests: UDP-compiled kernels are extensionally
//! equal to their CPU baselines on randomized inputs.

use proptest::prelude::*;
use udp_asm::LayoutOptions;
use udp_codecs::csv::write_csv;
use udp_codecs::HuffmanTree;
use udp_sim::{Lane, LaneConfig};

fn arb_csv_table() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
    let field = proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'b'),
            Just(b'z'),
            Just(b','),
            Just(b'"'),
            Just(b'\n'),
            Just(b' '),
        ],
        0..6,
    );
    proptest::collection::vec(proptest::collection::vec(field, 1..5), 1..6).prop_map(|t| {
        t.into_iter()
            .filter(|row| !(row.len() == 1 && row[0].is_empty()))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn udp_csv_equals_libcsv_baseline(table in arb_csv_table()) {
        prop_assume!(!table.is_empty());
        let bytes = write_csv(&table);
        let img = udp_compilers::csv::csv_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let rep = Lane::run_program(&img, &bytes, &LaneConfig::default());
        prop_assert_eq!(rep.output, udp_compilers::csv::baseline_framing(&bytes));
    }

    #[test]
    fn udp_huffman_decode_inverts_encode(data in proptest::collection::vec(any::<u8>(), 2..1500)) {
        let tree = HuffmanTree::from_data(&data);
        let (bits, nbits) = tree.encode(&data);
        let stride = udp_compilers::huffman::ssref_stride(&tree);
        let padded = udp_compilers::huffman::pad_for_stride(&bits, nbits, stride);
        let img = udp_compilers::huffman::huffman_decode_to_udp(
            &tree,
            udp_compilers::huffman::SymbolMode::RegisterRefill,
        )
        .assemble(&LayoutOptions::with_banks(64))
        .unwrap();
        let rep = Lane::run_program(&img, &padded, &LaneConfig::default());
        prop_assert_eq!(
            udp_compilers::huffman::truncate_decoded(rep.output, data.len()),
            data
        );
    }

    #[test]
    fn udp_snappy_compressor_streams_are_always_valid(
        data in proptest::collection::vec(prop_oneof![4 => Just(b'a'), 2 => Just(b'b'), 1 => any::<u8>()], 0..3000)
    ) {
        let img = udp_compilers::snappy::snappy_compress_to_udp()
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let staging = udp_sim::engine::Staging {
            segments: vec![],
            regs: vec![(udp_isa::Reg::new(2), data.len() as u32)],
        };
        let (rep, _) = Lane::run_program_capture(&img, &data, &staging, &LaneConfig::default());
        let framed = udp_compilers::snappy::frame_compressed(data.len(), &rep.output);
        prop_assert_eq!(udp_codecs::snappy_decompress(&framed).unwrap(), data);
    }

    #[test]
    fn udp_decompressor_accepts_cpu_streams(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
        let stream = udp_codecs::snappy_compress(&data);
        let img = udp_compilers::snappy::snappy_decompress_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let rep = Lane::run_program(&img, &stream, &LaneConfig::default());
        prop_assert_eq!(rep.output, data);
    }

    #[test]
    fn udp_histogram_equals_gsl_baseline(
        vals in proptest::collection::vec(-100f32..100f32, 1..400),
        bins in 2usize..12,
    ) {
        let hist = udp_codecs::Histogram::uniform(-50.0, 50.0, bins);
        let le: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (pb, layout) = udp_compilers::histogram::histogram_to_udp(&hist);
        let img = pb.assemble(&LayoutOptions::with_banks(2)).unwrap();
        let be = udp_compilers::histogram::to_big_endian(&le);
        let (_, mem) = Lane::run_program_capture(
            &img, &be, &udp_sim::engine::Staging::default(), &LaneConfig::default());
        let got = udp_compilers::histogram::read_bins(&mem, &layout);
        let mut base = udp_codecs::Histogram::with_edges(hist.edges().to_vec());
        base.add_all(&vals);
        let mut expect: Vec<u64> = base.counts().to_vec();
        expect.push(base.outliers());
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn udp_trigger_equals_lut_baseline(
        width in 2u32..=13,
        samples in proptest::collection::vec(any::<u8>(), 0..800),
    ) {
        let fsm = udp_codecs::TriggerFsm::new(64, 192, width);
        let img = udp_compilers::trigger::trigger_to_udp(&fsm)
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let rep = Lane::run_program(&img, &samples, &LaneConfig::default());
        let got: Vec<usize> = rep.reports.iter().map(|&(_, p)| p as usize - 1).collect();
        let lut = udp_codecs::TriggerLut::build(fsm);
        prop_assert_eq!(got, lut.run(&samples));
    }

    #[test]
    fn udp_dfa_equals_cpu_dfa(
        input in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..200),
    ) {
        let asts = vec![
            udp_automata::Regex::parse("ab+c").unwrap(),
            udp_automata::Regex::parse("(a|b)c").unwrap(),
        ];
        let dfa = udp_automata::Dfa::determinize(&udp_automata::Nfa::scanner(&asts)).minimize();
        let img = udp_compilers::automata::dfa_to_udp(&dfa)
            .assemble(&LayoutOptions::with_banks(4))
            .unwrap();
        let rep = Lane::run_program(&img, &input, &LaneConfig::default());
        let mut got = rep.reports;
        got.sort_unstable();
        got.dedup();
        let mut expect: Vec<(u16, u32)> = dfa
            .find_all(&input)
            .into_iter()
            .filter(|&(_, e)| e > 0)
            .map(|(id, e)| (id, e as u32))
            .collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }
}

//! Integration tests for the beyond-the-paper capabilities: JSON/XML
//! tokenization, bit-pack, RLE decode, D²FA, counting automata, the
//! text assembler, and the disassembler — each exercised across crates.

use udp_asm::{disassemble, parse_asm, LayoutOptions};
use udp_sim::{Lane, LaneConfig, LaneStatus};
use udp_workloads as w;

#[test]
fn json_device_run_matches_baseline() {
    let data = w::ndjson_events(20_000, 200);
    let report = udp::kernels::json::run(&data); // verifies internally
    assert_eq!(report.lanes, 64);
    assert!(report.lane_rate_mbps > 200.0);
}

#[test]
fn xml_device_run_matches_baseline() {
    let data = w::xml_records(20_000, 201);
    let report = udp::kernels::xml::run(&data);
    assert!(report.lane_rate_mbps > 200.0);
}

#[test]
fn bitpack_round_trips_dictionary_codes() {
    // Full chain: dictionary-encode a CSV column, bit-pack the codes on
    // the UDP, unpack them on the UDP, decode back to values.
    let table = w::crimes_csv(30_000, 202);
    let rows = udp_codecs::CsvParser::new().parse(&table);
    let col: Vec<Vec<u8>> = rows.iter().skip(1).map(|r| r[5].clone()).collect();
    let mut enc = udp_codecs::DictionaryEncoder::default();
    let codes = enc.encode_column(&col);
    let width = udp_codecs::bits_needed(&codes);
    assert!(width <= 8, "crimes attributes are low-cardinality");

    let bytes: Vec<u8> = codes.iter().map(|&c| c as u8).collect();
    let packed = udp::kernels::bitpack::run_encode(&bytes, width);
    assert!(packed.bytes_in > 0);
    let cpu_packed = udp_codecs::bitpack_encode(&codes, width);
    let unpacked = udp::kernels::bitpack::run_decode(&cpu_packed, width, codes.len());
    assert!(unpacked.lane_rate_mbps > 0.0);
}

#[test]
fn dict_rle_output_expands_on_the_udp() {
    // dictionary-RLE runs → RLE-decode program → original code stream.
    let runs: Vec<(u8, u32)> = vec![(0, 3), (1, 1), (0, 2), (2, 5)];
    let input = udp_compilers::rle::encode_runs(&runs);
    let img = udp_compilers::rle::rle_decode_to_udp()
        .assemble(&LayoutOptions::with_banks(1))
        .unwrap();
    let rep = Lane::run_program(&img, &input, &LaneConfig::default());
    assert_eq!(rep.status, LaneStatus::Halted(0));
    assert_eq!(rep.output, vec![0, 0, 0, 1, 0, 0, 2, 2, 2, 2, 2]);
}

#[test]
fn d2fa_scans_nids_traffic_like_the_dfa() {
    let pats = w::nids_literals(16, 203);
    let asts: Vec<udp_automata::Regex> = pats
        .iter()
        .map(|p| udp_automata::Regex::literal(p))
        .collect();
    let dfa = udp_automata::Dfa::determinize(&udp_automata::Nfa::scanner(&asts)).minimize();
    let d2 = udp_automata::D2fa::from_dfa(&dfa);
    let (trace, _) = w::traffic_with_matches(&pats, 12_000, 700, 203);
    assert_eq!(d2.find_all(&trace), dfa.find_all(&trace));

    let img = udp_compilers::automata::d2fa_to_udp(&d2)
        .assemble(&LayoutOptions::with_banks(16))
        .unwrap();
    let rep = Lane::run_program(&img, &trace, &LaneConfig::default());
    let mut got = rep.reports;
    got.sort_unstable();
    got.dedup();
    let mut expect: Vec<(u16, u32)> = dfa
        .find_all(&trace)
        .into_iter()
        .filter(|&(_, e)| e > 0)
        .map(|(id, e)| (id, e as u32))
        .collect();
    expect.sort_unstable();
    expect.dedup();
    assert_eq!(got, expect);
}

#[test]
fn counting_pattern_on_real_traffic_shape() {
    let p = udp_compilers::counting::CountedPattern {
        prefix: b"Host: srv".to_vec(),
        class: udp_automata::ByteSet::range(b'a', b'z'),
        min: 2,
        max: 8,
        suffix: b".example".to_vec(),
    }
    .validated();
    let (trace, _) = w::traffic_with_matches(&[], 12_000, 1000, 204);
    let expect = p.find_all(&trace);
    assert!(!expect.is_empty(), "background traffic contains hosts");

    let img = udp_compilers::counting::counted_to_udp(&p)
        .assemble(&LayoutOptions::with_banks(2))
        .unwrap();
    let rep = Lane::run_program(&img, &trace, &LaneConfig::default());
    let got: Vec<usize> = rep.reports.iter().map(|&(_, pos)| pos as usize).collect();
    assert_eq!(got, expect);
}

#[test]
fn text_assembly_through_the_whole_stack() {
    let src = r#"
; classify digits vs others
symbols 8
state s:
  '0'-'9'  -> s { EmitB r0, r12, #68 }   ; 'D'
  fallback -> s { EmitB r0, r12, #46 }   ; '.'
entry s
"#;
    let b = parse_asm(src).unwrap();
    let img = b.assemble(&LayoutOptions::default()).unwrap();
    let rep = Lane::run_program(&img, b"a1b22", &LaneConfig::default());
    assert_eq!(rep.output, b".D.DD");
    // Disassembly names the arcs we wrote.
    let text = disassemble(&img);
    assert!(text.contains("EmitB"));
    assert!(text.contains("['0']"));
}

#[test]
fn disassembly_of_generated_programs_is_well_formed() {
    let img = udp_compilers::csv::csv_to_udp()
        .assemble(&LayoutOptions::with_banks(1))
        .unwrap();
    let text = disassemble(&img);
    assert!(text.lines().count() > 100);
    assert!(udp_asm::disasm::transition_targets_in_range(&img));
}

//! Cross-crate integration tests: full compile → EffCLiP layout →
//! device execution pipelines checked against the CPU baselines.

use udp::kernels;
use udp_asm::LayoutOptions;
use udp_codecs::{snappy_decompress, CsvParser, HuffmanTree};
use udp_isa::Reg;
use udp_sim::engine::Staging;
use udp_sim::{Lane, LaneConfig, Udp, UdpRunOptions};
use udp_workloads as w;

#[test]
fn csv_device_run_matches_baseline_fields() {
    let data = w::food_inspection_csv(30_000, 100);
    let report = kernels::csv::run(&data); // panics on mismatch
    assert_eq!(report.lanes, 64);
    assert!(report.wall_cycles > 0);
}

#[test]
fn udp_snappy_stream_decompresses_with_udp_decompressor() {
    // Compress on the UDP, decompress on the UDP: both programs agree
    // with each other and with the CPU codec.
    let block = w::canterbury_like(w::Entropy::Low, 20_000, 101);
    let comp_img = udp_compilers::snappy::snappy_compress_to_udp()
        .assemble(&LayoutOptions::with_banks(2))
        .unwrap();
    let staging = Staging {
        segments: vec![],
        regs: vec![(Reg::new(2), block.len() as u32)],
    };
    let (comp, _) = Lane::run_program_capture(&comp_img, &block, &staging, &LaneConfig::default());
    let framed = udp_compilers::snappy::frame_compressed(block.len(), &comp.output);
    assert_eq!(snappy_decompress(&framed).unwrap(), block);

    let dec_img = udp_compilers::snappy::snappy_decompress_to_udp()
        .assemble(&LayoutOptions::with_banks(1))
        .unwrap();
    let dec = Lane::run_program(&dec_img, &framed, &LaneConfig::default());
    assert_eq!(dec.output, block);
}

#[test]
fn huffman_udp_pipeline_round_trips_bdbench() {
    let data = w::bdbench_block(0, 16_000, 102);
    let enc = kernels::huffman::run_encode(&data);
    let dec = kernels::huffman::run_decode(&data);
    assert!(enc.lane_rate_mbps > 0.0 && dec.lane_rate_mbps > 0.0);
}

#[test]
fn engine_runs_multiple_waves_beyond_64_chunks() {
    let img = udp_compilers::csv::csv_to_udp()
        .assemble(&LayoutOptions::with_banks(1))
        .unwrap();
    let chunk = w::crimes_csv(2_000, 103);
    let inputs: Vec<&[u8]> = vec![&chunk; 130]; // three waves
    let mut udp = Udp::new();
    let rep = udp.run_data_parallel(
        &img,
        &inputs,
        &Staging::default(),
        &UdpRunOptions::default(),
    );
    assert_eq!(rep.lanes.len(), 130);
    let single = rep.lanes[0].cycles;
    assert_eq!(rep.wall_cycles, single * 3, "three data-parallel waves");
}

#[test]
fn restricted_addressing_lets_large_programs_run_with_fewer_lanes() {
    // A trigger FSM with wide pulse counting spans > 1 bank.
    let fsm = udp_codecs::TriggerFsm::new(64, 192, 13);
    let pb = udp_compilers::trigger::trigger_to_udp(&fsm);
    let img = pb.assemble(&LayoutOptions::with_banks(2)).unwrap();
    assert!(img.stats.span_words > 4096 || img.stats.span_words > 3000);
    let lanes = Udp::max_lanes(&img, 2);
    assert_eq!(lanes, 32, "2-bank windows halve lane parallelism");
}

#[test]
fn histogram_counts_survive_the_full_device_path() {
    let le = w::latitude_stream(4_000, 104);
    let hist = udp_codecs::Histogram::uniform(41.6, 42.0, 10);
    let report = kernels::histogram::run(&le, &hist); // verifies internally
    assert!(report.lane_rate_mbps > 100.0);
}

#[test]
fn dictionary_pipeline_from_real_csv_column() {
    let table = w::crimes_csv(60_000, 105);
    let rows = CsvParser::new().parse(&table);
    let col: Vec<Vec<u8>> = rows.iter().skip(1).map(|r| r[5].clone()).collect();
    let report = kernels::dict::run(&col[..1500.min(col.len())]);
    assert!(report.lanes >= 32);
}

#[test]
fn pattern_models_agree_on_nids_traffic() {
    let pats = w::nids_literals(24, 106);
    let (trace, planted) = w::traffic_with_matches(&pats, 16_000, 600, 106);
    assert!(planted > 0);
    let adfa = kernels::patterns::run_adfa(&pats, &trace);
    // Build equivalent regexes and scan with the DFA model.
    let pats_re: Vec<String> = pats
        .iter()
        .map(|p| {
            p.iter()
                .map(|&b| {
                    if b.is_ascii_alphanumeric() {
                        (b as char).to_string()
                    } else {
                        format!("\\x{b:02x}")
                    }
                })
                .collect()
        })
        .collect();
    let refs: Vec<&str> = pats_re.iter().map(String::as_str).collect();
    let dfa = kernels::patterns::run_dfa(&refs, &trace);
    assert!(adfa.lane_rate_mbps > 0.0 && dfa.lane_rate_mbps > 0.0);
}

#[test]
fn etl_pipeline_to_udp_offload_end_to_end() {
    let raw = w::lineitem_csv(80_000, 107);
    let compressed = udp_codecs::snappy_compress(&raw);
    let (store, rep) = udp_etl::run_cpu_etl(&compressed);
    assert!(store.rows > 50);
    let (cpu_only, offloaded) = udp_etl::udp_offload_model(
        &rep,
        udp_etl::OffloadRates {
            decompress_mbps: 1000.0,
            parse_mbps: 500.0,
        },
    );
    assert!(offloaded <= cpu_only);
}

#[test]
fn huffman_tree_shapes_drive_bank_allocation() {
    // Byte-diverse data (crawl) builds a big tree; the decoder image
    // may need multiple banks — exactly the §5.2 "craw" scenario.
    let data = w::bdbench_block(0, 60_000, 108);
    let tree = HuffmanTree::from_data(&data);
    let pb = udp_compilers::huffman::huffman_decode_to_udp(
        &tree,
        udp_compilers::huffman::SymbolMode::RegisterRefill,
    );
    let img = pb.assemble(&LayoutOptions::with_banks(64)).unwrap();
    let banks = img.stats.span_words.div_ceil(4096);
    assert!(banks >= 1);
    assert!(Udp::max_lanes(&img, banks) <= 64);
}

//! Write a brand-new UDP kernel in assembly text — the programmability
//! pitch of the paper (§2.2: "can be programmed to support new or
//! application-specific algorithms"), end to end.
//!
//! The kernel is a run-length *summarizer* for sensor streams: it emits
//! one `(byte, run-length)` pair per maximal run, using the symbol
//! latch, a register counter, and flagged dispatch — no Rust translator
//! involved.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use udp::LayoutOptions;
use udp_sim::{Lane, LaneConfig};

const KERNEL: &str = r#"
; Run-length summarizer:
;   r1 = current run byte, r2 = run length, r4 = "have a run" flag.
; Every input byte goes to `classify`, which compares it to the current
; run byte and flag-dispatches: same -> extend, different -> flush.
symbols 8

state scan:
  fallback -> classify { SEq r0, r1, r13 ; Mov r3, r0, r13 }

state classify: flagged
  1 -> scan { AddI r2, r2, #1 }                                  ; extend
  0 -> flush { Mov r0, r0, r4 }

state flush: flagged
  1 -> scan { EmitB r0, r1, #0 ; EmitB r0, r2, #0 ; Mov r1, r0, r3 ; MovI r2, r0, #1 }
  0 -> scan { Mov r1, r0, r3 ; MovI r2, r0, #1 ; MovI r4, r0, #1 }           ; first run

entry scan
"#;

fn main() {
    let builder = udp_asm::parse_asm(KERNEL).expect("kernel parses");
    let image = builder
        .assemble(&LayoutOptions::default())
        .expect("kernel fits one bank");
    println!(
        "assembled custom kernel: {} states, {} bytes",
        image.stats.n_states,
        image.stats.code_bytes()
    );

    let input = b"aaaabbcddddda";
    let rep = Lane::run_program(&image, input, &LaneConfig::default());
    println!(
        "input {:?} -> {} cycles, output pairs:",
        String::from_utf8_lossy(input),
        rep.cycles
    );
    let mut pairs: Vec<(u8, u8)> = rep.output.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    // The final run rests in the registers (like the dictionary-RLE
    // kernel); the host flushes it.
    pairs.push((rep.regs[1] as u8, rep.regs[2] as u8));
    for (byte, len) in &pairs {
        println!("  {:?} x {}", *byte as char, len);
    }
    assert_eq!(
        pairs,
        vec![(b'a', 4), (b'b', 2), (b'c', 1), (b'd', 5), (b'a', 1)]
    );
    println!("verified against the expected summary.");
}

//! Columnar encoding on the UDP: dictionary-encode a low-cardinality
//! attribute, run-length the codes, and Snappy-compress a text block —
//! the §5.4/§5.6 kernels as a mini ingest job.
//!
//! ```text
//! cargo run --release --example column_compress
//! ```

use udp::kernels::{dict, snappy};
use udp_codecs::CsvParser;
use udp_workloads::{canterbury_like, crimes_csv, Entropy};

fn main() {
    // ---- Dictionary + RLE on a Crimes attribute --------------------
    let table = crimes_csv(256 * 1024, 3);
    let rows = CsvParser::new().parse(&table);
    let column: Vec<Vec<u8>> = rows
        .iter()
        .skip(1)
        .take(2000)
        .map(|r| r[6].clone()) // Location Description
        .collect();
    let distinct: std::collections::HashSet<_> = column.iter().collect();
    println!(
        "column: {} values, {} distinct (dictionary-friendly)",
        column.len(),
        distinct.len()
    );

    let d = dict::run(&column);
    println!(
        "dictionary encode: {:.0} MB/s/lane, {} lanes, {:.1} GB/s device",
        d.lane_rate_mbps,
        d.lanes,
        d.throughput_mbps / 1000.0
    );
    let r = dict::run_rle(&column);
    println!(
        "dictionary-RLE:    {:.0} MB/s/lane, {} lanes, {:.1} GB/s device",
        r.lane_rate_mbps,
        r.lanes,
        r.throughput_mbps / 1000.0
    );

    // ---- Snappy on a text block -------------------------------------
    let block = canterbury_like(Entropy::Medium, 32 * 1024, 4);
    let (c, ratio) = snappy::run_compress(&block);
    println!(
        "\nsnappy compress:   {:.0} MB/s/lane, ratio {:.2} ({} KB block)",
        c.lane_rate_mbps,
        ratio,
        block.len() / 1024
    );
    let dec = snappy::run_decompress(&block);
    println!("snappy decompress: {:.0} MB/s/lane", dec.lane_rate_mbps);
}

//! The Figure 1 scenario as an application: ingest Snappy-compressed
//! TPC-H-like lineitem CSV into a columnar store, then model offloading
//! the transformation stages to the UDP.
//!
//! ```text
//! cargo run --release --example etl_ingest
//! ```

use udp_codecs::snappy_compress;
use udp_etl::{run_cpu_etl, udp_offload_model, OffloadRates, SSD_MBPS};
use udp_workloads::lineitem_csv;

fn main() {
    // ~7 MB of raw rows, compressed like a warehouse drop.
    let raw = lineitem_csv(7_000_000, 1);
    let compressed = snappy_compress(&raw);
    println!(
        "input: {:.1} MB raw -> {:.1} MB compressed ({:.0}% of raw)",
        raw.len() as f64 / 1e6,
        compressed.len() as f64 / 1e6,
        compressed.len() as f64 / raw.len() as f64 * 100.0
    );

    let (store, rep) = run_cpu_etl(&compressed);
    println!(
        "\nloaded {} rows x {} columns",
        store.rows,
        store.columns.len()
    );
    println!("stage breakdown (CPU pipeline):");
    println!(
        "  io (modeled {SSD_MBPS:.0} MB/s SSD): {:>8.3}s",
        rep.io_model_s
    );
    println!("  decompress:                   {:>8.3}s", rep.decompress_s);
    println!("  parse/tokenize:               {:>8.3}s", rep.parse_s);
    println!(
        "  deserialize/validate:         {:>8.3}s",
        rep.deserialize_s
    );
    println!("  columnar load:                {:>8.3}s", rep.load_s);
    println!(
        "  => CPU work is {:.1}% of wall time (the Figure 1b point)",
        rep.cpu_fraction() * 100.0
    );

    // Offload decompression + parsing to the UDP at measured rates.
    let sample = lineitem_csv(100_000, 2);
    let cut = sample[..24 * 1024]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(24 * 1024);
    let parse = udp::kernels::csv::run(&sample[..cut]);
    let decomp = udp::kernels::snappy::run_decompress(&sample[..24 * 1024]);
    let (cpu_only, offloaded) = udp_offload_model(
        &rep,
        OffloadRates {
            decompress_mbps: decomp.throughput_mbps,
            parse_mbps: parse.throughput_mbps,
        },
    );
    println!(
        "\nUDP offload model: {:.3}s -> {:.3}s ({:.2}x end-to-end, with the CPU freed)",
        cpu_only,
        offloaded,
        cpu_only / offloaded
    );
}

//! Network-intrusion-detection scanning on the full UDP device (§5.3).
//!
//! Builds an Aho–Corasick (ADFA) automaton from a synthetic NIDS rule
//! set, compiles it to a UDP program whose failure links live in
//! *default* transitions, and scans a traffic trace on all 64 lanes.
//!
//! ```text
//! cargo run --release --example nids_scan
//! ```

use udp::kernels::patterns;
use udp_workloads::{nids_literals, traffic_with_matches};

fn main() {
    let rules = nids_literals(64, 2024);
    println!("rule set: {} literal signatures, e.g.:", rules.len());
    for r in rules.iter().take(4) {
        println!("  {:?}", String::from_utf8_lossy(r));
    }

    let (trace, planted) = traffic_with_matches(&rules, 48 * 1024, 700, 7);
    println!(
        "trace: {} KB with {} planted occurrences",
        trace.len() / 1024,
        planted
    );

    let report = patterns::run_adfa(&rules, &trace);
    println!(
        "\nUDP: {} lanes x {:.0} MB/s = {:.1} GB/s aggregate, {:.0} MB/s/W",
        report.lanes,
        report.lane_rate_mbps,
        report.throughput_mbps / 1000.0,
        report.tput_per_watt()
    );
    println!(
        "program: {} KB ({} banks/lane)",
        report.code_bytes / 1024,
        report.banks_per_lane
    );

    // The runner verified every reported match against the reference
    // scan; show the first few.
    let adfa = udp_automata::Adfa::build(&rules);
    let hits = adfa.find_all(&trace);
    println!(
        "first matches (rule, end offset): {:?}",
        &hits[..hits.len().min(5)]
    );
}

//! Quickstart: build a UDP program by hand, assemble it with EffCLiP,
//! and run it on one simulated lane.
//!
//! The program is a minimal log scanner: it counts `ERROR` lines in a
//! byte stream by walking a 6-state automaton with multi-way dispatch,
//! and emits a `!` for each hit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use udp::{Action, LayoutOptions, Opcode, ProgramBuilder, Reg};
use udp_asm::Target;
use udp_sim::{Lane, LaneConfig};

fn main() {
    // ---- 1. Describe the automaton ---------------------------------
    // States walk the literal "ERROR"; any mismatch falls back to the
    // scanner start (a majority/default transition in UDP terms).
    let mut b = ProgramBuilder::new();
    let needle = b"ERROR";
    let states: Vec<_> = (0..needle.len()).map(|_| b.add_consuming_state()).collect();
    b.set_entry(states[0]);

    for (i, &byte) in needle.iter().enumerate() {
        let actions = if i + 1 == needle.len() {
            // Last byte matched: report the position and emit a marker.
            vec![
                Action::imm(Opcode::Report, Reg::R0, Reg::R0, 1),
                Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(b'!')),
            ]
        } else {
            vec![]
        };
        let target = Target::State(states[(i + 1) % needle.len()]);
        b.labeled_arc(states[i], u16::from(byte), target, actions);
        // Mismatch: restart the scan (consuming the byte).
        b.fallback_arc(states[i], Target::State(states[0]), vec![]);
    }

    // ---- 2. Assemble: EffCLiP packs the states densely --------------
    let image = b
        .assemble(&LayoutOptions::default())
        .expect("a 6-state scanner fits one bank easily");
    println!(
        "assembled: {} states, {} transition words, {} bytes of code, density {:.0}%",
        image.stats.n_states,
        image.stats.n_transition_words,
        image.stats.code_bytes(),
        image.stats.density() * 100.0
    );

    // ---- 3. Run on one lane ----------------------------------------
    let log = b"boot OK\nERROR disk full\nwarn: retry\nERROR net down\n";
    let report = Lane::run_program(&image, log, &LaneConfig::default());
    println!(
        "scanned {} bytes in {} cycles ({:.0} MB/s at 1 GHz)",
        report.bytes_consumed,
        report.cycles,
        report.rate_mbps(1.0)
    );
    println!("matches at byte offsets: {:?}", report.reports);
    println!(
        "emitted markers: {:?}",
        String::from_utf8_lossy(&report.output)
    );
    assert_eq!(report.output, b"!!");
}

//! Value-generation strategies (no shrinking).

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for heterogeneous collections (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> OneOf<V> {
    /// Wraps a non-empty option list, all weights equal.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        Self::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Wraps a non-empty `(weight, strategy)` list.
    pub fn weighted(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        OneOf {
            options,
            total_weight,
        }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights summed over total");
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The [`any`] strategy.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

/// String strategies from `&str` patterns, as upstream proptest
/// provides via regex. Only the forms the workspace uses are
/// understood: a `[chars]` character class generates one character
/// from the class; anything else generates the literal string itself.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let s = *self;
        if let Some(class) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let chars: Vec<char> = class.chars().collect();
            assert!(!chars.is_empty(), "empty character class strategy");
            let i = rng.below(chars.len() as u64) as usize;
            chars[i].to_string()
        } else {
            s.to_string()
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

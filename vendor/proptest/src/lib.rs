//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of the proptest API its test suites use:
//! [`Strategy`] with `prop_map`, integer/float range strategies,
//! tuple strategies, [`collection::vec`], [`Just`], [`any`],
//! [`bool::ANY`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. Each case is generated from a deterministic per-test
//! seed (FNV of the test path mixed with the case index), so failures
//! reproduce exactly across runs without persistence files.

#![forbid(unsafe_code)]

pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Run-count configuration (`proptest`-compatible subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving each property case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test path and case index so every case is
    /// reproducible without a persistence file.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            state: if h == 0 { 0x853C_49E6_748F_EA9B } else { h },
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// A strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The prelude, as in upstream proptest.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Expands property functions: each `fn name(binder in strategy, ...)`
/// becomes a test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks among several strategies with a common value type, uniformly
/// or by `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::weighted(vec![ $(($w, $crate::strategy::boxed($s))),+ ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![ $($crate::strategy::boxed($s)),+ ])
    };
}

/// Skips the current case when its inputs don't satisfy a premise.
/// Expands to a `continue` of the per-case loop, so it must be used at
/// the top level of a property body (which is how the workspace uses
/// it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn generated_values_respect_strategies(
            x in 3u32..10,
            y in 0u8..=255,
            b in crate::bool::ANY,
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in prop_oneof![Just(1i32), Just(2), Just(3)],
            t in (0u32..4, 10usize..12),
        ) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            let _ = b;
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..=3).contains(&s));
            prop_assert!(t.0 < 4 && (10..12).contains(&t.1));
        }
    }

    proptest! {
        #[test]
        fn char_class_str_strategy(c in "[abc]") {
            prop_assert!(["a", "b", "c"].contains(&c.as_str()));
        }
    }

    proptest! {
        #[test]
        fn map_transforms(n in (0usize..3).prop_map(|i| i * 10)) {
            prop_assert!(n == 0 || n == 10 || n == 20);
        }
    }
}

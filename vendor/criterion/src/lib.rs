//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the criterion API surface its benches use — groups,
//! throughput annotation, `bench_function` / `bench_with_input`, and
//! the `criterion_group!` / `criterion_main!` macros — on top of a
//! plain [`std::time::Instant`] harness. No statistics beyond
//! min/mean over a fixed sample count; results print one line per
//! benchmark:
//!
//! ```text
//! cpu/huffman/encode            time: 1.234 ms   thrpt: 212.5 MB/s
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-volume annotation used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the best sample, filled by `iter`.
    best: f64,
}

impl Bencher {
    /// Times `f`, keeping the fastest sample's per-iteration mean.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration-count calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_secs_f64() / iters as f64;
            best = best.min(per_iter);
        }
        self.best = best;
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the per-iteration work volume for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            best: f64::NAN,
        };
        f(&mut b);
        self.report(&id.to_string(), b.best);
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            best: f64::NAN,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.best);
        self
    }

    fn report(&self, id: &str, secs_per_iter: f64) {
        let label = format!("{}/{}", self.name, id);
        let time = format_secs(secs_per_iter);
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mbps = n as f64 / secs_per_iter / 1e6;
                println!("{label:<42} time: {time:>10}   thrpt: {mbps:9.1} MB/s");
            }
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / secs_per_iter;
                println!("{label:<42} time: {time:>10}   thrpt: {eps:9.0} elem/s");
            }
            None => println!("{label:<42} time: {time:>10}"),
        }
    }

    /// Ends the group (upstream-compatibility no-op).
    pub fn finish(&mut self) {}
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let name = id.to_string();
        self.benchmark_group(&name).bench_function("", f);
    }
}

/// Bundles bench functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1024));
        let data = vec![1u8; 1024];
        g.bench_function("sum", |b| {
            b.iter(|| data.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.finish();
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] conveniences `gen`, `gen_range`, `gen_ratio`, and
//! `gen_bool`. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic across runs and platforms, which is all the
//! workload generators need (they seed explicitly and only require
//! stable, well-mixed streams, not bit-compatibility with upstream
//! `rand`).

#![forbid(unsafe_code)]

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (`rand`-compatible subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a range (the single blanket
/// [`SampleRange`] impl below keeps integer-literal inference working
/// exactly like upstream rand's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty gen_range");
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "empty gen_range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// User-facing convenience methods (`rand`-compatible subset).
pub trait Rng: RngCore {
    /// A uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// True with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let s = rng.gen_range(-3..4i8);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn unit_floats_are_unit() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}

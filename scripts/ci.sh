#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite.
# Everything runs offline (external crates are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --release =="
cargo test --workspace --release -q

echo "== verifier soundness gate (DESIGN.md §9) =="
cargo run --release -q -p udp-bench --bin verify

echo "== fault_fuzz smoke gate (DESIGN.md §8) + static-reject oracle (§9) =="
# Gates on zero whole-run aborts, the static-reject floor, and a 100%
# recovered-or-fallback rate for transient chaos injections; refreshes
# the results/BENCH_fault_fuzz.json artifact tracked across PRs.
cargo run --release -q -p udp-bench --bin fault_fuzz -- \
  --iters 200 --seed 0xDEC0DE --min-static-reject 1 --min-recovery-rate 100 --json

echo "== hostperf smoke (non-gating, DESIGN.md §2.6.2) =="
# Host-throughput trend check over the chunked scenarios: runs hostperf,
# prints the MB/s delta against the previous results/BENCH_hostperf.json,
# and refreshes it. Perf is machine- and load-dependent, so this step
# reports but never fails the build.
(
  set +e
  prev=""
  if [ -f results/BENCH_hostperf.json ]; then
    prev="$(cat results/BENCH_hostperf.json)"
  fi
  cargo run --release -q -p udp-bench --bin hostperf -- --json >/dev/null 2>&1
  if [ -f results/BENCH_hostperf.json ]; then
    echo "$prev" | awk -v cur="$(cat results/BENCH_hostperf.json)" '
      function field(line, key,   s) {
        s = line
        if (!sub(".*\"" key "\":", "", s)) return ""
        sub("[,}].*", "", s); gsub("\"", "", s)
        return s
      }
      NF { prev_mbps[field($0, "name")] = field($0, "predecoded_par_mbps") }
      END {
        n = split(cur, lines, "\n")
        for (i = 1; i <= n; i++) {
          if (lines[i] == "") continue
          name = field(lines[i], "name")
          now = field(lines[i], "predecoded_par_mbps") + 0
          was = (name in prev_mbps) ? prev_mbps[name] + 0 : 0
          if (was > 0)
            printf "  %-16s par %8.1f MB/s (prev %8.1f, %+.1f%%)\n", name, now, was, (now / was - 1) * 100
          else
            printf "  %-16s par %8.1f MB/s (no previous record)\n", name, now
        }
      }'
  else
    echo "  hostperf produced no JSON; skipping delta"
  fi
  exit 0
)

echo "CI green."

#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite.
# Everything runs offline (external crates are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --release =="
cargo test --workspace --release -q

echo "== backend matrix: full suite on the compiled backend (DESIGN.md §2.6.3) =="
# UDP_SIM_BACKEND=compiled flips every default-constructed run to the
# tier-2 compiled engine; the whole suite (determinism, supervisor,
# oracle, codec round-trips) must pass identically, since the compiled
# backend is required to reproduce interpreter reports bit-for-bit.
UDP_SIM_BACKEND=compiled cargo test --workspace --release -q

echo "== backend matrix: fault_fuzz on the compiled backend =="
# Chaos/fault hooks are honored by the compiled engine too; hold it to
# the same recovery bar as the interpreter (no artifact refresh here —
# the interpreter run below owns results/BENCH_fault_fuzz.json).
UDP_SIM_BACKEND=compiled cargo run --release -q -p udp-bench --bin fault_fuzz -- \
  --iters 200 --seed 0xDEC0DE --min-static-reject 1 --min-recovery-rate 100 \
  --store-iters 16

echo "== backend matrix: serve_fuzz on the compiled backend =="
# The service-chaos plan (overload, disconnects, stalled readers,
# poison tenants) must hold the §10.6 invariant on the compiled engine
# too: typed errors only, no panics, no hung clients, clean tenants
# byte-identical to the reference.
UDP_SIM_BACKEND=compiled cargo run --release -q -p udp-bench --bin serve_fuzz -- \
  --smoke --seed 0xC1

echo "== verifier soundness gate (DESIGN.md §9) =="
# Gates on zero errors across the corpus and on every program either
# earning a complete resource certificate or carrying structured
# cost-unbounded blockers; refreshes results/BENCH_verify.json.
cargo run --release -q -p udp-bench --bin verify -- --json

echo "== certification soundness gate (DESIGN.md §9.1) =="
# Certified bounds must hold empirically: every certified corpus
# program, generic inputs, sequential + pooled + compiled paths, plus
# the bit-flip mutation sweep and the random-program property.
cargo test --release -q -p udp-bench --test cert_soundness

echo "== rustdoc gate: udp-verify (-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q -p udp-verify

echo "== fault_fuzz smoke gate (DESIGN.md §8) + static-reject oracle (§9) =="
# Gates on zero whole-run aborts, the static-reject floor, and a 100%
# recovered-or-fallback rate for transient chaos injections; refreshes
# the results/BENCH_fault_fuzz.json artifact tracked across PRs.
cargo run --release -q -p udp-bench --bin fault_fuzz -- \
  --iters 200 --seed 0xDEC0DE --min-static-reject 1 --min-recovery-rate 100 \
  --store-iters 16 --json

echo "== artifact-store round trip gate (DESIGN.md §11) =="
# Populate a fresh store with the whole compiler corpus (assemble +
# verify + certify + durable write), then demand that a second pass is
# a pure cache hit whose stored image is byte-identical to a fresh
# parse-and-assemble of the same source. Exercises the AOT workflow a
# warm serve restart depends on.
rm -rf target/ci-aot-store
cargo run --release -q -p udp-bench --bin aot -- --dir target/ci-aot-store
cargo run --release -q -p udp-bench --bin aot -- --dir target/ci-aot-store --check

echo "== serve smoke gate (DESIGN.md §10.6) =="
# One cycle of every service chaos mode at the CI seed: a mixed batch
# of clean, overloading, disconnecting, stalling, and poison tenants.
# Gates on zero invariant violations (panics, hangs, collateral
# quarantine, reference mismatches on clean tenants); refreshes the
# results/BENCH_serve_fuzz.json artifact.
cargo run --release -q -p udp-bench --bin serve_fuzz -- --smoke --seed 0xC1 --json

echo "== servebench: service throughput/latency trend (non-gating, DESIGN.md §10.7) =="
# Client-observed p50/p99 and aggregate MB/s for the small-rows and
# bulk-chunks shapes; numbers are machine-dependent, so this only
# refreshes results/BENCH_serve.json and never fails the build.
(
  set +e
  cargo run --release -q -p udp-bench --bin servebench -- --tenants 4 --jobs 32 --json
  exit 0
)

echo "== hostperf: compiled-backend speedup gate + trend smoke (DESIGN.md §2.6.2–3) =="
# One hostperf run serves two purposes. Gating: the compiled backend
# must hold >= 2x the predecoded interpreter's MB/s on the csv
# scenarios and >= 1.5x on the huffman (bit-burst) scenarios —
# measured as same-process interleaved ratios, so host load cancels
# out and the gates are portable across machines. Trend
# (non-gating): absolute MB/s deltas against the previous
# results/BENCH_hostperf.json are printed and the artifact refreshed;
# absolute perf is machine- and load-dependent, so it reports only.
prev=""
if [ -f results/BENCH_hostperf.json ]; then
  prev="$(cat results/BENCH_hostperf.json)"
fi
cargo run --release -q -p udp-bench --bin hostperf -- --json \
  --gate-csv-speedup 2.0 --gate-huffman-speedup 1.5 \
  | grep -E '^gate' || { echo "hostperf speedup gate failed"; exit 1; }
(
  set +e
  if [ -f results/BENCH_hostperf.json ]; then
    echo "$prev" | awk -v cur="$(cat results/BENCH_hostperf.json)" '
      function field(line, key,   s) {
        s = line
        if (!sub(".*\"" key "\":", "", s)) return ""
        sub("[,}].*", "", s); gsub("\"", "", s)
        return s
      }
      NF { prev_mbps[field($0, "name")] = field($0, "predecoded_par_mbps") }
      END {
        n = split(cur, lines, "\n")
        for (i = 1; i <= n; i++) {
          if (lines[i] == "") continue
          name = field(lines[i], "name")
          now = field(lines[i], "predecoded_par_mbps") + 0
          iseq = field(lines[i], "predecoded_seq_mbps") + 0
          cseq = field(lines[i], "compiled_seq_mbps") + 0
          speedup = (iseq > 0) ? cseq / iseq : 0
          was = (name in prev_mbps) ? prev_mbps[name] + 0 : 0
          if (was > 0)
            printf "  %-16s par %8.1f MB/s (prev %8.1f, %+.1f%%)  compiled-seq %8.1f MB/s (%.2fx interp)\n", name, now, was, (now / was - 1) * 100, cseq, speedup
          else
            printf "  %-16s par %8.1f MB/s (no previous record)  compiled-seq %8.1f MB/s (%.2fx interp)\n", name, now, cseq, speedup
        }
      }'
  else
    echo "  hostperf produced no JSON; skipping delta"
  fi
  exit 0
)

echo "CI green."

#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite.
# Everything runs offline (external crates are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --release =="
cargo test --workspace --release -q

echo "== verifier soundness gate (DESIGN.md §9) =="
cargo run --release -q -p udp-bench --bin verify

echo "== fault_fuzz smoke gate (DESIGN.md §8) + static-reject oracle (§9) =="
cargo run --release -q -p udp-bench --bin fault_fuzz -- --iters 200 --seed 0xDEC0DE --min-static-reject 1

echo "CI green."

#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extension experiments,
# saving outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p udp-bench

mkdir -p results
bins=(
  fig01_etl_load tab01_coverage fig05_branches fig08_symbols fig09_sources
  fig11_addressing fig13_csv fig14_huffenc fig15_huffdec fig16_patterns
  fig17_dict fig18_histogram fig19_snappy_comp fig20_snappy_decomp
  fig_trigger fig21_overall tab03_power_area tab04_accelerators
  ext_json_parse ablate_layout
)
for b in "${bins[@]}"; do
  echo "=== $b ==="
  ./target/release/"$b" | tee "results/$b.txt"
done
echo "done: results/ holds one file per experiment"

//! Artifact-store chaos: tries to break the `udp-store` durability
//! invariant (DESIGN.md §11.2) the way [`crate::serve`] attacks the
//! service runtime's:
//!
//! > **A damaged artifact — flipped bits, truncation, a torn write —
//! > surfaces only as a typed [`StoreError`], and the store recovers
//! > by re-assembling from source; it never panics and never returns
//! > an artifact that fails re-verification.**
//!
//! Four store chaos modes, kept in their own enum (like
//! [`crate::ServeChaosMode`], deliberately *not* added to
//! [`crate::FaultMode::ALL`], whose cycling order is load-bearing):
//!
//! * [`StoreChaosMode::ArtifactBitFlip`] — flip one random bit
//!   anywhere in a stored artifact. The sha-256 trailer must catch it,
//!   and `get_or_build` must come back `Rebuilt` with the image
//!   byte-identical to the pristine build.
//! * [`StoreChaosMode::ArtifactTruncate`] — cut the artifact file at a
//!   random byte. Every cut point must land on a typed ladder rung
//!   (truncated-file, bad-magic, checksum…), then rebuild cleanly.
//! * [`StoreChaosMode::TornWrite`] — a crash mid-write: a partial
//!   temp file left behind plus a torn object file. Reopening the
//!   store must sweep the temp debris, and the torn object must
//!   recover like any other corruption.
//! * [`StoreChaosMode::PoisonSource`] — unassemblable source text.
//!   Building it is a typed refusal; corrupting its artifact *and*
//!   its source hits the final rung: quarantine, not a panic.
//!
//! The `fault_fuzz` binary in `udp-bench` runs seeded iterations via
//! `--store-iters`; `scripts/ci.sh` gates on zero violations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use udp_asm::LayoutOptions;
use udp_isa::NUM_BANKS;
use udp_store::{ArtifactKey, ArtifactStore, LoadOutcome, StoreError};

/// The store-level chaos modes (separate from [`crate::FaultMode`];
/// see the module docs for why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreChaosMode {
    /// Flip one random bit in a stored artifact file.
    ArtifactBitFlip,
    /// Truncate a stored artifact file at a random byte.
    ArtifactTruncate,
    /// Leave a partial temp file and a torn object file, as a crash
    /// mid-write would.
    TornWrite,
    /// Unassemblable source text, with and without a corrupt artifact
    /// squatting on its key.
    PoisonSource,
}

impl StoreChaosMode {
    /// Every mode, in plan cycling order.
    pub const ALL: [StoreChaosMode; 4] = [
        StoreChaosMode::ArtifactBitFlip,
        StoreChaosMode::ArtifactTruncate,
        StoreChaosMode::TornWrite,
        StoreChaosMode::PoisonSource,
    ];

    /// Stable kebab-case name (summaries, JSON).
    pub fn name(self) -> &'static str {
        match self {
            StoreChaosMode::ArtifactBitFlip => "artifact-bit-flip",
            StoreChaosMode::ArtifactTruncate => "artifact-truncate",
            StoreChaosMode::TornWrite => "torn-write",
            StoreChaosMode::PoisonSource => "poison-source",
        }
    }
}

/// Per-mode counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreModeStats {
    /// Cases executed.
    pub runs: u64,
    /// Invariant violations (panics, undetected corruption, failed or
    /// divergent recovery).
    pub violations: u64,
    /// Corruptions detected as typed [`StoreError`]s.
    pub detected: u64,
    /// Artifacts recovered byte-identically by re-assembly.
    pub rebuilt: u64,
    /// Keys that correctly ended in quarantine.
    pub quarantined: u64,
}

/// Aggregate result of a store-chaos fuzzing run.
#[derive(Debug, Clone)]
pub struct StoreFuzzSummary {
    /// Plan seed.
    pub seed: u64,
    /// Cases executed across modes.
    pub iters: u64,
    /// Counters per mode, indexed like [`StoreChaosMode::ALL`].
    pub stats: Vec<(StoreChaosMode, StoreModeStats)>,
    /// Human-readable description of every violation.
    pub violations: Vec<String>,
}

impl StoreFuzzSummary {
    /// Total invariant violations.
    pub fn panics(&self) -> u64 {
        self.violations.len() as u64
    }
}

impl std::fmt::Display for StoreFuzzSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "store_fuzz seed={:#x} iters={} panics={}",
            self.seed,
            self.iters,
            self.panics()
        )?;
        for (mode, s) in &self.stats {
            writeln!(
                f,
                "mode={} runs={} violations={} detected={} rebuilt={} quarantined={}",
                mode.name(),
                s.runs,
                s.violations,
                s.detected,
                s.rebuilt,
                s.quarantined
            )?;
        }
        for v in &self.violations {
            writeln!(f, "violation {v}")?;
        }
        Ok(())
    }
}

/// The corpus program every corruption case stores and recovers: the
/// workspace CSV framing kernel, as canonical assembly text, with the
/// smallest window it assembles into.
fn csv_source() -> (String, LayoutOptions) {
    let pb = udp_compilers::csv::csv_to_udp();
    let source = udp_asm::emit_asm(&pb);
    let mut banks = 1;
    loop {
        let layout = LayoutOptions::with_banks(banks);
        if pb.assemble(&layout).is_ok() {
            return (source, layout);
        }
        assert!(banks < NUM_BANKS, "csv kernel must fit the scratchpad");
        banks *= 2;
    }
}

fn temp_root(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "udp-store-fuzz-{tag}-{}-{seed:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs a store call under `catch_unwind`: a panic is an invariant
/// violation, recorded and mapped to `None`.
fn no_panic<T>(
    mode: StoreChaosMode,
    what: &str,
    violations: &mut Vec<String>,
    f: impl FnOnce() -> T,
) -> Option<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(_) => {
            violations.push(format!("mode={} {what}: PANICKED", mode.name()));
            None
        }
    }
}

/// Shared scaffold for the corruption modes: build a pristine artifact,
/// hand its on-disk path to `damage`, then demand (a) `load` fails with
/// a typed error, (b) `get_or_build` recovers `Rebuilt` with the image
/// byte-identical to the pristine build, (c) a final `load` is a clean
/// `Hit`.
fn corruption_case(
    mode: StoreChaosMode,
    seed: u64,
    stats: &mut StoreModeStats,
    violations: &mut Vec<String>,
    damage: impl FnOnce(&mut SmallRng, &ArtifactStore, &ArtifactKey, &mut Vec<String>),
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (source, layout) = csv_source();
    let root = temp_root(mode.name(), seed);
    let store = match ArtifactStore::open_with(&root, false) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("mode={} store failed to open: {e}", mode.name()));
            return;
        }
    };
    let pristine = match store.get_or_build(&source, &layout) {
        Ok(a) => a,
        Err(e) => {
            violations.push(format!("mode={} pristine build failed: {e}", mode.name()));
            return;
        }
    };
    let key = pristine.key;
    let pristine_bytes = udp_asm::encode_image(&pristine.image);
    drop(pristine);

    damage(&mut rng, &store, &key, violations);

    // Rung 1: the damage must be *detected*, as a typed error.
    match no_panic(mode, "load of damaged artifact", violations, || {
        store.load(&key)
    }) {
        Some(Err(_)) => stats.detected += 1,
        Some(Ok(_)) => violations.push(format!(
            "mode={} corruption went undetected by load",
            mode.name()
        )),
        None => {}
    }
    // Rung 2: recovery must re-assemble the identical image.
    match no_panic(mode, "get_or_build recovery", violations, || {
        store.get_or_build(&source, &layout)
    }) {
        Some(Ok(a)) => {
            if !matches!(a.outcome, LoadOutcome::Rebuilt { .. }) {
                violations.push(format!(
                    "mode={} recovery outcome was {} not rebuilt",
                    mode.name(),
                    a.outcome.name()
                ));
            }
            if udp_asm::encode_image(&a.image) == pristine_bytes {
                stats.rebuilt += 1;
            } else {
                violations.push(format!(
                    "mode={} rebuilt image diverges from the pristine build",
                    mode.name()
                ));
            }
        }
        Some(Err(e)) => violations.push(format!(
            "mode={} recovery from good source failed: {e}",
            mode.name()
        )),
        None => {}
    }
    // Rung 3: the rewrite is durable — the next load is a clean hit.
    match no_panic(mode, "load after recovery", violations, || store.load(&key)) {
        Some(Ok(a)) if udp_asm::encode_image(&a.image) != pristine_bytes => {
            violations.push(format!(
                "mode={} post-recovery artifact diverges",
                mode.name()
            ));
        }
        Some(Ok(_)) => {}
        Some(Err(e)) => violations.push(format!(
            "mode={} load after recovery failed: {e}",
            mode.name()
        )),
        None => {}
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// One `ArtifactBitFlip` case.
fn run_bit_flip(seed: u64, stats: &mut StoreModeStats, violations: &mut Vec<String>) {
    let mode = StoreChaosMode::ArtifactBitFlip;
    corruption_case(mode, seed, stats, violations, |rng, store, key, v| {
        let path = store.artifact_path(key);
        match std::fs::read(&path) {
            Ok(mut bytes) if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
                if let Err(e) = std::fs::write(&path, &bytes) {
                    v.push(format!("mode={} rewrite failed: {e}", mode.name()));
                }
            }
            other => v.push(format!(
                "mode={} could not read artifact to damage it: {other:?}",
                mode.name()
            )),
        }
    });
}

/// One `ArtifactTruncate` case.
fn run_truncate(seed: u64, stats: &mut StoreModeStats, violations: &mut Vec<String>) {
    let mode = StoreChaosMode::ArtifactTruncate;
    corruption_case(mode, seed, stats, violations, |rng, store, key, v| {
        let path = store.artifact_path(key);
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let cut = rng.gen_range(0..len.max(1));
        let truncated = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .and_then(|f| f.set_len(cut));
        if let Err(e) = truncated {
            v.push(format!("mode={} truncate failed: {e}", mode.name()));
        }
    });
}

/// One `TornWrite` case: partial temp debris plus a torn object file;
/// the store is reopened (the "restart") before the checks run.
fn run_torn_write(seed: u64, stats: &mut StoreModeStats, violations: &mut Vec<String>) {
    let mode = StoreChaosMode::TornWrite;
    corruption_case(mode, seed, stats, violations, |rng, store, key, v| {
        let path = store.artifact_path(key);
        let bytes = std::fs::read(&path).unwrap_or_default();
        // The interrupted writer's temp file: a random-length prefix.
        let tmp = store.root().join("tmp").join(format!("{}.dead", key.hex()));
        let keep = rng.gen_range(0..bytes.len().max(1));
        if let Err(e) = std::fs::write(&tmp, &bytes[..keep]) {
            v.push(format!(
                "mode={} temp debris write failed: {e}",
                mode.name()
            ));
        }
        // The object itself tore (the chaos model assumes a filesystem
        // that broke the write-then-rename promise).
        let cut = rng.gen_range(0..bytes.len().max(1)) as u64;
        if let Err(e) = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .and_then(|f| f.set_len(cut))
        {
            v.push(format!("mode={} object tear failed: {e}", mode.name()));
        }
        // Restart: a fresh open must sweep the temp debris.
        match ArtifactStore::open_with(store.root(), false) {
            Ok(_) => {
                if tmp.exists() {
                    v.push(format!(
                        "mode={} temp debris survived a store reopen",
                        mode.name()
                    ));
                }
            }
            Err(e) => v.push(format!("mode={} reopen failed: {e}", mode.name())),
        }
    });
}

/// One `PoisonSource` case: garbage source text must be a typed
/// refusal; garbage source *plus* a corrupt artifact on its key must
/// end in quarantine — the ladder's last rung — and stay there until
/// released.
fn run_poison_source(seed: u64, stats: &mut StoreModeStats, violations: &mut Vec<String>) {
    let mode = StoreChaosMode::PoisonSource;
    let mut rng = SmallRng::seed_from_u64(seed);
    let root = temp_root(mode.name(), seed);
    let store = match ArtifactStore::open_with(&root, false) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("mode={} store failed to open: {e}", mode.name()));
            return;
        }
    };
    let garbage = format!("not a program {:x}\n@@{seed:x}", rng.gen::<u64>());
    let layout = LayoutOptions::default();
    // With nothing on disk, a bad source is a plain typed refusal —
    // no quarantine, nothing written.
    match no_panic(mode, "bad-source build", violations, || {
        store.get_or_build(&garbage, &layout)
    }) {
        Some(Err(e)) => {
            stats.detected += 1;
            if matches!(e, StoreError::Quarantined { .. }) {
                violations.push(format!(
                    "mode={} bad source quarantined with nothing on disk",
                    mode.name()
                ));
            }
        }
        Some(Ok(_)) => violations.push(format!(
            "mode={} garbage source assembled somehow",
            mode.name()
        )),
        None => {}
    }
    // A corrupt artifact squatting on the bad source's key: load fails,
    // re-assembly fails, and the key must be quarantined.
    let key = ArtifactStore::key_for(&garbage, &layout);
    if let Err(e) = std::fs::write(store.artifact_path(&key), b"squatter") {
        violations.push(format!("mode={} squatter write failed: {e}", mode.name()));
        return;
    }
    match no_panic(mode, "double-failure build", violations, || {
        store.get_or_build(&garbage, &layout)
    }) {
        Some(Err(StoreError::Quarantined { .. })) => {
            stats.quarantined += 1;
            if store.is_quarantined(&key).is_none() {
                violations.push(format!(
                    "mode={} quarantine error without a quarantine mark",
                    mode.name()
                ));
            }
        }
        Some(Err(e)) => violations.push(format!(
            "mode={} double failure ended as {} not quarantined",
            mode.name(),
            e.name()
        )),
        Some(Ok(_)) => violations.push(format!(
            "mode={} double failure produced an artifact",
            mode.name()
        )),
        None => {}
    }
    // Quarantine is sticky across calls and restarts, and release
    // only re-exposes the (still typed) underlying failure.
    match no_panic(mode, "quarantined re-probe", violations, || {
        store.get_or_build(&garbage, &layout)
    }) {
        Some(Err(StoreError::Quarantined { .. })) => {}
        other => violations.push(format!(
            "mode={} quarantine was not sticky: {:?}",
            mode.name(),
            other.map(|r| r.map(|a| a.outcome).map_err(|e| e.to_string()))
        )),
    }
    match ArtifactStore::open_with(&root, false) {
        Ok(reopened) => {
            if reopened.is_quarantined(&key).is_none() {
                violations.push(format!(
                    "mode={} quarantine mark did not survive a reopen",
                    mode.name()
                ));
            }
            reopened.release_quarantine(&key);
            match no_panic(mode, "post-release build", violations, || {
                reopened.get_or_build(&garbage, &layout)
            }) {
                Some(Err(_)) => stats.detected += 1,
                Some(Ok(_)) => violations.push(format!(
                    "mode={} released garbage key produced an artifact",
                    mode.name()
                )),
                None => {}
            }
        }
        Err(e) => violations.push(format!("mode={} reopen failed: {e}", mode.name())),
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Runs `iters` store-chaos cases, cycling [`StoreChaosMode::ALL`].
/// Deterministic per `(seed, iters)`.
pub fn run_store_plan(seed: u64, iters: u64) -> StoreFuzzSummary {
    let mut stats: Vec<(StoreChaosMode, StoreModeStats)> = StoreChaosMode::ALL
        .iter()
        .map(|&m| (m, StoreModeStats::default()))
        .collect();
    let mut violations = Vec::new();
    for i in 0..iters {
        let mode = StoreChaosMode::ALL[(i % StoreChaosMode::ALL.len() as u64) as usize];
        let case_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let entry = stats.iter_mut().find(|(m, _)| *m == mode).map(|(_, s)| s);
        let Some(s) = entry else { continue };
        s.runs += 1;
        let before = violations.len();
        match mode {
            StoreChaosMode::ArtifactBitFlip => run_bit_flip(case_seed, s, &mut violations),
            StoreChaosMode::ArtifactTruncate => run_truncate(case_seed, s, &mut violations),
            StoreChaosMode::TornWrite => run_torn_write(case_seed, s, &mut violations),
            StoreChaosMode::PoisonSource => run_poison_source(case_seed, s, &mut violations),
        }
        s.violations += (violations.len() - before) as u64;
    }
    StoreFuzzSummary {
        seed,
        iters,
        stats,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_of_every_store_mode_is_violation_free() {
        let summary = run_store_plan(0x5EEDED, StoreChaosMode::ALL.len() as u64);
        assert_eq!(
            summary.panics(),
            0,
            "violations:\n{}",
            summary.violations.join("\n")
        );
        for (_, s) in &summary.stats {
            assert_eq!(s.runs, 1);
        }
        let text = summary.to_string();
        assert!(text.starts_with("store_fuzz seed=0x5eeded iters=4 panics=0"));
        assert!(text.contains("mode=artifact-bit-flip "));
        assert!(text.contains("mode=poison-source "));
    }
}

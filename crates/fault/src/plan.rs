//! Seeded, deterministic fault planning.
//!
//! A [`FaultPlan`] is a pure function from `(seed, index)` to a
//! [`FaultCase`]: the same seed always yields the same corruption
//! sequence, so any violation the fuzzer finds is replayable from its
//! case index alone (the ISS-simulator discipline — a fault report
//! must be a coordinate, not an anecdote).

/// One way to hurt the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Flip random bits in a compiled image's transition/action words.
    ImageBitFlip,
    /// Cut a compiled image short (span shrinks with the words).
    ImageTruncate,
    /// Truncate a valid Snappy stream mid-element.
    StreamTruncate,
    /// Flip random bits in a valid Snappy stream.
    StreamByteFlip,
    /// Feed raw garbage where Snappy framing is expected.
    SnappyFraming,
    /// Damage individual CSV records inside a valid feed.
    CsvMalformed,
    /// Damage NDJSON bytes and tokenize them.
    JsonMalformed,
    /// Run a clean program under a starvation-level cycle cap.
    ConfigTinyCycles,
    /// Run with hostile bank splits (zero, over-subscribed, too small
    /// for the program).
    ConfigBadBanks,
    /// Panic one lane of a parallel wave (chaos hook) and demand the
    /// siblings' reports survive.
    LanePanic,
    /// Inject a *transient* fault (panic or detected soft error) into
    /// one chunk of a supervised run — the chaos hook is disarmed on
    /// replay — and demand the supervisor recovers it with output
    /// byte-identical to the software reference.
    ChaosTransient,
    /// Inject a *persistent* fault (re-fires on every replay) into a
    /// supervised run and demand the chunk lands on the reference
    /// fallback, never quarantine, with siblings untouched.
    ChaosPersistent,
}

impl FaultMode {
    /// Every mode, in plan cycling order.
    pub const ALL: [FaultMode; 12] = [
        FaultMode::ImageBitFlip,
        FaultMode::ImageTruncate,
        FaultMode::StreamTruncate,
        FaultMode::StreamByteFlip,
        FaultMode::SnappyFraming,
        FaultMode::CsvMalformed,
        FaultMode::JsonMalformed,
        FaultMode::ConfigTinyCycles,
        FaultMode::ConfigBadBanks,
        FaultMode::LanePanic,
        FaultMode::ChaosTransient,
        FaultMode::ChaosPersistent,
    ];

    /// Stable kebab-case name (machine-readable summaries, CLI).
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::ImageBitFlip => "image-bit-flip",
            FaultMode::ImageTruncate => "image-truncate",
            FaultMode::StreamTruncate => "stream-truncate",
            FaultMode::StreamByteFlip => "stream-byte-flip",
            FaultMode::SnappyFraming => "snappy-framing",
            FaultMode::CsvMalformed => "csv-malformed",
            FaultMode::JsonMalformed => "json-malformed",
            FaultMode::ConfigTinyCycles => "config-tiny-cycles",
            FaultMode::ConfigBadBanks => "config-bad-banks",
            FaultMode::LanePanic => "lane-panic",
            FaultMode::ChaosTransient => "chaos-transient",
            FaultMode::ChaosPersistent => "chaos-persistent",
        }
    }
}

/// One reproducible corruption experiment.
#[derive(Debug, Clone, Copy)]
pub struct FaultCase {
    /// Position in the plan (for replay and reporting).
    pub index: u64,
    /// What kind of damage to inject.
    pub mode: FaultMode,
    /// Seed for this case's private RNG.
    pub seed: u64,
}

/// A deterministic schedule of fault cases.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    modes: Vec<FaultMode>,
}

impl FaultPlan {
    /// A plan over every [`FaultMode`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            modes: FaultMode::ALL.to_vec(),
        }
    }

    /// A plan restricted to `modes` (replaying one injection family).
    pub fn with_modes(seed: u64, modes: Vec<FaultMode>) -> Self {
        assert!(!modes.is_empty(), "a plan needs at least one mode");
        FaultPlan { seed, modes }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `i`-th case: modes cycle round-robin; the case seed mixes
    /// the plan seed with the index (SplitMix64's odd constant) so
    /// neighboring cases get unrelated random streams.
    pub fn case(&self, i: u64) -> FaultCase {
        FaultCase {
            index: i,
            mode: self.modes[(i % self.modes.len() as u64) as usize],
            seed: self
                .seed
                .wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The first `n` cases.
    pub fn cases(&self, n: u64) -> impl Iterator<Item = FaultCase> + '_ {
        (0..n).map(|i| self.case(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a: Vec<_> = FaultPlan::new(42).cases(30).collect();
        let b: Vec<_> = FaultPlan::new(42).cases(30).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn modes_cycle_and_seeds_differ() {
        let p = FaultPlan::new(7);
        assert_eq!(p.case(0).mode, FaultMode::ImageBitFlip);
        assert_eq!(p.case(12).mode, FaultMode::ImageBitFlip);
        assert_ne!(p.case(0).seed, p.case(12).seed);
        let other = FaultPlan::new(8);
        assert_ne!(p.case(0).seed, other.case(0).seed);
    }

    #[test]
    fn names_are_stable_kebab() {
        for m in FaultMode::ALL {
            assert!(m.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}

//! Pure corruption primitives.
//!
//! Every mutator takes the case RNG so damage is a deterministic
//! function of the [`crate::FaultCase`] seed. Mutators never validate
//! what they produce — producing *invalid* artifacts is the point.

use rand::rngs::SmallRng;
use rand::Rng;
use udp_asm::ProgramImage;

/// Flips `flips` random bits across `words` (transition and action
/// words alike — the dispatch path must survive either).
pub fn flip_word_bits(words: &mut [u32], flips: usize, rng: &mut SmallRng) {
    if words.is_empty() {
        return;
    }
    for _ in 0..flips {
        let i = rng.gen_range(0..words.len());
        let bit = rng.gen_range(0..32u32);
        words[i] ^= 1 << bit;
    }
}

/// Truncates an image to a random prefix, keeping `stats.span_words`
/// consistent with the shortened word list (the window-fit check sees
/// the real size; dangling entry/targets now read zero words).
pub fn truncate_image(image: &mut ProgramImage, rng: &mut SmallRng) {
    let keep = rng.gen_range(0..=image.words.len());
    image.words.truncate(keep);
    image.stats.span_words = keep;
}

/// Flips `flips` random bits across a byte buffer.
pub fn flip_byte_bits(data: &mut [u8], flips: usize, rng: &mut SmallRng) {
    if data.is_empty() {
        return;
    }
    for _ in 0..flips {
        let i = rng.gen_range(0..data.len());
        let bit = rng.gen_range(0..8u32);
        data[i] ^= 1 << bit;
    }
}

/// Truncates a buffer to a random prefix (possibly empty).
pub fn truncate_vec(data: &mut Vec<u8>, rng: &mut SmallRng) {
    let keep = rng.gen_range(0..=data.len());
    data.truncate(keep);
}

/// A buffer of uniformly random bytes — what "invalid framing" looks
/// like to a codec expecting a varint header and tagged elements.
pub fn garbage_bytes(len: usize, rng: &mut SmallRng) -> Vec<u8> {
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// Damages one CSV feed in place: garbles a field into non-numeric
/// junk, deletes a delimiter (arity shrinks), duplicates one (arity
/// grows), or splices a whole junk row. Record framing bytes outside
/// the victim row are left alone, so recovery must be per record.
pub fn malform_csv(raw: &mut Vec<u8>, delimiter: u8, rng: &mut SmallRng) {
    if raw.is_empty() {
        return;
    }
    match rng.gen_range(0..4u8) {
        0 => {
            // Garble a random in-row position with letters.
            let i = rng.gen_range(0..raw.len());
            if raw[i] != b'\n' {
                raw[i] = b'Z';
            }
        }
        1 => {
            // Delete the first delimiter after a random position.
            let start = rng.gen_range(0..raw.len());
            if let Some(p) = raw[start..].iter().position(|&b| b == delimiter) {
                raw.remove(start + p);
            }
        }
        2 => {
            // Duplicate a delimiter (an extra empty field).
            let start = rng.gen_range(0..raw.len());
            if let Some(p) = raw[start..].iter().position(|&b| b == delimiter) {
                raw.insert(start + p, delimiter);
            }
        }
        _ => {
            // Splice a junk row at a record boundary.
            let start = rng.gen_range(0..raw.len());
            let at = raw[start..]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(raw.len(), |p| start + p + 1);
            let junk = b"###|garbage|row\n";
            for (k, &b) in junk.iter().enumerate() {
                raw.insert(at + k, b);
            }
        }
    }
}

/// Damages NDJSON bytes: truncates mid-record, flips structural
/// characters, or splices unbalanced brackets.
pub fn malform_json(raw: &mut Vec<u8>, rng: &mut SmallRng) {
    if raw.is_empty() {
        return;
    }
    match rng.gen_range(0..3u8) {
        0 => truncate_vec(raw, rng),
        1 => {
            let i = rng.gen_range(0..raw.len());
            raw[i] = *[b'{', b'}', b'[', b']', b':', b',', b'"']
                .get(rng.gen_range(0..7usize))
                .unwrap_or(&b'{');
        }
        _ => flip_byte_bits(raw, 1 + rng.gen_range(0..8usize), rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn bit_flips_change_words() {
        let mut w = vec![0u32; 64];
        flip_word_bits(&mut w, 16, &mut rng());
        assert!(w.iter().any(|&x| x != 0));
    }

    #[test]
    fn truncation_keeps_span_consistent() {
        let mut b = udp_asm::ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.fallback_arc(s, udp_asm::Target::State(s), vec![]);
        let mut img = b.assemble(&udp_asm::LayoutOptions::default()).unwrap();
        for seed in 0..20 {
            let mut m = SmallRng::seed_from_u64(seed);
            let mut t = img.clone();
            truncate_image(&mut t, &mut m);
            assert_eq!(t.stats.span_words, t.words.len());
        }
        truncate_image(&mut img, &mut rng());
    }

    #[test]
    fn mutators_are_deterministic() {
        let base: Vec<u8> = (0..200u8).collect();
        let (mut a, mut b) = (base.clone(), base.clone());
        flip_byte_bits(&mut a, 9, &mut rng());
        flip_byte_bits(&mut b, 9, &mut rng());
        assert_eq!(a, b);
        assert_ne!(a, base);
    }

    #[test]
    fn empty_buffers_are_fine() {
        let mut v: Vec<u8> = Vec::new();
        flip_byte_bits(&mut v, 5, &mut rng());
        truncate_vec(&mut v, &mut rng());
        malform_csv(&mut v, b'|', &mut rng());
        malform_json(&mut v, &mut rng());
        let mut w: Vec<u32> = Vec::new();
        flip_word_bits(&mut w, 5, &mut rng());
    }
}

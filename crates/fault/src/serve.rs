//! Service-level chaos: tries to break the `udp-serve` runtime's
//! invariant (DESIGN.md §10.6) the same way [`crate::harness`] tries to
//! break the device stack's:
//!
//! > **Hostile load surfaces only as typed [`ServeError`] values — the
//! > runtime never panics and never hangs a client.**
//!
//! Five service chaos modes, deliberately *not* added to
//! [`crate::FaultMode::ALL`] (that enum's cycling order is load-bearing
//! for the device-level plans and benchmarks):
//!
//! * [`ServeChaosMode::OverloadBurst`] — more submissions than the
//!   bounded queues hold, plus already-expired deadlines. Load must
//!   shed *only* as `Overloaded` / `DeadlineExceeded`, and every
//!   accepted job must still complete correctly.
//! * [`ServeChaosMode::ClientDisconnect`] — clients hang up mid-job
//!   (dropped tickets). The runtime must finish or shed the work,
//!   count the undeliverable results, and keep serving everyone else.
//! * [`ServeChaosMode::StalledReader`] — a socket peer opens a frame
//!   and stalls. The connection must time out without pinning the
//!   server; a concurrent well-behaved client must be served normally.
//! * [`ServeChaosMode::PoisonTenant`] — one tenant's jobs carry
//!   persistent chaos on a fallback-less kernel, so they quarantine.
//!   Only that tenant may be quarantined; its clean-tenant neighbors'
//!   outputs must match the software reference byte for byte.
//! * [`ServeChaosMode::KillMidJournal`] — a journaled service is
//!   killed (abort shutdown) and its write-ahead journal torn at a
//!   random byte before restart. The restart must succeed, replay the
//!   surviving prefix, and serve probes with typed outcomes only.
//!
//! Every wait goes through [`JobTicket::wait_timeout`], so a hang is
//! detected as a typed `ResultTimeout` violation instead of wedging the
//! fuzzer. The `serve_fuzz` binary in `udp-bench` runs seeded
//! iterations of the plan on both execution backends; `scripts/ci.sh`
//! gates on zero violations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use udp_codecs::fallback::CsvFramingFallback;
use udp_serve::{
    ChaosSpec, JobOutcome, JobSpec, JobTicket, OverloadScope, ServeConfig, ServeError,
    ServeRuntime, ServeStats, Shutdown, TenantQuota,
};
use udp_sim::ReferenceFallback;
use udp_workloads::lineitem_csv;

/// Upper bound on any single result wait — the hang detector. Far
/// above any real wave time; only a wedged runtime reaches it.
const HANG_LIMIT: Duration = Duration::from_secs(30);

/// The service-level chaos modes (separate from [`crate::FaultMode`];
/// see the module docs for why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeChaosMode {
    /// Saturate the bounded queues and submit expired deadlines.
    OverloadBurst,
    /// Drop job tickets mid-flight (client hangs up).
    ClientDisconnect,
    /// Open a socket frame and stall (socket transport only).
    StalledReader,
    /// One tenant's jobs persistently poison lanes and must be
    /// quarantined without collateral damage.
    PoisonTenant,
    /// A journaled service dies mid-append; its journal is torn at a
    /// random byte and the restart must recover the surviving prefix.
    KillMidJournal,
}

impl ServeChaosMode {
    /// Every mode, in plan cycling order.
    pub const ALL: [ServeChaosMode; 5] = [
        ServeChaosMode::OverloadBurst,
        ServeChaosMode::ClientDisconnect,
        ServeChaosMode::StalledReader,
        ServeChaosMode::PoisonTenant,
        ServeChaosMode::KillMidJournal,
    ];

    /// Stable kebab-case name (summaries, JSON).
    pub fn name(self) -> &'static str {
        match self {
            ServeChaosMode::OverloadBurst => "overload-burst",
            ServeChaosMode::ClientDisconnect => "client-disconnect",
            ServeChaosMode::StalledReader => "stalled-reader",
            ServeChaosMode::PoisonTenant => "poison-tenant",
            ServeChaosMode::KillMidJournal => "kill-mid-journal",
        }
    }
}

/// Per-mode counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeModeStats {
    /// Cases executed.
    pub runs: u64,
    /// Invariant violations (panics, hangs, wrong outputs, collateral
    /// quarantines, untyped shedding).
    pub violations: u64,
    /// Jobs that completed with an output across the mode's cases.
    pub completed: u64,
    /// Requests shed with typed `Overloaded` / `DeadlineExceeded`.
    pub shed: u64,
    /// Jobs quarantined by the supervisor ladder.
    pub quarantined: u64,
    /// Results dropped because the client had hung up.
    pub dropped: u64,
}

/// Aggregate result of a service-chaos fuzzing run.
#[derive(Debug, Clone)]
pub struct ServeFuzzSummary {
    /// Plan seed.
    pub seed: u64,
    /// Cases executed across modes.
    pub iters: u64,
    /// Counters per mode, indexed like [`ServeChaosMode::ALL`].
    pub stats: Vec<(ServeChaosMode, ServeModeStats)>,
    /// Human-readable description of every violation.
    pub violations: Vec<String>,
}

impl ServeFuzzSummary {
    /// Total invariant violations.
    pub fn panics(&self) -> u64 {
        self.violations.len() as u64
    }
}

impl std::fmt::Display for ServeFuzzSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve_fuzz seed={:#x} iters={} panics={}",
            self.seed,
            self.iters,
            self.panics()
        )?;
        for (mode, s) in &self.stats {
            writeln!(
                f,
                "mode={} runs={} violations={} completed={} shed={} \
                 quarantined={} dropped={}",
                mode.name(),
                s.runs,
                s.violations,
                s.completed,
                s.shed,
                s.quarantined,
                s.dropped
            )?;
        }
        for v in &self.violations {
            writeln!(f, "violation {v}")?;
        }
        Ok(())
    }
}

/// The reference implementation the serve checks compare against —
/// identical to the `csv` builtin kernel's fallback rung.
fn csv_reference() -> Arc<dyn ReferenceFallback> {
    Arc::new(CsvFramingFallback {
        delimiter: b',',
        quote: b'"',
        field_sep: udp_compilers::FIELD_SEP,
        record_sep: udp_compilers::RECORD_SEP,
    })
}

fn expect_output(reference: &dyn ReferenceFallback, input: &[u8]) -> Vec<u8> {
    reference
        .reference_output(input)
        .unwrap_or_else(|e| panic!("reference refused clean input: {e}"))
}

/// A fuzz-sized runtime. Queue bounds are small so overload is cheap to
/// provoke; `parallel` is drawn per case so both pool paths see chaos.
fn fuzz_runtime(rng: &mut SmallRng, queue_capacity: usize) -> Result<ServeRuntime, ServeError> {
    ServeRuntime::start_with_builtin_kernels(ServeConfig {
        queue_capacity,
        max_wave: 8,
        parallel: rng.gen::<bool>(),
        default_quota: TenantQuota {
            max_queued: 4,
            cycle_budget: None,
        },
        quarantine_strikes: 1,
        ..ServeConfig::default()
    })
}

/// Collects a ticket with the hang detector, pushing a violation string
/// for a hang or a runtime teardown.
fn settle(
    ticket: JobTicket,
    mode: ServeChaosMode,
    what: &str,
    violations: &mut Vec<String>,
) -> Option<Result<udp_serve::JobOutput, ServeError>> {
    match ticket.wait_timeout(HANG_LIMIT) {
        Err(ServeError::ResultTimeout { waited_ms }) => {
            violations.push(format!(
                "mode={} {what}: HUNG (no result after {waited_ms} ms)",
                mode.name()
            ));
            None
        }
        Err(ServeError::RuntimeGone) => {
            violations.push(format!(
                "mode={} {what}: runtime dropped the job without a result",
                mode.name()
            ));
            None
        }
        other => Some(other),
    }
}

/// One `OverloadBurst` case: saturate the queue while dispatch is
/// paused, mix in already-expired deadlines, then resume and demand
/// that every accepted job completes correctly and every refusal was
/// typed.
fn run_overload_burst(seed: u64, stats: &mut ServeModeStats, violations: &mut Vec<String>) {
    let mode = ServeChaosMode::OverloadBurst;
    let mut rng = SmallRng::seed_from_u64(seed);
    let reference = csv_reference();
    let rt = match fuzz_runtime(&mut rng, 6) {
        Ok(rt) => rt,
        Err(e) => {
            violations.push(format!("mode={} runtime failed to start: {e}", mode.name()));
            return;
        }
    };
    let handle = rt.handle();
    handle.pause();
    let mut accepted: Vec<(JobTicket, Vec<u8>)> = Vec::new();
    let mut expired: Vec<JobTicket> = Vec::new();
    let mut shed = 0u64;
    let burst = 16 + rng.gen_range(0..8usize);
    for i in 0..burst {
        let tenant = format!("t{}", i % 5);
        let payload = format!("r{i},{seed}\n").into_bytes();
        let mut spec = JobSpec::new(tenant, "csv", payload.clone());
        // A slice of the burst carries an effectively-expired deadline:
        // it must shed as DeadlineExceeded at dispatch, never execute
        // into a late delivery.
        let expires = rng.gen_range(0..4u32) == 0;
        if expires {
            spec = spec.with_deadline(Duration::from_millis(1));
        }
        match handle.submit(spec) {
            Ok(ticket) if expires => expired.push(ticket),
            Ok(ticket) => accepted.push((ticket, payload)),
            Err(ServeError::Overloaded {
                scope,
                queued,
                capacity,
            }) => {
                shed += 1;
                let plausible = match scope {
                    OverloadScope::Queue => queued >= capacity,
                    OverloadScope::Tenant => queued >= capacity,
                };
                if !plausible {
                    violations.push(format!(
                        "mode={} overload shed with queued={queued} < capacity={capacity}",
                        mode.name()
                    ));
                }
            }
            Err(other) => violations.push(format!(
                "mode={} untyped/unexpected admission refusal: {other}",
                mode.name()
            )),
        }
    }
    if shed == 0 {
        violations.push(format!(
            "mode={} burst of {burst} against capacity 6 shed nothing",
            mode.name()
        ));
    }
    // Let the expired deadlines actually expire before dispatch runs.
    std::thread::sleep(Duration::from_millis(5));
    handle.resume();
    for (ticket, payload) in accepted {
        match settle(ticket, mode, "accepted burst job", violations) {
            Some(Ok(out)) => {
                stats.completed += 1;
                let expect = expect_output(reference.as_ref(), &payload);
                if out.output != expect {
                    violations.push(format!(
                        "mode={} burst job output diverges from the reference",
                        mode.name()
                    ));
                }
            }
            Some(Err(ServeError::DeadlineExceeded { .. })) => shed += 1,
            Some(Err(e)) => violations.push(format!(
                "mode={} accepted job failed untypically: {e}",
                mode.name()
            )),
            None => {}
        }
    }
    for ticket in expired {
        match settle(ticket, mode, "expired-deadline job", violations) {
            Some(Err(ServeError::DeadlineExceeded { .. })) => shed += 1,
            // The scheduler may still beat a 1 ms deadline when the
            // pause window was short; a correct on-time result is fine.
            Some(Ok(_)) => stats.completed += 1,
            Some(Err(e)) => violations.push(format!(
                "mode={} expired job shed untypically: {e}",
                mode.name()
            )),
            None => {}
        }
    }
    let final_stats = rt.shutdown(Shutdown::Drain);
    stats.shed += shed;
    check_clean_service(mode, &final_stats, violations);
}

/// One `ClientDisconnect` case: drop a random half of the tickets
/// before the scheduler runs; survivors must complete correctly and the
/// runtime must account the undeliverable results without erroring.
fn run_client_disconnect(seed: u64, stats: &mut ServeModeStats, violations: &mut Vec<String>) {
    let mode = ServeChaosMode::ClientDisconnect;
    let mut rng = SmallRng::seed_from_u64(seed);
    let reference = csv_reference();
    let rt = match fuzz_runtime(&mut rng, 64) {
        Ok(rt) => rt,
        Err(e) => {
            violations.push(format!("mode={} runtime failed to start: {e}", mode.name()));
            return;
        }
    };
    let handle = rt.handle();
    handle.pause();
    let mut kept: Vec<(JobTicket, Vec<u8>)> = Vec::new();
    let mut dropped = 0u64;
    for i in 0..12 {
        let tenant = format!("t{}", i % 3);
        let payload = format!("d{i},{seed}\n").into_bytes();
        match handle.submit(JobSpec::new(tenant, "csv", payload.clone())) {
            Ok(ticket) => {
                if rng.gen::<bool>() {
                    drop(ticket); // the client hangs up mid-job
                    dropped += 1;
                } else {
                    kept.push((ticket, payload));
                }
            }
            Err(e) => violations.push(format!(
                "mode={} submission refused unexpectedly: {e}",
                mode.name()
            )),
        }
    }
    handle.resume();
    for (ticket, payload) in kept {
        match settle(ticket, mode, "surviving client", violations) {
            Some(Ok(out)) => {
                stats.completed += 1;
                if out.output != expect_output(reference.as_ref(), &payload) {
                    violations.push(format!(
                        "mode={} surviving client got a wrong output",
                        mode.name()
                    ));
                }
            }
            Some(Err(e)) => {
                violations.push(format!("mode={} surviving client failed: {e}", mode.name()))
            }
            None => {}
        }
    }
    let final_stats = rt.shutdown(Shutdown::Drain);
    if final_stats.results_dropped < dropped {
        violations.push(format!(
            "mode={} dropped {dropped} tickets but results_dropped={}",
            mode.name(),
            final_stats.results_dropped
        ));
    }
    stats.dropped += final_stats.results_dropped;
    check_clean_service(mode, &final_stats, violations);
}

/// One `StalledReader` case (socket transport): a peer writes half a
/// length prefix and stalls. The server's read timeout must reclaim the
/// handler, and a well-behaved client must be served concurrently.
#[cfg(unix)]
fn run_stalled_reader(seed: u64, stats: &mut ServeModeStats, violations: &mut Vec<String>) {
    use std::io::Write;

    let mode = ServeChaosMode::StalledReader;
    let mut rng = SmallRng::seed_from_u64(seed);
    let reference = csv_reference();
    let rt = match fuzz_runtime(&mut rng, 64) {
        Ok(rt) => rt,
        Err(e) => {
            violations.push(format!("mode={} runtime failed to start: {e}", mode.name()));
            return;
        }
    };
    let sock_path = std::env::temp_dir().join(format!(
        "udp-serve-fuzz-{}-{seed:x}.sock",
        std::process::id()
    ));
    let server = match udp_serve::SocketServer::bind(
        &sock_path,
        rt.handle(),
        udp_serve::SocketConfig {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            ..udp_serve::SocketConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("mode={} socket bind failed: {e}", mode.name()));
            return;
        }
    };
    // The stalled peer: half a length prefix, then silence.
    let staller = std::os::unix::net::UnixStream::connect(&sock_path);
    match &staller {
        Ok(s) => {
            let mut s = s;
            let _ = s.write_all(&[0x04, 0x00]); // half of a u32 length
        }
        Err(e) => violations.push(format!("mode={} staller connect failed: {e}", mode.name())),
    }
    // A well-behaved client must be served while the staller squats.
    let payload = format!("s,{seed}\n").into_bytes();
    match udp_serve::ServeClient::connect(&sock_path, HANG_LIMIT) {
        Ok(mut client) => match client.submit(JobSpec::new("good", "csv", payload.clone())) {
            Ok(Ok(out)) => {
                stats.completed += 1;
                if out.output != expect_output(reference.as_ref(), &payload) {
                    violations.push(format!(
                        "mode={} well-behaved client got a wrong output",
                        mode.name()
                    ));
                }
            }
            Ok(Err(remote)) => violations.push(format!(
                "mode={} well-behaved client refused: code={} {}",
                mode.name(),
                remote.code,
                remote.message
            )),
            Err(e) => violations.push(format!(
                "mode={} well-behaved client transport error: {e}",
                mode.name()
            )),
        },
        Err(e) => violations.push(format!("mode={} client connect failed: {e}", mode.name())),
    }
    // Give the server's read timeout room to reclaim the stalled
    // handler, then confirm the service is still healthy end to end.
    std::thread::sleep(Duration::from_millis(250));
    match udp_serve::ServeClient::connect(&sock_path, HANG_LIMIT) {
        Ok(mut client) => {
            if let Err(e) = client.call(&udp_serve::Request::Ping) {
                violations.push(format!("mode={} ping after stall failed: {e}", mode.name()));
            }
        }
        Err(e) => violations.push(format!(
            "mode={} reconnect after stall failed: {e}",
            mode.name()
        )),
    }
    drop(staller);
    server.stop();
    let final_stats = rt.shutdown(Shutdown::Drain);
    check_clean_service(mode, &final_stats, violations);
}

#[cfg(not(unix))]
fn run_stalled_reader(_seed: u64, _stats: &mut ServeModeStats, _violations: &mut Vec<String>) {}

/// One `PoisonTenant` case: the poison tenant's jobs carry persistent
/// chaos on a fallback-less kernel and must quarantine — the tenant
/// after its first strike — while clean tenants' outputs stay
/// reference-identical and their tenancy untouched.
fn run_poison_tenant(seed: u64, stats: &mut ServeModeStats, violations: &mut Vec<String>) {
    let mode = ServeChaosMode::PoisonTenant;
    let mut rng = SmallRng::seed_from_u64(seed);
    let reference = csv_reference();
    let rt = match fuzz_runtime(&mut rng, 64) {
        Ok(rt) => rt,
        Err(e) => {
            violations.push(format!("mode={} runtime failed to start: {e}", mode.name()));
            return;
        }
    };
    let handle = rt.handle();
    // The poison kernel: same CSV image, no reference fallback — the
    // ladder's second rung is missing, so persistent chaos quarantines.
    match udp_serve::csv_kernel() {
        Ok((image, _)) => {
            if let Err(e) = handle.register_kernel("csv-raw", image, None) {
                violations.push(format!(
                    "mode={} poison kernel registration failed: {e}",
                    mode.name()
                ));
                return;
            }
        }
        Err(e) => {
            violations.push(format!("mode={} csv kernel failed: {e}", mode.name()));
            return;
        }
    }
    handle.pause();
    // Clean tenants: small payloads, far below the chaos point.
    let mut clean: Vec<(JobTicket, Vec<u8>, String)> = Vec::new();
    for i in 0..4 {
        let tenant = format!("clean{i}");
        let payload = format!("c{i},{seed}\n").into_bytes();
        match handle.submit(JobSpec::new(tenant.clone(), "csv", payload.clone())) {
            Ok(t) => clean.push((t, payload, tenant)),
            Err(e) => violations.push(format!(
                "mode={} clean submission refused: {e}",
                mode.name()
            )),
        }
    }
    // The poison job: a long payload whose cycle count crosses the
    // chaos point; persistent, so replays re-fault, and with no
    // fallback the ladder ends in quarantine.
    let long = lineitem_csv(1024, seed);
    let chaos = ChaosSpec {
        fault_at: Some(200 + rng.gen_range(0..200u64)),
        panic_at: None,
        transient: false,
    };
    let mut poison_spec = JobSpec::new("poison", "csv-raw", long);
    poison_spec.chaos = Some(chaos);
    let poison_ticket = match handle.submit(poison_spec) {
        Ok(t) => Some(t),
        Err(e) => {
            violations.push(format!(
                "mode={} poison submission refused: {e}",
                mode.name()
            ));
            None
        }
    };
    handle.resume();
    if let Some(ticket) = poison_ticket {
        match settle(ticket, mode, "poison job", violations) {
            Some(Err(ServeError::JobQuarantined { fault })) => {
                stats.quarantined += 1;
                if fault != "chaos-injected" {
                    violations.push(format!(
                        "mode={} poison quarantined with unexpected fault {fault}",
                        mode.name()
                    ));
                }
            }
            Some(Ok(_)) => violations.push(format!(
                "mode={} poison job completed instead of quarantining",
                mode.name()
            )),
            Some(Err(e)) => violations.push(format!(
                "mode={} poison job failed untypically: {e}",
                mode.name()
            )),
            None => {}
        }
    }
    // The offender must now be tenant-quarantined...
    match handle.submit(JobSpec::new("poison", "csv", b"x,y\n".to_vec())) {
        Err(ServeError::TenantQuarantined { strikes }) if strikes >= 1 => {}
        other => violations.push(format!(
            "mode={} poison tenant re-admitted after quarantine: {other:?}",
            mode.name()
        )),
    }
    // ...and only the offender: clean tenants keep full service.
    for (ticket, payload, tenant) in clean {
        match settle(ticket, mode, "clean neighbor", violations) {
            Some(Ok(out)) => {
                stats.completed += 1;
                if out.outcome != JobOutcome::Clean {
                    violations.push(format!(
                        "mode={} clean neighbor {tenant} came through {:?}",
                        mode.name(),
                        out.outcome
                    ));
                }
                if out.output != expect_output(reference.as_ref(), &payload) {
                    violations.push(format!(
                        "mode={} clean neighbor {tenant} output diverges",
                        mode.name()
                    ));
                }
            }
            Some(Err(e)) => violations.push(format!(
                "mode={} clean neighbor {tenant} failed: {e}",
                mode.name()
            )),
            None => {}
        }
        match handle.submit(JobSpec::new(tenant.clone(), "csv", payload)) {
            Ok(t) => match settle(t, mode, "clean resubmission", violations) {
                Some(Ok(_)) => stats.completed += 1,
                Some(Err(e)) => violations.push(format!(
                    "mode={} clean resubmission by {tenant} failed: {e}",
                    mode.name()
                )),
                None => {}
            },
            Err(e) => violations.push(format!(
                "mode={} clean tenant {tenant} lost service: {e}",
                mode.name()
            )),
        }
    }
    let final_stats = rt.shutdown(Shutdown::Drain);
    if final_stats.tenants_quarantined != 1 {
        violations.push(format!(
            "mode={} expected exactly 1 quarantined tenant, stats say {}",
            mode.name(),
            final_stats.tenants_quarantined
        ));
    }
}

/// One `KillMidJournal` case: a journaled service registers its
/// kernels from the artifact store, runs jobs, quarantines a tenant —
/// then dies (abort) and has its journal torn at a random byte. The
/// restart must replay the surviving prefix and keep serving: a probe
/// job either completes reference-identically or is refused with the
/// typed `UnknownKernel` (its registration record was in the torn
/// tail). Anything else — a failed restart, a panic, a hang — is a
/// violation.
fn run_kill_mid_journal(seed: u64, stats: &mut ServeModeStats, violations: &mut Vec<String>) {
    let mode = ServeChaosMode::KillMidJournal;
    let mut rng = SmallRng::seed_from_u64(seed);
    let reference = csv_reference();
    let root =
        std::env::temp_dir().join(format!("udp-serve-killj-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = match udp_store::ArtifactStore::open_with(root.join("store"), false) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("mode={} store failed to open: {e}", mode.name()));
            return;
        }
    };
    let journal = root.join("serve.journal");
    let parallel = rng.gen::<bool>();
    let config = || ServeConfig {
        queue_capacity: 64,
        max_wave: 8,
        parallel,
        default_quota: TenantQuota {
            max_queued: 8,
            cycle_budget: None,
        },
        quarantine_strikes: 1,
        journal_sync: false,
        ..ServeConfig::default()
    };
    let rt = match ServeRuntime::start_journaled(config(), &journal, &store) {
        Ok(rt) => rt,
        Err(e) => {
            violations.push(format!("mode={} runtime failed to start: {e}", mode.name()));
            return;
        }
    };
    let handle = rt.handle();
    let registered = udp_serve::csv_kernel_artifact(&store).and_then(|(artifact, fallback)| {
        handle.register_artifact("csv", &artifact, Some(fallback))?;
        handle.register_artifact("csv-raw", &artifact, None)
    });
    if let Err(e) = registered {
        violations.push(format!(
            "mode={} artifact registration failed: {e}",
            mode.name()
        ));
        return;
    }
    // Pre-kill history: clean work plus a quarantined tenant, so the
    // journal holds registers, charges, a strike, and a quarantine.
    for i in 0..3 {
        let payload = format!("k{i},{seed}\n").into_bytes();
        match handle.submit(JobSpec::new(format!("t{}", i % 2), "csv", payload)) {
            Ok(t) => match settle(t, mode, "pre-kill job", violations) {
                Some(Ok(_)) => stats.completed += 1,
                Some(Err(e)) => {
                    violations.push(format!("mode={} pre-kill job failed: {e}", mode.name()))
                }
                None => {}
            },
            Err(e) => violations.push(format!(
                "mode={} pre-kill submission refused: {e}",
                mode.name()
            )),
        }
    }
    let mut poison = JobSpec::new("poison", "csv-raw", lineitem_csv(1024, seed));
    poison.chaos = Some(ChaosSpec {
        fault_at: Some(200 + rng.gen_range(0..200u64)),
        panic_at: None,
        transient: false,
    });
    match handle.submit(poison) {
        Ok(t) => match settle(t, mode, "poison job", violations) {
            Some(Err(ServeError::JobQuarantined { .. })) => stats.quarantined += 1,
            Some(other) => violations.push(format!(
                "mode={} poison job did not quarantine: {other:?}",
                mode.name()
            )),
            None => {}
        },
        Err(e) => violations.push(format!(
            "mode={} poison submission refused: {e}",
            mode.name()
        )),
    }
    // The kill: abort, then tear the journal at a random byte.
    rt.shutdown(Shutdown::Abort);
    let len = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    if len == 0 {
        violations.push(format!(
            "mode={} journal is empty before the tear",
            mode.name()
        ));
    }
    let cut = rng.gen_range(0..=len);
    if let Err(e) = std::fs::OpenOptions::new()
        .write(true)
        .open(&journal)
        .and_then(|f| f.set_len(cut))
    {
        violations.push(format!("mode={} journal tear failed: {e}", mode.name()));
    }
    // The restart: must come up from the torn journal, no exceptions.
    let rt2 = match ServeRuntime::start_journaled(config(), &journal, &store) {
        Ok(rt) => rt,
        Err(e) => {
            violations.push(format!(
                "mode={} restart from torn journal failed: {e}",
                mode.name()
            ));
            return;
        }
    };
    let probe_payload = format!("probe,{seed}\n").into_bytes();
    match rt2
        .handle()
        .submit(JobSpec::new("prober", "csv", probe_payload.clone()))
    {
        Ok(t) => match settle(t, mode, "post-restart probe", violations) {
            Some(Ok(out)) => {
                stats.completed += 1;
                if out.output != expect_output(reference.as_ref(), &probe_payload) {
                    violations.push(format!(
                        "mode={} post-restart probe output diverges",
                        mode.name()
                    ));
                }
            }
            Some(Err(e)) => violations.push(format!(
                "mode={} post-restart probe failed untypically: {e}",
                mode.name()
            )),
            None => {}
        },
        // The cut may have torn away the registration record itself —
        // a typed refusal naming the kernel is the correct prefix
        // semantics, not a violation.
        Err(ServeError::UnknownKernel { .. }) => {}
        Err(e) => violations.push(format!(
            "mode={} post-restart probe refused untypically: {e}",
            mode.name()
        )),
    }
    rt2.shutdown(Shutdown::Drain);
    let _ = std::fs::remove_dir_all(&root);
}

/// Post-case sanity shared by the non-quarantine modes: no job was
/// quarantined and no tenant collaterally isolated.
fn check_clean_service(mode: ServeChaosMode, s: &ServeStats, violations: &mut Vec<String>) {
    if s.quarantined_jobs != 0 || s.tenants_quarantined != 0 {
        violations.push(format!(
            "mode={} collateral quarantine: jobs={} tenants={}",
            mode.name(),
            s.quarantined_jobs,
            s.tenants_quarantined
        ));
    }
}

/// Runs `iters` service-chaos cases, cycling [`ServeChaosMode::ALL`],
/// with the default panic hook silenced (deliberate chaos panics inside
/// lanes would otherwise spray backtraces). Deterministic per
/// `(seed, iters)` up to wall-clock racing on deadline expiry, which
/// the checks treat as either-typed-outcome-is-fine.
pub fn run_serve_plan(seed: u64, iters: u64) -> ServeFuzzSummary {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut stats: Vec<(ServeChaosMode, ServeModeStats)> = ServeChaosMode::ALL
        .iter()
        .map(|&m| (m, ServeModeStats::default()))
        .collect();
    let mut violations = Vec::new();
    for i in 0..iters {
        let mode = ServeChaosMode::ALL[(i % ServeChaosMode::ALL.len() as u64) as usize];
        let case_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let entry = stats.iter_mut().find(|(m, _)| *m == mode).map(|(_, s)| s);
        let Some(s) = entry else { continue };
        s.runs += 1;
        let before = violations.len();
        match mode {
            ServeChaosMode::OverloadBurst => run_overload_burst(case_seed, s, &mut violations),
            ServeChaosMode::ClientDisconnect => {
                run_client_disconnect(case_seed, s, &mut violations)
            }
            ServeChaosMode::StalledReader => run_stalled_reader(case_seed, s, &mut violations),
            ServeChaosMode::PoisonTenant => run_poison_tenant(case_seed, s, &mut violations),
            ServeChaosMode::KillMidJournal => run_kill_mid_journal(case_seed, s, &mut violations),
        }
        s.violations += (violations.len() - before) as u64;
    }
    std::panic::set_hook(prev_hook);
    ServeFuzzSummary {
        seed,
        iters,
        stats,
        violations,
    }
}

/// The CI smoke scenario: one mixed batch — clean tenants, an overload
/// burst, and a poison tenant — through one runtime. Gates on zero
/// violations; returns the joined violation text otherwise.
pub fn run_smoke(seed: u64) -> Result<ServeFuzzSummary, String> {
    let summary = run_serve_plan(seed, ServeChaosMode::ALL.len() as u64);
    if summary.panics() == 0 {
        Ok(summary)
    } else {
        Err(summary.violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_of_every_mode_is_violation_free() {
        let summary = run_serve_plan(0x5EEDED, ServeChaosMode::ALL.len() as u64);
        assert_eq!(
            summary.panics(),
            0,
            "violations:\n{}",
            summary.violations.join("\n")
        );
        for (_, s) in &summary.stats {
            assert_eq!(s.runs, 1);
        }
        let text = summary.to_string();
        assert!(text.starts_with("serve_fuzz seed=0x5eeded iters=5 panics=0"));
        assert!(text.contains("mode=overload-burst "));
        assert!(text.contains("mode=poison-tenant "));
        assert!(text.contains("mode=kill-mid-journal "));
    }

    #[test]
    fn smoke_gate_passes_at_the_ci_seed() {
        let summary = run_smoke(0xC1).expect("smoke must be violation-free");
        assert_eq!(summary.panics(), 0);
    }
}

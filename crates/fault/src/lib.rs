//! # udp-fault — fault injection and graceful-degradation harness
//!
//! The UDP is pitched as a production ETL accelerator ingesting
//! arbitrary external data (paper §2, Figure 1). A service in that
//! position is fed corrupt program images, damaged compressed streams,
//! and dirty CSV/JSON feeds as a matter of course, so the stack must
//! obey one invariant (DESIGN.md §8):
//!
//! > **Every run terminates within its cycle/fuel budget and returns a
//! > typed error or `LaneStatus::Fault` — never a panic and never a
//! > hang.**
//!
//! This crate *tries to break that invariant* deterministically:
//!
//! * [`FaultPlan`] derives a reproducible stream of [`FaultCase`]s
//!   from a single seed (the vendored xoshiro `SmallRng`), cycling
//!   through every [`FaultMode`];
//! * [`mutate`] holds the pure corruption primitives — bit flips in
//!   transition/action words, image truncation, stream truncation and
//!   byte flips, invalid Snappy framing, malformed CSV/JSON records,
//!   hostile run configs;
//! * [`harness`] drives each case through the real stack — `Lane`,
//!   `Udp` sequential and parallel waves, the codecs, and the
//!   recovering ETL pipeline — under `catch_unwind`, and classifies
//!   the outcome as [`Outcome::Clean`], [`Outcome::Degraded`]
//!   (the designed response), or [`Outcome::Panicked`] (an invariant
//!   violation).
//!
//! The `fault_fuzz` binary in `udp-bench` runs N seeded iterations and
//! prints a machine-readable summary; `scripts/ci.sh` gates on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;
pub mod mutate;
pub mod plan;
pub mod serve;
pub mod store;

pub use harness::{run_case, run_plan, CaseReport, FuzzSummary, ModeStats, Outcome};
pub use plan::{FaultCase, FaultMode, FaultPlan};
pub use serve::{run_serve_plan, run_smoke, ServeChaosMode, ServeFuzzSummary, ServeModeStats};
pub use store::{run_store_plan, StoreChaosMode, StoreFuzzSummary, StoreModeStats};

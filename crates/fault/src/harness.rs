//! Drives fault cases through the real stack and classifies outcomes.
//!
//! Each case runs under `catch_unwind`; the stack's *designed*
//! responses (typed errors, `LaneStatus::Fault`, rejected rows) are
//! [`Outcome::Degraded`], an untouched happy path is
//! [`Outcome::Clean`], and anything that unwinds out of the driver is
//! [`Outcome::Panicked`] — an invariant violation the `fault_fuzz`
//! gate fails on. Hangs are excluded structurally: every driver caps
//! `max_cycles`, so a case that does not return is a bug in the cycle
//! budget itself.

use crate::mutate;
use crate::plan::{FaultCase, FaultMode, FaultPlan};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use udp_asm::{LayoutOptions, ProgramImage};
use udp_codecs::fallback::CsvFramingFallback;
use udp_codecs::json::JsonTokenizer;
use udp_codecs::snappy::{snappy_compress, snappy_decompress};
use udp_etl::run_cpu_etl_recovering;
use udp_sim::lane::{Lane, LaneConfig, LaneStatus};
use udp_sim::{ChunkOutcome, FaultKind, ReferenceFallback, SupervisorOptions, Udp, UdpRunOptions};
use udp_workloads::{lineitem_csv, ndjson_events};

/// Cycle budget for every harness run. Small enough that a million
/// cases finish quickly, large enough that clean runs over the
/// harness's small inputs never hit it.
const FUZZ_MAX_CYCLES: u64 = 200_000;

/// How one case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The corrupted artifact still processed cleanly end to end.
    Clean,
    /// The stack absorbed the damage through a designed path: a typed
    /// error, a `LaneStatus` fault/limit, or rejected rows. This is
    /// the response the invariant demands.
    Degraded(String),
    /// A panic unwound out of the stack — an invariant violation.
    Panicked(String),
}

/// Per-chunk recovery counters a supervised case contributes (always
/// zero for unsupervised modes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Chunks that came back via deterministic replay.
    pub recovered: u64,
    /// Chunks served by the software reference fallback.
    pub fallback: u64,
    /// Chunks the supervisor had to quarantine.
    pub quarantined: u64,
}

/// One executed case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case that ran (replay coordinate).
    pub case: FaultCase,
    /// How it ended.
    pub outcome: Outcome,
    /// Whether `udp-verify` flagged the corrupted image with at least
    /// one `Error` finding before the dynamic run. Only image-mutation
    /// modes consult the oracle; always `false` elsewhere.
    pub static_reject: bool,
    /// Recovery-ladder counters (supervised chaos modes only).
    pub recovery: Recovery,
    /// Host wall time for the case, microseconds (hang telemetry).
    pub micros: u128,
}

/// Per-mode outcome counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModeStats {
    /// Cases that processed cleanly despite the damage.
    pub clean: u64,
    /// Cases absorbed through a designed degradation path.
    pub degraded: u64,
    /// Cases that panicked (invariant violations).
    pub panicked: u64,
    /// Cases the static verifier rejected before execution (the
    /// usefulness half of `udp-verify`'s tested invariants).
    pub static_reject: u64,
    /// Chunks recovered by replay across the mode's cases.
    pub recovered: u64,
    /// Chunks served by the reference fallback across the mode's cases.
    pub fallback: u64,
    /// Chunks quarantined across the mode's cases.
    pub quarantined: u64,
}

/// Aggregate result of a fuzzing run, printable as the
/// machine-readable `key=value` summary the CI gate parses.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Plan seed the run derives from.
    pub seed: u64,
    /// Cases executed.
    pub iters: u64,
    /// Counters per mode, indexed like [`FaultMode::ALL`].
    pub stats: Vec<(FaultMode, ModeStats)>,
    /// Reports for every panicked case (replay coordinates).
    pub violations: Vec<CaseReport>,
    /// Slowest single case, microseconds.
    pub max_case_micros: u128,
}

impl FuzzSummary {
    /// Total invariant violations across modes.
    pub fn panics(&self) -> u64 {
        self.stats.iter().map(|(_, s)| s.panicked).sum()
    }

    /// Total cases the static verifier rejected before execution.
    pub fn static_rejects(&self) -> u64 {
        self.stats.iter().map(|(_, s)| s.static_reject).sum()
    }

    /// Recovered-or-fallback percentage over the *transient* injection
    /// mode's faulted chunks, `None` when no transient chunk faulted
    /// (e.g. the mode never ran). This is the CI robustness gate: a
    /// transient fault must resolve on the first two ladder rungs, so
    /// a healthy run reports 100.
    pub fn transient_recovery_rate(&self) -> Option<f64> {
        let s = self
            .stats
            .iter()
            .find(|(m, _)| *m == FaultMode::ChaosTransient)
            .map(|(_, s)| *s)?;
        let faulted = s.recovered + s.fallback + s.quarantined;
        if faulted == 0 {
            return None;
        }
        Some((s.recovered + s.fallback) as f64 / faulted as f64 * 100.0)
    }
}

impl std::fmt::Display for FuzzSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault_fuzz seed={:#x} iters={} panics={} max_case_us={}",
            self.seed,
            self.iters,
            self.panics(),
            self.max_case_micros
        )?;
        for (mode, s) in &self.stats {
            writeln!(
                f,
                "mode={} clean={} degraded={} panicked={} static_reject={} \
                 recovered={} fallback={} quarantined={}",
                mode.name(),
                s.clean,
                s.degraded,
                s.panicked,
                s.static_reject,
                s.recovered,
                s.fallback,
                s.quarantined
            )?;
        }
        for v in &self.violations {
            writeln!(
                f,
                "violation index={} mode={} case_seed={:#x}",
                v.case.index,
                v.case.mode.name(),
                v.case.seed
            )?;
        }
        Ok(())
    }
}

/// The CSV field/record scanner compiled by `udp-compilers` — the
/// harness's stand-in for "a real deployed kernel". Assembled once;
/// cases clone and damage the copy.
fn base_image() -> &'static ProgramImage {
    static IMG: OnceLock<ProgramImage> = OnceLock::new();
    IMG.get_or_init(|| {
        let pb = udp_compilers::csv::csv_to_udp();
        let mut banks = 1;
        loop {
            match pb.assemble(&LayoutOptions::with_banks(banks)) {
                Ok(img) => return img,
                Err(_) if banks < 64 => banks *= 2,
                Err(e) => panic!("csv kernel must assemble: {e:?}"),
            }
        }
    })
}

fn fuzz_lane_config() -> LaneConfig {
    LaneConfig {
        max_cycles: FUZZ_MAX_CYCLES,
        ..LaneConfig::default()
    }
}

/// Runs a (possibly damaged) image over `input` on a single lane and
/// the full device (sequential and threaded waves), classifying the
/// worst lane status seen. Panics inside propagate to the case's
/// `catch_unwind`.
fn drive_image(image: &ProgramImage, input: &[u8]) -> Outcome {
    let cfg = fuzz_lane_config();
    let rep = Lane::run_program(image, input, &cfg);
    debug_assert!(rep.status != LaneStatus::Running, "lane returned mid-run");
    let mut worst = classify_status(&rep.status);

    let staging = udp_sim::engine::Staging::default();
    for parallel in [false, true] {
        let opts = UdpRunOptions {
            banks_per_lane: banks_for(image),
            lane: cfg.clone(),
            parallel,
            ..UdpRunOptions::default()
        };
        let mut udp = Udp::new();
        match udp.try_run_data_parallel(image, &[input, input], &staging, &opts) {
            Ok(rep) => {
                for lane in &rep.lanes {
                    debug_assert!(lane.status != LaneStatus::Running);
                    worst = worst.max_with(classify_status(&lane.status));
                }
            }
            Err(e) => worst = worst.max_with(Outcome::Degraded(format!("sim error: {e}"))),
        }
    }
    worst
}

fn banks_for(image: &ProgramImage) -> usize {
    image
        .stats
        .span_words
        .div_ceil(udp_isa::mem::BANK_WORDS)
        .clamp(1, udp_isa::mem::NUM_BANKS)
}

fn classify_status(status: &LaneStatus) -> Outcome {
    match status {
        LaneStatus::InputExhausted | LaneStatus::Halted(_) => Outcome::Clean,
        LaneStatus::Running => Outcome::Panicked("lane still Running after run".into()),
        other => Outcome::Degraded(format!("lane status: {other:?}")),
    }
}

impl Outcome {
    /// Severity merge: `Panicked` > `Degraded` > `Clean`.
    fn max_with(self, other: Outcome) -> Outcome {
        match (&self, &other) {
            (Outcome::Panicked(_), _) => self,
            (_, Outcome::Panicked(_)) => other,
            (Outcome::Degraded(_), _) => self,
            (_, Outcome::Degraded(_)) => other,
            _ => self,
        }
    }
}

/// Drives corrupted compressed bytes through the codec and the
/// recovering ETL pipeline.
fn drive_compressed(bytes: &[u8]) -> Outcome {
    let codec = match snappy_decompress(bytes) {
        Ok(_) => Outcome::Clean,
        Err(e) => Outcome::Degraded(format!("snappy: {e}")),
    };
    let etl = match run_cpu_etl_recovering(bytes) {
        Ok((_, report)) if report.rows_rejected == 0 => Outcome::Clean,
        Ok((_, report)) => Outcome::Degraded(format!("rows_rejected={}", report.rows_rejected)),
        Err(e) => Outcome::Degraded(format!("etl: {e}")),
    };
    codec.max_with(etl)
}

/// The reference fallback matching [`base_image`]'s CSV kernel: comma
/// delimiter, double quote, the compilers' field/record separators.
fn csv_reference() -> Arc<dyn ReferenceFallback> {
    Arc::new(CsvFramingFallback {
        delimiter: b',',
        quote: b'"',
        field_sep: udp_compilers::FIELD_SEP,
        record_sep: udp_compilers::RECORD_SEP,
    })
}

/// Drives a supervised run with a chaos hook injected into one chunk.
///
/// `transient` arms [`LaneConfig::chaos_transient`], so replays run
/// with the hook disarmed and the fault must resolve as `Recovered`
/// (or `Fallback` — never quarantine); persistent chaos re-fires on
/// every replay and must land on the reference fallback. Either way
/// the faulted chunk's final output must be byte-identical to the
/// software reference and the sibling chunks must come through clean.
fn drive_supervised(case: &FaultCase, rng: &mut SmallRng, transient: bool) -> (Outcome, Recovery) {
    let img = base_image();
    let long = lineitem_csv(1024, case.seed);
    let inputs: [&[u8]; 3] = [b"a|b\n", &long, b"c|d\n"];
    // The chaos point sits above the short siblings' total cycle count
    // and far below the long chunk's, so exactly one chunk faults.
    let at = Some(200 + rng.gen_range(0..200u64));
    let inject_panic = rng.gen::<bool>();
    let reference = csv_reference();
    let opts = UdpRunOptions {
        banks_per_lane: banks_for(img),
        lane: LaneConfig {
            max_cycles: FUZZ_MAX_CYCLES,
            chaos_panic_at: if inject_panic { at } else { None },
            chaos_fault_at: if inject_panic { None } else { at },
            chaos_transient: transient,
            ..LaneConfig::default()
        },
        parallel: rng.gen::<bool>(),
        supervise: Some(SupervisorOptions {
            backoff_base_ms: 0,
            fallback: Some(Arc::clone(&reference)),
            differential: true,
            ..SupervisorOptions::default()
        }),
        ..UdpRunOptions::default()
    };
    let staging = udp_sim::engine::Staging::default();
    let rep = match Udp::new().try_run_data_parallel(img, &inputs, &staging, &opts) {
        Ok(rep) => rep,
        Err(e) => {
            return (
                Outcome::Panicked(format!("sim error: {e}")),
                Recovery::default(),
            )
        }
    };
    let recovery = Recovery {
        recovered: rep.health.recovered(),
        fallback: rep.health.fallback(),
        quarantined: rep.health.quarantined(),
    };
    let faulted = recovery.recovered + recovery.fallback + recovery.quarantined;
    if faulted == 0 {
        return (
            Outcome::Panicked("chaos injection never surfaced as a fault".into()),
            recovery,
        );
    }
    if recovery.quarantined > 0 {
        return (
            Outcome::Panicked(format!(
                "chaos fault escalated to quarantine: {:?}",
                rep.health.outcomes
            )),
            recovery,
        );
    }
    if transient && recovery.recovered == 0 {
        return (
            Outcome::Panicked("transient fault did not recover by replay".into()),
            recovery,
        );
    }
    if !transient && recovery.fallback == 0 {
        return (
            Outcome::Panicked("persistent fault did not land on the fallback".into()),
            recovery,
        );
    }
    if rep.health.differential_mismatches > 0 {
        return (
            Outcome::Panicked(format!(
                "{} clean chunk(s) diverged from the software reference",
                rep.health.differential_mismatches
            )),
            recovery,
        );
    }
    // Byte-equality against the reference for every chunk the ladder
    // touched (and the clean siblings, which differential already
    // cross-checked — re-assert the faulted chunk explicitly).
    for (i, outcome) in rep.health.outcomes.iter().enumerate() {
        if matches!(outcome, ChunkOutcome::Clean) {
            continue;
        }
        match reference.reference_output(inputs[i]) {
            Ok(expect) if expect == rep.lanes[i].output => {}
            Ok(_) => {
                return (
                    Outcome::Panicked(format!("chunk {i} output diverges from the reference")),
                    recovery,
                )
            }
            Err(e) => {
                return (
                    Outcome::Panicked(format!("reference refused clean input: {e}")),
                    recovery,
                )
            }
        }
    }
    (
        Outcome::Degraded(format!(
            "recovered={} fallback={}",
            recovery.recovered, recovery.fallback
        )),
        recovery,
    )
}

/// Static-verification oracle: does `udp-verify` reject this image
/// with at least one `Error` finding? Warnings don't count — a clean
/// program carries warnings (dead states) under mutation too rarely to
/// be a rejection signal, and the run invariant only concerns errors.
fn static_oracle(image: &ProgramImage) -> bool {
    udp_verify::verify_image(image, &udp_verify::VerifyOptions::default()).errors() > 0
}

fn run_case_inner(case: &FaultCase) -> (Outcome, bool, Recovery) {
    let mut rng = SmallRng::seed_from_u64(case.seed);
    let mut static_reject = false;
    let mut recovery = Recovery::default();
    let outcome = match case.mode {
        FaultMode::ImageBitFlip => {
            let mut img = base_image().clone();
            let flips = 1 + rng.gen_range(0..16usize);
            mutate::flip_word_bits(&mut img.words, flips, &mut rng);
            static_reject = static_oracle(&img);
            drive_image(&img, b"alpha|beta|1234\ngamma|delta|5678\n")
        }
        FaultMode::ImageTruncate => {
            let mut img = base_image().clone();
            mutate::truncate_image(&mut img, &mut rng);
            static_reject = static_oracle(&img);
            drive_image(&img, b"alpha|beta|1234\ngamma|delta|5678\n")
        }
        FaultMode::StreamTruncate => {
            let mut bytes = snappy_compress(&lineitem_csv(2048, case.seed));
            mutate::truncate_vec(&mut bytes, &mut rng);
            drive_compressed(&bytes)
        }
        FaultMode::StreamByteFlip => {
            let mut bytes = snappy_compress(&lineitem_csv(2048, case.seed));
            let flips = 1 + rng.gen_range(0..8usize);
            mutate::flip_byte_bits(&mut bytes, flips, &mut rng);
            drive_compressed(&bytes)
        }
        FaultMode::SnappyFraming => {
            let len = 1 + rng.gen_range(0..512usize);
            let garbage = mutate::garbage_bytes(len, &mut rng);
            drive_compressed(&garbage)
        }
        FaultMode::CsvMalformed => {
            let mut raw = lineitem_csv(2048, case.seed);
            let hits = 1 + rng.gen_range(0..4usize);
            for _ in 0..hits {
                mutate::malform_csv(&mut raw, b'|', &mut rng);
            }
            // The UDP CSV kernel must still frame the dirty feed...
            let kernel = drive_image(base_image(), &raw);
            // ...and the recovering ETL path must load what survives.
            kernel.max_with(drive_compressed(&snappy_compress(&raw)))
        }
        FaultMode::JsonMalformed => {
            let mut raw = ndjson_events(2048, case.seed);
            mutate::malform_json(&mut raw, &mut rng);
            match JsonTokenizer::new().tokenize(&raw) {
                Ok(_) => Outcome::Clean,
                Err(e) => Outcome::Degraded(format!("json: {e:?}")),
            }
        }
        FaultMode::ConfigTinyCycles => {
            let img = base_image();
            let opts = UdpRunOptions {
                banks_per_lane: banks_for(img),
                lane: LaneConfig {
                    max_cycles: rng.gen_range(0..64u64),
                    ..LaneConfig::default()
                },
                ..UdpRunOptions::default()
            };
            let input = lineitem_csv(1024, case.seed);
            let staging = udp_sim::engine::Staging::default();
            match Udp::new().try_run_data_parallel(img, &[&input], &staging, &opts) {
                Ok(rep) => rep
                    .lanes
                    .iter()
                    .map(|l| classify_status(&l.status))
                    .fold(Outcome::Clean, Outcome::max_with),
                Err(e) => Outcome::Degraded(format!("sim error: {e}")),
            }
        }
        FaultMode::ConfigBadBanks => {
            let img = base_image();
            let banks = if rng.gen::<bool>() {
                0
            } else {
                udp_isa::mem::NUM_BANKS + 1 + rng.gen_range(0..64usize)
            };
            let opts = UdpRunOptions {
                banks_per_lane: banks,
                lane: fuzz_lane_config(),
                ..UdpRunOptions::default()
            };
            let staging = udp_sim::engine::Staging::default();
            match Udp::new().try_run_data_parallel(img, &[b"abc"], &staging, &opts) {
                Ok(_) => Outcome::Panicked(format!("banks_per_lane={banks} was accepted")),
                Err(e) => Outcome::Degraded(format!("sim error: {e}")),
            }
        }
        FaultMode::LanePanic => {
            let img = base_image();
            let long: Vec<u8> = lineitem_csv(1024, case.seed);
            let inputs: [&[u8]; 3] = [b"a|b\n", &long, b"c|d\n"];
            let opts = UdpRunOptions {
                banks_per_lane: banks_for(img),
                // The chaos point sits above the short siblings' total
                // cycle count (a few dozen cycles for 4 bytes) and far
                // below the long lane's (≥1024 dispatches), so exactly
                // the long lane panics and the siblings must survive.
                lane: LaneConfig {
                    max_cycles: FUZZ_MAX_CYCLES,
                    chaos_panic_at: Some(200 + rng.gen_range(0..200u64)),
                    ..LaneConfig::default()
                },
                parallel: true,
                ..UdpRunOptions::default()
            };
            let staging = udp_sim::engine::Staging::default();
            match Udp::new().try_run_data_parallel(img, &inputs, &staging, &opts) {
                Ok(rep) => {
                    let faulted = rep
                        .lanes
                        .iter()
                        .filter(|l| matches!(&l.status, LaneStatus::Fault(FaultKind::HostPanic(_))))
                        .count();
                    let survivors = rep
                        .lanes
                        .iter()
                        .filter(|l| !matches!(l.status, LaneStatus::Fault(_)))
                        .count();
                    if faulted == 0 {
                        Outcome::Panicked("chaos panic did not surface as a Fault lane".into())
                    } else if survivors == 0 {
                        Outcome::Panicked("no sibling lane survived the chaos panic".into())
                    } else {
                        Outcome::Degraded(format!(
                            "{faulted} lane(s) faulted, {survivors} survived"
                        ))
                    }
                }
                Err(e) => Outcome::Degraded(format!("sim error: {e}")),
            }
        }
        FaultMode::ChaosTransient => {
            let (outcome, rec) = drive_supervised(case, &mut rng, true);
            recovery = rec;
            outcome
        }
        FaultMode::ChaosPersistent => {
            let (outcome, rec) = drive_supervised(case, &mut rng, false);
            recovery = rec;
            outcome
        }
    };
    (outcome, static_reject, recovery)
}

/// Executes one case under `catch_unwind`, classifying any escaped
/// panic as [`Outcome::Panicked`]. Deterministic given `case.seed`.
pub fn run_case(case: &FaultCase) -> CaseReport {
    let start = Instant::now();
    let (outcome, static_reject, recovery) =
        match panic::catch_unwind(AssertUnwindSafe(|| run_case_inner(case))) {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                (Outcome::Panicked(msg), false, Recovery::default())
            }
        };
    CaseReport {
        case: *case,
        outcome,
        static_reject,
        recovery,
        micros: start.elapsed().as_micros(),
    }
}

/// Runs `iters` cases of the plan for `seed`, silencing the default
/// panic hook for the duration (deliberate chaos panics and caught
/// violations would otherwise spray backtraces), and aggregates the
/// outcomes into a [`FuzzSummary`].
pub fn run_plan(seed: u64, iters: u64) -> FuzzSummary {
    let plan = FaultPlan::new(seed);
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut stats: Vec<(FaultMode, ModeStats)> = FaultMode::ALL
        .iter()
        .map(|&m| (m, ModeStats::default()))
        .collect();
    let mut violations = Vec::new();
    let mut max_case_micros = 0u128;
    for case in plan.cases(iters) {
        let report = run_case(&case);
        max_case_micros = max_case_micros.max(report.micros);
        if let Some((_, s)) = stats.iter_mut().find(|(m, _)| *m == case.mode) {
            match &report.outcome {
                Outcome::Clean => s.clean += 1,
                Outcome::Degraded(_) => s.degraded += 1,
                Outcome::Panicked(_) => s.panicked += 1,
            }
            if report.static_reject {
                s.static_reject += 1;
            }
            s.recovered += report.recovery.recovered;
            s.fallback += report.recovery.fallback;
            s.quarantined += report.recovery.quarantined;
        }
        if matches!(report.outcome, Outcome::Panicked(_)) {
            violations.push(report);
        }
    }
    panic::set_hook(prev_hook);
    FuzzSummary {
        seed,
        iters,
        stats,
        violations,
        max_case_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mode_survives_a_small_plan() {
        // 36 cases = 3 full cycles through all 12 modes.
        let summary = run_plan(0xDEC0DE, 36);
        assert_eq!(summary.panics(), 0, "violations: {:?}", summary.violations);
        assert_eq!(summary.iters, 36);
        for (_, s) in &summary.stats {
            assert_eq!(s.clean + s.degraded + s.panicked, 3);
        }
    }

    #[test]
    fn chaos_modes_recover_every_injected_fault() {
        let summary = run_plan(0xDEC0DE, 48); // 4 cases per mode
        assert_eq!(summary.panics(), 0, "violations: {:?}", summary.violations);
        for (mode, s) in &summary.stats {
            match mode {
                FaultMode::ChaosTransient => {
                    assert!(s.recovered > 0, "transient chaos must replay-recover");
                    assert_eq!(s.quarantined, 0);
                }
                FaultMode::ChaosPersistent => {
                    assert!(s.fallback > 0, "persistent chaos must hit the fallback");
                    assert_eq!(s.quarantined, 0);
                }
                _ => {
                    assert_eq!(s.recovered + s.fallback + s.quarantined, 0);
                }
            }
        }
        let rate = summary.transient_recovery_rate();
        assert_eq!(rate, Some(100.0), "rate: {rate:?}");
    }

    #[test]
    fn summaries_are_deterministic() {
        let a = run_plan(7, 20);
        let b = run_plan(7, 20);
        for ((ma, sa), (mb, sb)) in a.stats.iter().zip(&b.stats) {
            assert_eq!(ma, mb);
            assert_eq!(sa.clean, sb.clean);
            assert_eq!(sa.degraded, sb.degraded);
            assert_eq!(sa.panicked, sb.panicked);
        }
    }

    #[test]
    fn verifier_statically_rejects_image_mutations() {
        // The usefulness invariant: at the CI seed, a nonzero fraction
        // of corrupted images is rejected by udp-verify before any lane
        // executes — and the oracle only ever fires on image modes.
        let summary = run_plan(0xDEC0DE, 48);
        assert!(
            summary.static_rejects() > 0,
            "expected static rejects at seed 0xDEC0DE:\n{summary}"
        );
        for (mode, s) in &summary.stats {
            let image_mode = matches!(mode, FaultMode::ImageBitFlip | FaultMode::ImageTruncate);
            if !image_mode {
                assert_eq!(s.static_reject, 0, "oracle fired on {}", mode.name());
            }
        }
    }

    #[test]
    fn summary_display_is_machine_readable() {
        let s = run_plan(3, 10).to_string();
        assert!(s.starts_with("fault_fuzz seed=0x3 iters=10 panics="));
        assert!(s.contains("mode=image-bit-flip "));
        assert!(s.contains("mode=lane-panic "));
    }

    #[test]
    fn run_case_catches_escaped_panics() {
        // A chaos panic on the *sequential* path escapes try_run's
        // thread recovery; run it via Lane directly to prove run_case
        // converts an unwound panic into Outcome::Panicked.
        let case = crate::FaultPlan::new(1).case(0);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = match std::panic::catch_unwind(|| {
            let cfg = LaneConfig {
                chaos_panic_at: Some(5),
                ..fuzz_lane_config()
            };
            Lane::run_program(base_image(), &lineitem_csv(512, 1), &cfg);
        }) {
            Ok(()) => Outcome::Clean,
            Err(_) => Outcome::Panicked("escaped".into()),
        };
        std::panic::set_hook(prev);
        assert!(matches!(outcome, Outcome::Panicked(_)));
        // And the harness path itself stays well-typed for the case.
        let rep = run_case(&case);
        assert!(!matches!(rep.outcome, Outcome::Panicked(_)));
    }
}

//! # udp-verify — static verification of UDP program images
//!
//! A load-time lint and verification pass over assembled
//! [`ProgramImage`]s (DESIGN.md §9). Where PR 2's fault harness
//! discovers broken images *dynamically* — by running them under
//! `catch_unwind` until a cycle budget expires — this crate rejects
//! them *statically*, by abstract interpretation over the decoded
//! transition/action graph, the way ISA-model checkers validate an
//! instruction stream before simulation.
//!
//! Seven layered checks (see [`Check`]):
//!
//! 1. **totality** — every referenced word decodes, action blocks
//!    terminate, word kinds agree with the disassembler's classification;
//! 2. **reachability** — dispatch targets land on placed states inside
//!    the image; dead states are reported;
//! 3. **livelock** — no forced pass-through cycle can spin without
//!    consuming input or halting;
//! 4. **use-before-def** — definite-assignment dataflow over scalar
//!    registers (reads of architecturally-zero registers are idiomatic
//!    and stay silent);
//! 5. **addressing** — lane-window legality per [`AddressingMode`];
//! 6. **layout** — EffCLiP integrity: no word collisions, attach
//!    references resolve inside their regions;
//! 7. **cost-unbounded** — resource certification (§9.1): an interval
//!    abstract interpreter ([`absint`]) bounds loop trip counts and a
//!    ratio solver derives a [`udp_asm::ResourceCert`] — worst-case
//!    cycles and output bytes per consumed input byte. Programs whose
//!    consume progress cannot be bounded get a structured finding
//!    instead of a certificate field.
//!
//! Two invariants are tested in CI: *soundness* (every program emitted
//! by every `udp-compilers` backend verifies with zero errors) and
//! *usefulness* (a measured fraction of `udp-fault` image mutations is
//! rejected before execution).
//!
//! ## Example
//!
//! ```
//! use udp_asm::{LayoutOptions, ProgramBuilder, Target};
//! use udp_verify::{verify_image, VerifyOptions};
//!
//! let mut b = ProgramBuilder::new();
//! let s = b.add_consuming_state();
//! b.set_entry(s);
//! b.labeled_arc(s, b'a' as u16, Target::State(s), vec![]);
//! b.fallback_arc(s, Target::Halt, vec![]);
//! let image = b.assemble(&LayoutOptions::default()).unwrap();
//!
//! let report = verify_image(&image, &VerifyOptions::default());
//! assert!(report.is_clean(), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod absint;
pub mod checks;
mod cost;
pub mod finding;
pub mod graph;

pub use absint::{AbsInt, Interval};
pub use finding::{Check, Finding, Report, Severity};
pub use graph::ProgramGraph;

use std::fmt;
use udp_asm::{disassemble, AsmError, LayoutOptions, ProgramBuilder, ProgramImage};
use udp_isa::AddressingMode;

/// Context the verifier judges an image against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Addressing mode the image will run under (window size).
    pub addressing: AddressingMode,
    /// Banks per lane for [`AddressingMode::Restricted`]; `0` infers the
    /// smallest bank count that holds the image (mirroring the bench
    /// harnesses' sizing).
    pub banks_per_lane: usize,
    /// Which check passes to run; `None` runs all of [`Check::ALL`].
    /// Structural passes a selected pass depends on (decode, reach)
    /// always run — selection only controls which findings are
    /// produced and whether the cost analysis executes.
    pub checks: Option<Vec<Check>>,
    /// Findings below this severity are dropped from the report after
    /// all selected passes have run. The default keeps everything,
    /// including advisory [`Severity::Lint`] findings.
    pub min_severity: Severity,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            addressing: AddressingMode::Restricted,
            banks_per_lane: 0,
            checks: None,
            min_severity: Severity::Lint,
        }
    }
}

impl VerifyOptions {
    /// Restricted addressing with an explicit bank split — the shape
    /// `Udp::try_run_data_parallel` runs under.
    pub fn with_banks(banks_per_lane: usize) -> Self {
        VerifyOptions {
            banks_per_lane,
            ..VerifyOptions::default()
        }
    }

    /// True when `check` is selected to run.
    pub fn check_enabled(&self, check: Check) -> bool {
        match &self.checks {
            None => true,
            Some(list) => list.contains(&check),
        }
    }
}

/// Runs every check pass over an image and collects the findings.
///
/// Non-executable images (UAP-compatibility size models assembled with
/// `LayoutOptions::uap_attach`) use a different attach encoding the
/// engine refuses to run; the verifier refuses them the same way.
pub fn verify_image(image: &ProgramImage, opts: &VerifyOptions) -> Report {
    let mut report = Report::default();
    if !image.executable {
        report.error(
            Check::Totality,
            None,
            "image is a size model (uap_attach), not executable".into(),
        );
        return report;
    }
    let graph = ProgramGraph::decode(image);
    let reach = checks::compute_reach(image, &graph);
    if opts.check_enabled(Check::Totality) {
        checks::totality(image, &graph, &reach, &mut report);
    }
    if opts.check_enabled(Check::Reachability) {
        checks::reachability(image, &graph, &reach, &mut report);
    }
    if opts.check_enabled(Check::Livelock) {
        checks::livelock(&graph, &reach, &mut report);
    }
    if opts.check_enabled(Check::UseBeforeDef) {
        checks::use_before_def(image, &graph, &reach, &mut report);
    }
    if opts.check_enabled(Check::Addressing) {
        checks::addressing(image, &graph, &reach, opts, &mut report);
    }
    if opts.check_enabled(Check::Layout) {
        checks::layout(image, &graph, &reach, &mut report);
    }
    // Certification only makes sense over a structurally sound graph:
    // decode errors would make the edge model meaningless.
    if opts.check_enabled(Check::CostUnbounded) && report.is_clean() {
        let absint = absint::analyze(image, &graph, &reach);
        let cert = cost::certify(image, &graph, &reach, &absint);
        for b in &cert.unbounded {
            report.warn(
                Check::CostUnbounded,
                b.addr,
                format!("{} cost unbounded: {}", b.metric, b.reason),
            );
        }
        report.cert = Some(cert);
    }
    report.findings.retain(|f| f.severity >= opts.min_severity);
    report
}

/// Renders the disassembly with findings attached to their words, and
/// image-level findings appended at the end.
pub fn annotate(image: &ProgramImage, report: &Report) -> String {
    use std::collections::HashMap;
    let mut by_addr: HashMap<u32, Vec<&Finding>> = HashMap::new();
    let mut global: Vec<&Finding> = Vec::new();
    for f in &report.findings {
        match f.addr {
            Some(a) => by_addr.entry(a).or_default().push(f),
            None => global.push(f),
        }
    }
    let mut out = String::new();
    for line in disassemble(image).lines() {
        out.push_str(line);
        out.push('\n');
        let addr = line
            .split(':')
            .next()
            .and_then(|p| u32::from_str_radix(p.trim().trim_start_matches("0x"), 16).ok());
        if let Some(fs) = addr.and_then(|a| by_addr.get(&a)) {
            for f in fs {
                out.push_str(&format!(
                    "        ; ^ {} {}: {}\n",
                    f.severity, f.check, f.message
                ));
            }
        }
    }
    for f in global {
        out.push_str(&format!("; {f}\n"));
    }
    if let Some(cert) = &report.cert {
        out.push_str(&format!("; cert: {}\n", cert.summary()));
    }
    out
}

/// Why [`revalidate_artifact`] rejected a deserialized image.
///
/// Both variants mean the artifact's bytes decoded but describe a
/// program the verifier would not certify *today* — either it no
/// longer passes the static checks at all, or its embedded certificate
/// disagrees with the one recomputed from the decoded graph (a
/// tampered or bit-rotted cert smuggled past the outer checksum, or a
/// cert produced by a different analysis version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevalidateError {
    /// The image no longer verifies clean; the report says why.
    Unverifiable(Box<Report>),
    /// The stored certificate does not match the recomputed one.
    CertMismatch {
        /// The certificate carried by the artifact.
        stored: Box<Option<udp_asm::ResourceCert>>,
        /// The certificate the verifier derives from the graph now.
        recomputed: Box<Option<udp_asm::ResourceCert>>,
    },
}

impl fmt::Display for RevalidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RevalidateError::Unverifiable(r) => {
                write!(f, "reloaded image fails verification: {r}")
            }
            RevalidateError::CertMismatch { stored, recomputed } => write!(
                f,
                "stored certificate diverges from the recomputed one \
                 (stored: {}, recomputed: {})",
                stored
                    .as_ref()
                    .as_ref()
                    .map_or_else(|| "none".to_string(), udp_asm::ResourceCert::summary),
                recomputed
                    .as_ref()
                    .as_ref()
                    .map_or_else(|| "none".to_string(), udp_asm::ResourceCert::summary),
            ),
        }
    }
}

impl std::error::Error for RevalidateError {}

/// Re-validates a deserialized artifact image against the decoded
/// graph (DESIGN.md §11): the full check suite must pass clean *and*
/// the certificate embedded in the image must equal the one the cost
/// analysis recomputes. The artifact store runs this on every load, so
/// corruption that survives the outer length/checksum rungs — or a
/// stale artifact from an older analysis — still cannot reach the
/// device with bounds the verifier no longer stands behind.
///
/// Returns the fresh report (certificate included) on success.
pub fn revalidate_artifact(
    image: &ProgramImage,
    opts: &VerifyOptions,
) -> Result<Report, RevalidateError> {
    let report = verify_image(image, opts);
    if !report.is_clean() {
        return Err(RevalidateError::Unverifiable(Box::new(report)));
    }
    if image.cert != report.cert {
        return Err(RevalidateError::CertMismatch {
            stored: Box::new(image.cert.clone()),
            recomputed: Box::new(report.cert.clone()),
        });
    }
    Ok(report)
}

/// Why [`assemble_verified`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyAssembleError {
    /// Assembly itself failed.
    Asm(AsmError),
    /// The assembled image did not pass static verification. Boxed:
    /// the report now carries the full resource certificate, which
    /// would otherwise dominate the `Result` size.
    Verify(Box<Report>),
}

impl fmt::Display for VerifyAssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyAssembleError::Asm(e) => write!(f, "assembly failed: {e}"),
            VerifyAssembleError::Verify(r) => {
                write!(f, "assembled image failed verification: {r}")
            }
        }
    }
}

impl std::error::Error for VerifyAssembleError {}

impl From<AsmError> for VerifyAssembleError {
    fn from(e: AsmError) -> Self {
        VerifyAssembleError::Asm(e)
    }
}

/// Assembles a builder and rejects the image unless it verifies with
/// zero `Error` findings — the belt-and-braces path for new translators.
///
/// On success the verifier's [`udp_asm::ResourceCert`] (when the cost
/// analysis ran) is attached to the returned image, so downstream
/// consumers — budget sizing, admission control, the compiled backend —
/// see certified bounds without re-running verification.
pub fn assemble_verified(
    builder: &ProgramBuilder,
    layout: &LayoutOptions,
    opts: &VerifyOptions,
) -> Result<ProgramImage, VerifyAssembleError> {
    let mut image = builder.assemble(layout)?;
    let report = verify_image(&image, opts);
    if report.is_clean() {
        image.cert = report.cert;
        Ok(image)
    } else {
        Err(VerifyAssembleError::Verify(Box::new(report)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::{Action, Opcode};
    use udp_isa::Reg;

    fn sample() -> ProgramImage {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(
            s,
            b'a' as u16,
            Target::State(s),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'x' as u16)],
        );
        b.fallback_arc(s, Target::Halt, vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    #[test]
    fn assembled_sample_is_clean() {
        let report = verify_image(&sample(), &VerifyOptions::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn assemble_verified_round_trips() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, 0, Target::State(s), vec![]);
        b.fallback_arc(s, Target::Halt, vec![]);
        let img =
            assemble_verified(&b, &LayoutOptions::default(), &VerifyOptions::default()).unwrap();
        assert!(img.stats.words_used > 0);
    }

    #[test]
    fn size_models_are_rejected() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, 0, Target::State(s), vec![]);
        b.fallback_arc(s, Target::Halt, vec![]);
        let opts = LayoutOptions {
            uap_attach: true,
            ..LayoutOptions::default()
        };
        let img = b.assemble(&opts).unwrap();
        assert!(!img.executable);
        let report = verify_image(&img, &VerifyOptions::default());
        assert!(!report.is_clean());
    }

    #[test]
    fn revalidate_accepts_a_faithful_artifact_and_rejects_tampering() {
        // A faithful round trip: verify, attach the cert, re-validate.
        let mut img = sample();
        let report = verify_image(&img, &VerifyOptions::default());
        assert!(report.is_clean());
        img.cert = report.cert;
        let revalidated = revalidate_artifact(&img, &VerifyOptions::default()).unwrap();
        assert_eq!(revalidated.cert, img.cert);

        // A tampered certificate (bounds loosened) must be caught even
        // though the image itself still verifies clean.
        let mut tampered = img.clone();
        if let Some(cert) = &mut tampered.cert {
            cert.base_cycles = cert.base_cycles.wrapping_add(1);
        }
        assert!(matches!(
            revalidate_artifact(&tampered, &VerifyOptions::default()),
            Err(RevalidateError::CertMismatch { .. })
        ));

        // A corrupted word that breaks verification is Unverifiable.
        let mut broken = img;
        let g = ProgramGraph::decode(&broken);
        let (addr, _) = g
            .arcs
            .iter()
            .find_map(|a| a.block.as_ref())
            .unwrap()
            .actions[0];
        broken.words[addr as usize] = 0x7F << 25;
        assert!(matches!(
            revalidate_artifact(&broken, &VerifyOptions::default()),
            Err(RevalidateError::Unverifiable(_))
        ));
    }

    #[test]
    fn annotate_attaches_findings_to_lines() {
        let mut img = sample();
        // Corrupt the attached action word to an undefined opcode.
        let g = ProgramGraph::decode(&img);
        let (addr, _) = g
            .arcs
            .iter()
            .find_map(|a| a.block.as_ref())
            .unwrap()
            .actions[0];
        img.words[addr as usize] = 0x7F << 25;
        let report = verify_image(&img, &VerifyOptions::default());
        assert!(!report.is_clean());
        let text = annotate(&img, &report);
        assert!(text.contains("; ^ ERROR"), "{text}");
    }
}

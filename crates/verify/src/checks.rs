//! The six check passes (DESIGN.md §9).
//!
//! Every pass is a pure function from the decoded [`ProgramGraph`] (plus
//! the shared reachability solution) to findings. Severity policy: a
//! condition that the engine would turn into a fault, a wrong dispatch,
//! or an unbounded loop is an `Error`; stylistic or possibly-intentional
//! conditions (dead states, reads of architecturally-zero registers that
//! are assigned elsewhere, truncated immediates) are `Warn`. The
//! soundness invariant — tested over the full `udp-compilers` corpus —
//! is that assembler output never produces an `Error`.

use crate::finding::{Check, Report};
use crate::graph::{action_reads, action_write, ArcInfo, Claim, ProgramGraph, Slot};
use crate::VerifyOptions;
use std::collections::{HashMap, HashSet, VecDeque};
use udp_asm::disasm::{classify_words, WordKind};
use udp_asm::ProgramImage;
use udp_isa::action::Opcode;
use udp_isa::transition::ExecKind;
use udp_isa::{AddressingMode, Reg, BANK_WORDS, FALLBACK_SLOT, NUM_BANKS};

/// The reachability solution shared by several passes.
pub struct ReachInfo {
    /// Per state: reachable from the entry by some dispatch path.
    pub reached: Vec<bool>,
    /// Per state: the [`ExecKind`] incoming arcs enter it with (first
    /// kind seen; conflicts are recorded separately).
    pub entered: Vec<Option<ExecKind>>,
    /// States entered with two different kinds: `(state, first, second)`.
    pub kind_conflicts: Vec<(usize, ExecKind, ExecKind)>,
    /// Reachable arcs whose flat target is inside the image but not a
    /// state base.
    pub bad_targets: Vec<(usize, u32)>,
    /// Reachable arcs whose flat target lies outside the image.
    pub oob_targets: Vec<(usize, u32)>,
    /// Per arc: a *phantom* — a labeled-slot word decoded under a state
    /// that is never entered by symbol dispatch. EffCLiP interleaves
    /// state footprints, so a foreign word (another state's fallback, a
    /// refill link) may land where `base + symbol` of a Pass-entered
    /// neighbour would read it — but that slot is never read, so the
    /// alias is benign and every pass must ignore the arc.
    pub phantom: Vec<bool>,
}

/// True when a state's labeled range is actually read at runtime.
fn symbol_entered(entered: Option<ExecKind>) -> bool {
    matches!(entered, Some(ExecKind::Consume | ExecKind::Flagged))
}

/// The number of words a lane can address given the options.
pub fn window_words(image: &ProgramImage, opts: &VerifyOptions) -> usize {
    let banks = match opts.addressing {
        AddressingMode::Local => 1,
        AddressingMode::Global => NUM_BANKS,
        AddressingMode::Restricted => {
            if opts.banks_per_lane == 0 {
                image.words.len().div_ceil(BANK_WORDS).clamp(1, NUM_BANKS)
            } else {
                opts.banks_per_lane.min(NUM_BANKS)
            }
        }
    };
    banks * BANK_WORDS
}

/// Breadth-first dispatch walk from the entry state.
pub fn compute_reach(image: &ProgramImage, graph: &ProgramGraph) -> ReachInfo {
    let n = graph.states.len();
    let mut info = ReachInfo {
        reached: vec![false; n],
        entered: vec![None; n],
        kind_conflicts: Vec::new(),
        bad_targets: Vec::new(),
        oob_targets: Vec::new(),
        phantom: vec![false; graph.arcs.len()],
    };
    let mark_phantoms = |info: &mut ReachInfo| {
        for (ai, arc) in graph.arcs.iter().enumerate() {
            info.phantom[ai] =
                matches!(arc.slot, Slot::Labeled(_)) && !symbol_entered(info.entered[arc.state]);
        }
    };
    let Some(&entry) = graph.base_index.get(&image.entry_base) else {
        mark_phantoms(&mut info);
        return info;
    };
    let mut queue = VecDeque::new();
    info.reached[entry] = true;
    info.entered[entry] = Some(image.entry_kind);
    queue.push_back(entry);
    while let Some(s) = queue.pop_front() {
        let follow_labeled = symbol_entered(info.entered[s]);
        for &ai in &graph.states[s].arcs {
            let arc = &graph.arcs[ai];
            if matches!(arc.slot, Slot::Labeled(_)) && !follow_labeled {
                continue;
            }
            let Some(t) = arc.flat_target else { continue };
            if t as usize >= image.words.len() {
                info.oob_targets.push((ai, t));
                continue;
            }
            let Some(&ti) = graph.base_index.get(&t) else {
                info.bad_targets.push((ai, t));
                continue;
            };
            let kind = arc.word.kind();
            match info.entered[ti] {
                None => info.entered[ti] = Some(kind),
                Some(prev)
                    if prev != kind && !info.kind_conflicts.iter().any(|&(st, _, _)| st == ti) =>
                {
                    info.kind_conflicts.push((ti, prev, kind));
                }
                _ => {}
            }
            if !info.reached[ti] {
                info.reached[ti] = true;
                queue.push_back(ti);
            }
        }
    }
    mark_phantoms(&mut info);
    info
}

/// Check 1 — decode totality and word-kind consistency.
pub fn totality(
    image: &ProgramImage,
    graph: &ProgramGraph,
    reach: &ReachInfo,
    report: &mut Report,
) {
    // Cross-check the graph's claims against the disassembler's
    // independent classification: a word both passes agree is used must
    // be used *the same way*. Phantom labeled slots (never read — their
    // state is not symbol-entered) are exempt: both decoders attribute
    // them eagerly, but the engine never will.
    let phantom_addrs: HashSet<u32> = graph
        .arcs
        .iter()
        .enumerate()
        .filter(|&(ai, _)| reach.phantom[ai])
        .map(|(_, a)| a.addr)
        .collect();
    let kinds = classify_words(image);
    for (&addr, kind) in &kinds {
        if phantom_addrs.contains(&addr) {
            continue;
        }
        match (kind, graph.claims.get(&addr)) {
            (WordKind::Labeled { .. } | WordKind::Fallback { .. }, Some(Claim::ActionWord)) => {
                report.error(
                    Check::Totality,
                    Some(addr),
                    "word classified as a transition but executed as an action".into(),
                );
            }
            (WordKind::ActionWord, Some(Claim::Transition(_))) => {
                report.error(
                    Check::Totality,
                    Some(addr),
                    "word classified as an action but dispatched as a transition".into(),
                );
            }
            _ => {}
        }
    }
    // Unreferenced nonzero words: the assembler emits nothing it does
    // not own, so orphans indicate corruption (or hand-patched images).
    for (addr, &raw) in image.words.iter().enumerate() {
        if raw != 0 && !graph.claims.contains_key(&(addr as u32)) {
            report.warn(
                Check::Totality,
                Some(addr as u32),
                format!("unreferenced word {raw:#010x}"),
            );
        }
    }
    for (ai, arc) in graph.arcs.iter().enumerate() {
        if reach.phantom[ai] {
            continue;
        }
        if let Some(block) = &arc.block {
            if let Some(addr) = block.undecodable {
                report.error(
                    Check::Totality,
                    Some(addr),
                    format!(
                        "undecodable action word in block at {:#06x} (arc at {:#06x})",
                        block.start, arc.addr
                    ),
                );
            }
            if block.unterminated {
                report.error(
                    Check::Totality,
                    Some(block.start),
                    format!(
                        "action block at {:#06x} has no `last` terminator inside the image",
                        block.start
                    ),
                );
            }
        }
        // Symbol-width reconfiguration outside the architectural 1..=8
        // range faults the lane the moment it executes.
        for &(addr, a) in arc.block.iter().flat_map(|b| &b.actions) {
            if matches!(a.op, Opcode::SetSym | Opcode::SetSymT) && !(1..=8).contains(&a.imm) {
                report.error(
                    Check::Totality,
                    Some(addr),
                    format!(
                        "{} {} is outside the architectural 1..=8 range",
                        a.op, a.imm
                    ),
                );
            }
        }
    }
    for (si, st) in graph.states.iter().enumerate() {
        if st.chain_unterminated {
            report.error(
                Check::Totality,
                Some(st.base + FALLBACK_SLOT),
                format!("epsilon chain of state {:#06x} never terminates", st.base),
            );
        }
        match reach.entered[si] {
            Some(ExecKind::Pass) if st.chain_len == 0 => {
                report.error(
                    Check::Totality,
                    Some(st.base + FALLBACK_SLOT),
                    format!(
                        "state {:#06x} is entered as Pass but its fallback slot is empty",
                        st.base
                    ),
                );
            }
            Some(ExecKind::Consume | ExecKind::Flagged) if !st.has_labeled && st.chain_len == 0 => {
                report.warn(
                    Check::Totality,
                    Some(st.base),
                    format!(
                        "state {:#06x} dispatches but owns no transition words (dead end)",
                        st.base
                    ),
                );
            }
            _ => {}
        }
    }
    for &(si, a, b) in &reach.kind_conflicts {
        report.error(
            Check::Totality,
            Some(graph.states[si].base),
            format!(
                "state {:#06x} is entered both as {a:?} and as {b:?}",
                graph.states[si].base
            ),
        );
    }
}

/// Check 2 — dispatch-target bounds and reachability.
pub fn reachability(
    image: &ProgramImage,
    graph: &ProgramGraph,
    reach: &ReachInfo,
    report: &mut Report,
) {
    if !graph.base_index.contains_key(&image.entry_base) {
        report.error(
            Check::Reachability,
            Some(image.entry_base),
            format!("entry {:#06x} is not a placed state", image.entry_base),
        );
        return;
    }
    for &(ai, t) in &reach.oob_targets {
        let arc = &graph.arcs[ai];
        report.error(
            Check::Reachability,
            Some(arc.addr),
            format!("dispatch target {t:#06x} lies outside the image"),
        );
    }
    for &(ai, t) in &reach.bad_targets {
        let arc = &graph.arcs[ai];
        report.error(
            Check::Reachability,
            Some(arc.addr),
            format!("dispatch target {t:#06x} is not a state base"),
        );
    }
    for (ai, arc) in graph.arcs.iter().enumerate() {
        if reach.phantom[ai] {
            continue;
        }
        if arc.set_base_ambiguous && reach.reached[arc.state] {
            report.warn(
                Check::Reachability,
                Some(arc.addr),
                "target depends on a conditionally-executed SetBase; not statically resolvable"
                    .into(),
            );
        }
    }
    for (si, st) in graph.states.iter().enumerate() {
        if !reach.reached[si] {
            // Dead code, not broken code: the engine never dispatches
            // into it, so this is advisory only.
            report.lint(
                Check::Reachability,
                Some(st.base),
                format!("state {:#06x} is unreachable from the entry", st.base),
            );
        }
    }
    redundant_writes(graph, reach, report);
}

/// Advisory pass riding on reachability: block-local dead stores. A
/// register written by a pure ALU action and overwritten later in the
/// same block — both writes unpredicated, with no intervening read of
/// the register and no skip whose shadow could separate them — makes the
/// first write redundant.
fn redundant_writes(graph: &ProgramGraph, reach: &ReachInfo, report: &mut Report) {
    use std::collections::HashMap;
    // Ops whose only architectural effect is the register result.
    let pure = |op: Opcode| {
        matches!(
            op,
            Opcode::MovI
                | Opcode::MovIH
                | Opcode::AddI
                | Opcode::SubI
                | Opcode::AndI
                | Opcode::OrI
                | Opcode::XorI
                | Opcode::ShlI
                | Opcode::ShrI
                | Opcode::SarI
                | Opcode::SEqI
                | Opcode::SLtI
                | Opcode::SLtUI
                | Opcode::Extract
                | Opcode::Deposit
                | Opcode::Mov
                | Opcode::Add
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Mul
                | Opcode::Min
                | Opcode::Max
                | Opcode::SubSat
                | Opcode::SEq
                | Opcode::SLt
                | Opcode::SLtU
                | Opcode::Clz
                | Opcode::Popcnt
                | Opcode::InIdx
                | Opcode::OutIdx
        )
    };
    for (ai, arc) in graph.arcs.iter().enumerate() {
        if reach.phantom[ai] || !reach.reached[arc.state] {
            continue;
        }
        let Some(block) = &arc.block else { continue };
        // Last unpredicated pure write per register, pending a
        // redundancy verdict.
        let mut pending: HashMap<u8, u32> = HashMap::new();
        let mut shadow = 0u8;
        for &(addr, a) in &block.actions {
            let conditional = shadow > 0;
            shadow = shadow.saturating_sub(1);
            if matches!(a.op, Opcode::SkipIfZ | Opcode::SkipIfNz) {
                // Control flow: anything pending may be observed on
                // the skipped-over path's join; start over.
                shadow = a.imm1;
                pending.clear();
            }
            for r in action_reads(&a) {
                pending.remove(&r.index());
            }
            if let Some(w) = action_write(&a) {
                if conditional {
                    pending.remove(&w.index());
                } else {
                    if let Some(prev) = pending.remove(&w.index()) {
                        report.lint(
                            Check::Reachability,
                            Some(prev),
                            format!(
                                "r{} is overwritten at {:#06x} before being read",
                                w.index(),
                                addr
                            ),
                        );
                    }
                    // Only pure results are dead-store candidates; an
                    // impure write (loads, hashes, stream reads) keeps
                    // its side effect even if the value is dropped.
                    if pure(a.op) {
                        pending.insert(w.index(), addr);
                    }
                }
            }
        }
    }
}

/// Check 3 — livelock: cycles of forced pass-through states where no
/// edge can consume stream input or halt.
///
/// Restricted to states entered *only* as `Pass` with a single forced
/// successor: flagged-dispatch loops (dictionary/compressor probing) and
/// consuming self-loops are legitimate and excluded.
pub fn livelock(graph: &ProgramGraph, reach: &ReachInfo, report: &mut Report) {
    let n = graph.states.len();
    // succ[s] = forced successor state index, when s qualifies as a node.
    let mut succ: Vec<Option<usize>> = vec![None; n];
    for (si, st) in graph.states.iter().enumerate() {
        if !reach.reached[si]
            || reach.entered[si] != Some(ExecKind::Pass)
            || reach.kind_conflicts.iter().any(|&(s, _, _)| s == si)
            || st.chain_len != 1
        {
            continue;
        }
        let Some(&ai) = st
            .arcs
            .iter()
            .find(|&&a| graph.arcs[a].slot == Slot::Fallback)
        else {
            continue;
        };
        let arc = &graph.arcs[ai];
        if arc.word.kind() == ExecKind::Halt || arc.may_consume || arc.may_halt {
            continue;
        }
        succ[si] = arc
            .flat_target
            .and_then(|t| graph.base_index.get(&t).copied());
    }
    // Cycle detection over the forced-successor partial function.
    let mut color = vec![0u8; n]; // 0 unvisited, 1 on path, 2 done
    for start in 0..n {
        if color[start] != 0 || succ[start].is_none() {
            continue;
        }
        let mut path: Vec<usize> = Vec::new();
        let mut s = start;
        loop {
            if color[s] == 1 {
                // Found a cycle: report it once, rooted at `s`.
                let pos = path.iter().position(|&p| p == s).unwrap_or(0);
                let cycle: Vec<String> = path[pos..]
                    .iter()
                    .map(|&p| format!("{:#06x}", graph.states[p].base))
                    .collect();
                report.error(
                    Check::Livelock,
                    Some(graph.states[s].base + FALLBACK_SLOT),
                    format!(
                        "pass-through cycle consumes no input and never halts: {}",
                        cycle.join(" -> ")
                    ),
                );
                break;
            }
            if color[s] == 2 {
                break;
            }
            color[s] = 1;
            path.push(s);
            match succ[s] {
                Some(next) => s = next,
                None => break,
            }
        }
        for p in path {
            color[p] = 2;
        }
    }
}

/// Per-arc definite (unpredicated) register writes, as a bitmask.
fn arc_defs(arc: &ArcInfo) -> u16 {
    let mut defs = 0u16;
    let mut shadow = 0u8;
    for &(_, a) in arc.block.iter().flat_map(|b| &b.actions) {
        let conditional = shadow > 0;
        shadow = shadow.saturating_sub(1);
        if matches!(a.op, Opcode::SkipIfZ | Opcode::SkipIfNz) {
            shadow = a.imm1;
        }
        if !conditional {
            if let Some(w) = action_write(&a) {
                defs |= 1 << w.index();
            }
        }
    }
    defs
}

/// Check 4 — scalar-register use-before-def dataflow.
///
/// All registers power on as zero, and kernels deliberately read
/// never-assigned registers as a zero source — so a read only warns when
/// the register *is* assigned somewhere in the program but no definition
/// reaches this use on some path (definite-assignment meet-over-paths).
pub fn use_before_def(
    image: &ProgramImage,
    graph: &ProgramGraph,
    reach: &ReachInfo,
    report: &mut Report,
) {
    let n = graph.states.len();
    let mut ever_written = ever_written_mask(graph, reach);
    // R13 is latched by every Consume/Flagged dispatch.
    if reach
        .entered
        .iter()
        .flatten()
        .any(|k| matches!(k, ExecKind::Consume | ExecKind::Flagged))
    {
        ever_written |= 1 << Reg::R13.index();
    }

    let start_defined = |inn: u16, si: usize| -> u16 {
        match reach.entered[si] {
            Some(ExecKind::Consume | ExecKind::Flagged) => inn | (1 << Reg::R13.index()),
            _ => inn,
        }
    };

    // Meet-over-paths definite assignment: IN starts at ⊤ (all defined)
    // everywhere except the entry, which starts with only the R15 alias.
    let all = u16::MAX;
    let mut inn: Vec<u16> = vec![all; n];
    let Some(&entry) = graph.base_index.get(&image.entry_base) else {
        return;
    };
    inn[entry] = 1 << Reg::R15.index();
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(entry);
    while let Some(s) = queue.pop_front() {
        let out_base = start_defined(inn[s], s);
        for &ai in &graph.states[s].arcs {
            if reach.phantom[ai] {
                continue;
            }
            let arc = &graph.arcs[ai];
            let out = out_base | arc_defs(arc);
            let Some(ti) = arc
                .flat_target
                .and_then(|t| graph.base_index.get(&t).copied())
            else {
                continue;
            };
            let met = inn[ti] & out;
            if met != inn[ti] {
                inn[ti] = met;
                queue.push_back(ti);
            }
        }
    }

    // Walk every reachable block against its final IN set.
    let mut seen: HashSet<(u32, u8)> = HashSet::new();
    for (si, st) in graph.states.iter().enumerate() {
        if !reach.reached[si] {
            continue;
        }
        if reach.entered[si] == Some(ExecKind::Flagged) {
            let r0 = 1 << Reg::R0.index();
            if inn[si] & r0 == 0 && ever_written & r0 != 0 {
                report.warn(
                    Check::UseBeforeDef,
                    Some(st.base),
                    format!(
                        "flagged dispatch at {:#06x} reads r0 before any definition reaches it",
                        st.base
                    ),
                );
            }
        }
        for &ai in &st.arcs {
            if reach.phantom[ai] {
                continue;
            }
            let arc = &graph.arcs[ai];
            let mut defined = start_defined(inn[si], si);
            let mut shadow = 0u8;
            for &(addr, a) in arc.block.iter().flat_map(|b| &b.actions) {
                let conditional = shadow > 0;
                shadow = shadow.saturating_sub(1);
                if matches!(a.op, Opcode::SkipIfZ | Opcode::SkipIfNz) {
                    shadow = a.imm1;
                }
                for r in action_reads(&a) {
                    let bit = 1u16 << r.index();
                    if r != Reg::R15
                        && defined & bit == 0
                        && ever_written & bit != 0
                        && seen.insert((addr, r.index()))
                    {
                        report.warn(
                            Check::UseBeforeDef,
                            Some(addr),
                            format!("{} reads {r} before any definition reaches it", a.op),
                        );
                    }
                }
                if !conditional {
                    if let Some(w) = action_write(&a) {
                        defined |= 1 << w.index();
                    }
                }
            }
        }
    }
}

/// Union of every register the program assigns through action blocks
/// (phantom arcs excluded — their blocks are never executed).
fn ever_written_mask(graph: &ProgramGraph, reach: &ReachInfo) -> u16 {
    let mut mask = 0u16;
    for (ai, arc) in graph.arcs.iter().enumerate() {
        if reach.phantom[ai] {
            continue;
        }
        for &(_, a) in arc.block.iter().flat_map(|b| &b.actions) {
            if let Some(w) = action_write(&a) {
                mask |= 1 << w.index();
            }
        }
    }
    mask
}

/// Check 5 — memory-addressing legality against the lane window.
pub fn addressing(
    image: &ProgramImage,
    graph: &ProgramGraph,
    reach: &ReachInfo,
    opts: &VerifyOptions,
    report: &mut Report,
) {
    let window = window_words(image, opts);
    if image.words.len() > window {
        report.error(
            Check::Addressing,
            None,
            format!(
                "image spans {} words but the {:?} window holds {window}",
                image.words.len(),
                opts.addressing
            ),
        );
    }
    if image.init.wbase != image.entry_base & !0xFFF {
        report.error(
            Check::Addressing,
            None,
            format!(
                "LaneInit.wbase {:#06x} does not cover the entry segment ({:#06x})",
                image.init.wbase,
                image.entry_base & !0xFFF
            ),
        );
    }
    if !(1..=8).contains(&image.init.symbol_bits) {
        report.error(
            Check::Addressing,
            None,
            format!(
                "LaneInit.symbol_bits {} is outside the architectural 1..=8 range",
                image.init.symbol_bits
            ),
        );
    }
    if image.init.ascale >= 32 {
        report.error(
            Check::Addressing,
            None,
            format!(
                "LaneInit.ascale {} would overflow the attach shift",
                image.init.ascale
            ),
        );
    } else if image.init.ascale > 6 {
        report.warn(
            Check::Addressing,
            None,
            format!(
                "LaneInit.ascale {} exceeds the assembler's 6-bit block budget",
                image.init.ascale
            ),
        );
    }
    let never_written = !ever_written_mask(graph, reach);
    for (ai, arc) in graph.arcs.iter().enumerate() {
        if reach.phantom[ai] {
            continue;
        }
        for &(addr, a) in arc.block.iter().flat_map(|b| &b.actions) {
            match a.op {
                Opcode::SetBase => {
                    if u32::from(a.imm) & 0xFFF != 0 {
                        report.warn(
                            Check::Addressing,
                            Some(addr),
                            format!(
                                "SetBase {:#06x} is not segment-aligned; dispatch bases will drift",
                                a.imm
                            ),
                        );
                    }
                    if usize::from(a.imm) >= window {
                        report.error(
                            Check::Addressing,
                            Some(addr),
                            format!(
                                "SetBase {:#06x} selects a segment outside the {window}-word window",
                                a.imm
                            ),
                        );
                    }
                }
                Opcode::SetAScale if a.imm > 7 => {
                    report.warn(
                        Check::Addressing,
                        Some(addr),
                        format!("SetAScale {} is truncated to 3 bits by the lane", a.imm),
                    );
                }
                Opcode::LoadW | Opcode::StoreW | Opcode::LoadB | Opcode::StoreB | Opcode::BumpW => {
                    // Byte address = src + imm. Only decidable when the
                    // base register is the architectural zero.
                    let src = if a.op == Opcode::StoreW || a.op == Opcode::StoreB {
                        a.dst
                    } else {
                        a.src
                    };
                    let src_is_zero = never_written & (1 << src.index()) != 0;
                    if src_is_zero && usize::from(a.imm) >= window * 4 {
                        report.warn(
                            Check::Addressing,
                            Some(addr),
                            format!(
                                "{} addresses byte {} beyond the {}-byte window",
                                a.op,
                                a.imm,
                                window * 4
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// Check 6 — EffCLiP layout integrity.
pub fn layout(image: &ProgramImage, graph: &ProgramGraph, reach: &ReachInfo, report: &mut Report) {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    for (si, st) in graph.states.iter().enumerate() {
        if let Some(prev) = seen.insert(st.base, si) {
            report.error(
                Check::Layout,
                Some(st.base),
                format!(
                    "states #{prev} and #{si} are both placed at base {:#06x}",
                    st.base
                ),
            );
        }
        if st.base & 0xFFF == 0 {
            report.error(
                Check::Layout,
                Some(st.base),
                format!(
                    "state base {:#06x} sits on a segment boundary (reserved)",
                    st.base
                ),
            );
        }
        if st.base as usize >= image.words.len() {
            report.error(
                Check::Layout,
                Some(st.base),
                format!("state base {:#06x} lies outside the image", st.base),
            );
        }
    }
    // Collisions at phantom labeled slots are benign interleaving (the
    // slot is never read); everything else is a genuine double-claim.
    let phantom_addrs: HashSet<u32> = graph
        .arcs
        .iter()
        .enumerate()
        .filter(|&(ai, _)| reach.phantom[ai])
        .map(|(_, a)| a.addr)
        .collect();
    let mut reported: HashSet<u32> = HashSet::new();
    for &(addr, a, b) in &graph.collisions {
        if phantom_addrs.contains(&addr) || !reported.insert(addr) {
            continue;
        }
        report.error(
            Check::Layout,
            Some(addr),
            format!(
                "word claimed twice: {} vs {}",
                claim_str(graph, a),
                claim_str(graph, b)
            ),
        );
    }
    // Attach references must resolve inside their regions.
    let direct_end = image.stats.direct_region_words.max(1) as u32;
    for (ai, arc) in graph.arcs.iter().enumerate() {
        if reach.phantom[ai] {
            continue;
        }
        let Some(block) = &arc.block else { continue };
        if block.start as usize >= image.words.len() {
            report.error(
                Check::Layout,
                Some(arc.addr),
                format!(
                    "attach of arc at {:#06x} resolves to {:#06x}, outside the image",
                    arc.addr, block.start
                ),
            );
        } else if arc.word.attach_mode() == udp_isa::AttachMode::Direct
            && u32::from(arc.word.attach()) >= direct_end
        {
            report.warn(
                Check::Layout,
                Some(arc.addr),
                format!(
                    "direct attach {} points past the {}-word shared region",
                    arc.word.attach(),
                    image.stats.direct_region_words
                ),
            );
        }
    }
    if image.stats.words_used > image.stats.span_words {
        report.error(
            Check::Layout,
            None,
            format!(
                "stats claim {} words used in a {}-word span",
                image.stats.words_used, image.stats.span_words
            ),
        );
    }
}

fn claim_str(graph: &ProgramGraph, c: Claim) -> String {
    match c {
        Claim::Transition(s) => format!("transition word of state {:#06x}", graph.states[s].base),
        Claim::ActionWord => "action block member".into(),
    }
}

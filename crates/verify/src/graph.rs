//! Decoded transition/action graph: the shared substrate every check
//! pass walks.
//!
//! [`ProgramGraph::decode`] mirrors the lane's dispatch semantics
//! (`udp-sim`'s `Lane`) without executing anything: for each recorded
//! state base it collects the labeled words (`base + symbol` whose
//! signature matches the offset), the fallback/epsilon chain starting at
//! `base + 256`, and each arc's attached action block, then resolves
//! every arc to a *flat* (window-relative) target address by applying
//! the same `wbase + target` arithmetic the engine uses — including the
//! assembler-injected `SetBase` segment switches.

use std::collections::HashMap;
use udp_asm::layout::CHAIN_CONTINUE_SIGNATURE;
use udp_asm::ProgramImage;
use udp_isa::action::{Action, ActionFormat, Opcode};
use udp_isa::transition::{ExecKind, TransitionWord};
use udp_isa::FALLBACK_SLOT;

/// Upper bound on action-block length, mirroring the lane interpreter's
/// runaway-block cap.
pub const BLOCK_CAP: usize = 4096;

/// Upper bound on an epsilon/fork chain walk.
const CHAIN_CAP: u32 = 256;

/// Which slot of its owning state an arc was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Labeled word at `base + symbol`.
    Labeled(u8),
    /// The terminating word of the fallback chain (`base + 256 + k`).
    Fallback,
    /// A continuing (`0xFE`-signature) word of an epsilon fork chain.
    Chain(u32),
}

/// A decoded action block attached to one transition word.
#[derive(Debug, Clone, Default)]
pub struct ActionBlock {
    /// Flat word address of the first action.
    pub start: u32,
    /// Decoded actions with their word addresses, in execution order.
    pub actions: Vec<(u32, Action)>,
    /// Address of the first word that failed [`Action::decode`], if any.
    pub undecodable: Option<u32>,
    /// True when no `last` bit was found before running off the image
    /// (or past [`BLOCK_CAP`] words).
    pub unterminated: bool,
}

/// One transition word, decoded and resolved.
#[derive(Debug, Clone)]
pub struct ArcInfo {
    /// Flat word address of the transition word.
    pub addr: u32,
    /// Index of the owning state in [`ProgramGraph::states`].
    pub state: usize,
    /// Slot the word occupies in its owner.
    pub slot: Slot,
    /// The decoded word.
    pub word: TransitionWord,
    /// The attached action block, when `attach != 0`.
    pub block: Option<ActionBlock>,
    /// Immediate of the last *unconditional* `SetBase` in the block.
    pub set_base: Option<u16>,
    /// True when a `SetBase` sits under a `SkipIfZ`/`SkipIfNz` shadow, so
    /// the flat target cannot be resolved statically.
    pub set_base_ambiguous: bool,
    /// Resolved flat target address (`None` for `Halt` arcs or when
    /// `set_base_ambiguous`).
    pub flat_target: Option<u32>,
    /// True when taking this arc may consume stream bytes through its
    /// action block (`ReadBits` / `SkipB`).
    pub may_consume: bool,
    /// True when the block contains a `Halt` action.
    pub may_halt: bool,
}

/// One placed state and its outgoing arcs.
#[derive(Debug, Clone)]
pub struct StateInfo {
    /// Base word address.
    pub base: u32,
    /// Indices into [`ProgramGraph::arcs`].
    pub arcs: Vec<usize>,
    /// Number of words in the fallback chain (0 = empty fallback slot;
    /// 1 = plain fallback/pass; >1 = epsilon fork chain).
    pub chain_len: u32,
    /// True when the chain hit `CHAIN_CAP` without a terminator.
    pub chain_unterminated: bool,
    /// True when the state owns at least one labeled word.
    pub has_labeled: bool,
}

/// Who owns a claimed word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// Transition word of the state at this index.
    Transition(usize),
    /// Member of some (possibly shared) action block.
    ActionWord,
}

/// The decoded program graph plus the word-ownership map.
#[derive(Debug, Clone)]
pub struct ProgramGraph {
    /// All placed states, in `state_bases` order.
    pub states: Vec<StateInfo>,
    /// All decoded arcs.
    pub arcs: Vec<ArcInfo>,
    /// `base -> state index` (first occurrence wins on duplicates).
    pub base_index: HashMap<u32, usize>,
    /// `flat addr -> owner` for every word the program references.
    pub claims: HashMap<u32, Claim>,
    /// Addresses claimed twice incompatibly, with both owners.
    pub collisions: Vec<(u32, Claim, Claim)>,
}

impl ProgramGraph {
    /// Decodes an image into its graph form. Total: malformed words are
    /// recorded (undecodable blocks, unterminated chains), never skipped
    /// silently and never a panic.
    pub fn decode(image: &ProgramImage) -> ProgramGraph {
        let words = &image.words;
        let mut g = ProgramGraph {
            states: Vec::with_capacity(image.state_bases.len()),
            arcs: Vec::new(),
            base_index: HashMap::new(),
            claims: HashMap::new(),
            collisions: Vec::new(),
        };

        for (si, &base) in image.state_bases.iter().enumerate() {
            g.base_index.entry(base).or_insert(si);
            let mut st = StateInfo {
                base,
                arcs: Vec::new(),
                chain_len: 0,
                chain_unterminated: false,
                has_labeled: false,
            };

            // Labeled words: base + symbol, signature must echo the offset.
            for off in 0..FALLBACK_SLOT {
                let addr = base + off;
                let Some(&raw) = words.get(addr as usize) else {
                    break;
                };
                if raw == 0 {
                    continue;
                }
                let t = TransitionWord::decode(raw);
                if t.signature() != off as u8 {
                    continue; // foreign word interleaved here
                }
                st.has_labeled = true;
                let ai = g.push_arc(image, si, addr, Slot::Labeled(off as u8), t);
                st.arcs.push(ai);
            }

            // Fallback / epsilon-fork chain: base + 256, continuing while
            // the signature reads CHAIN_CONTINUE (0xFE).
            for k in 0..CHAIN_CAP {
                let addr = base + FALLBACK_SLOT + k;
                let raw = words.get(addr as usize).copied().unwrap_or(0);
                if raw == 0 {
                    break;
                }
                let t = TransitionWord::decode(raw);
                let cont = t.signature() == CHAIN_CONTINUE_SIGNATURE;
                let slot = if cont { Slot::Chain(k) } else { Slot::Fallback };
                let ai = g.push_arc(image, si, addr, slot, t);
                st.arcs.push(ai);
                st.chain_len = k + 1;
                if !cont {
                    break;
                }
                if k + 1 == CHAIN_CAP {
                    st.chain_unterminated = true;
                }
            }

            g.states.push(st);
        }
        g
    }

    /// Decodes one transition word, claims it, walks its action block,
    /// and resolves its flat target.
    fn push_arc(
        &mut self,
        image: &ProgramImage,
        state: usize,
        addr: u32,
        slot: Slot,
        word: TransitionWord,
    ) -> usize {
        self.claim(addr, Claim::Transition(state));

        let block = match word.attach_mode() {
            _ if word.attach() == 0 => None,
            udp_isa::AttachMode::Direct => Some(u32::from(word.attach())),
            udp_isa::AttachMode::Scaled => {
                Some(image.init.abase + (u32::from(word.attach()) << (image.init.ascale & 31)))
            }
        }
        .map(|start| self.walk_block(image, start));

        let (set_base, set_base_ambiguous, may_consume, may_halt) = block
            .as_ref()
            .map(summarize_block)
            .unwrap_or((None, false, false, false));

        let base = image.state_bases[state];
        let flat_target = if word.kind() == ExecKind::Halt || set_base_ambiguous {
            None
        } else {
            let wbase = set_base.map_or(base & !0xFFF, u32::from);
            Some(wbase + u32::from(word.target()))
        };

        self.arcs.push(ArcInfo {
            addr,
            state,
            slot,
            word,
            block,
            set_base,
            set_base_ambiguous,
            flat_target,
            may_consume,
            may_halt,
        });
        self.arcs.len() - 1
    }

    /// Walks an action block exactly as the lane interpreter would,
    /// claiming each word.
    fn walk_block(&mut self, image: &ProgramImage, start: u32) -> ActionBlock {
        let mut block = ActionBlock {
            start,
            ..ActionBlock::default()
        };
        for addr in start..start.saturating_add(BLOCK_CAP as u32) {
            let Some(&raw) = image.words.get(addr as usize) else {
                // Off the image: the lane would chew zero words (Nop,
                // no last bit) until its runaway cap faults.
                block.unterminated = true;
                return block;
            };
            let Some(a) = Action::decode(raw) else {
                block.undecodable = Some(addr);
                return block;
            };
            self.claim(addr, Claim::ActionWord);
            block.actions.push((addr, a));
            if a.last {
                return block;
            }
        }
        block.unterminated = true;
        block
    }

    fn claim(&mut self, addr: u32, claim: Claim) {
        match self.claims.get(&addr) {
            None => {
                self.claims.insert(addr, claim);
            }
            Some(&prev) => {
                // Shared action blocks are interned by the assembler, so
                // two arcs claiming the same action word is legitimate;
                // anything else is a collision.
                let compatible =
                    prev == claim || (prev == Claim::ActionWord && claim == Claim::ActionWord);
                if !compatible {
                    self.collisions.push((addr, prev, claim));
                }
            }
        }
    }
}

/// `(set_base, ambiguous, may_consume, may_halt)` for one block,
/// tracking `SkipIfZ`/`SkipIfNz` predication shadows.
fn summarize_block(block: &ActionBlock) -> (Option<u16>, bool, bool, bool) {
    let mut set_base = None;
    let mut ambiguous = false;
    let mut may_consume = false;
    let mut may_halt = false;
    let mut shadow = 0u8;
    for &(_, a) in &block.actions {
        let conditional = shadow > 0;
        shadow = shadow.saturating_sub(1);
        match a.op {
            Opcode::SetBase if conditional => ambiguous = true,
            Opcode::SetBase => {
                set_base = Some(a.imm);
                ambiguous = false;
            }
            Opcode::ReadBits | Opcode::SkipB => may_consume = true,
            Opcode::Halt => may_halt = true,
            Opcode::SkipIfZ | Opcode::SkipIfNz => shadow = a.imm1,
            _ => {}
        }
    }
    (set_base, ambiguous, may_consume, may_halt)
}

/// Registers an action reads (beyond the architectural zero default),
/// matching the lane interpreter's `exec` semantics. `SetBase` ignores
/// its `src`; `StoreW`/`StoreB` read `dst` as the address base;
/// `LoopCmp`/`LoopCmpM` additionally read the `R14` limit convention.
pub fn action_reads(a: &Action) -> Vec<udp_isa::Reg> {
    use Opcode::*;
    let mut reads = Vec::new();
    match a.op.format() {
        ActionFormat::Imm => match a.op {
            AddI | SubI | AndI | OrI | XorI | ShlI | ShrI | SarI | LoadW | LoadB | SEqI | SLtI
            | SLtUI | BumpW | EmitB | EmitW | SkipB | Hash | Clz | Popcnt | SetABase => {
                reads.push(a.src)
            }
            StoreW | StoreB | Crc | FnvB => {
                reads.push(a.dst);
                reads.push(a.src);
            }
            MovIH => reads.push(a.dst),
            Nop | MovI | SetSym | SetSymT | SetBase | SetAScale | ReadBits | RefillI | Report
            | Accept | Halt | InIdx | OutIdx | PeekBits | AtEof => {}
            _ => {}
        },
        ActionFormat::Imm2 => match a.op {
            EmitBits | Extract | SkipIfZ | SkipIfNz => reads.push(a.src),
            Deposit => {
                reads.push(a.dst);
                reads.push(a.src);
            }
            _ => {}
        },
        ActionFormat::Reg => {
            match a.op {
                Mov => reads.push(a.src),
                Sel | LoopCpy => {
                    reads.push(a.dst);
                    reads.push(a.rref);
                    reads.push(a.src);
                }
                _ => {
                    reads.push(a.rref);
                    reads.push(a.src);
                }
            }
            if matches!(a.op, LoopCmp | LoopCmpM) {
                reads.push(udp_isa::Reg::R14);
            }
        }
    }
    reads
}

/// The register an action writes, if any.
pub fn action_write(a: &Action) -> Option<udp_isa::Reg> {
    use Opcode::*;
    match a.op {
        // Imm format.
        MovI | MovIH | AddI | SubI | AndI | OrI | XorI | ShlI | ShrI | SarI | LoadW | LoadB
        | SEqI | SLtI | SLtUI | ReadBits | BumpW | Crc | Hash | FnvB | InIdx | Clz | Popcnt
        | OutIdx | PeekBits | AtEof => Some(a.dst),
        // Imm2 format.
        Extract | Deposit => Some(a.dst),
        // Reg format.
        Mov | Add | Sub | And | Or | Xor | Shl | Shr | Mul | Min | Max | SEq | SLt | SLtU | Sel
        | LoopCmp | LoopCmpM | PeekAt | PeekW | SubSat | Hash2 => Some(a.dst),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::Reg;

    fn two_state() -> ProgramImage {
        let mut b = ProgramBuilder::new();
        let a = b.add_consuming_state();
        let z = b.add_consuming_state();
        b.set_entry(a);
        b.labeled_arc(
            a,
            b'x' as u16,
            Target::State(z),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, 1)],
        );
        b.fallback_arc(a, Target::State(a), vec![]);
        b.labeled_arc(z, b'y' as u16, Target::State(a), vec![]);
        b.fallback_arc(z, Target::Halt, vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    #[test]
    fn decode_finds_states_arcs_and_blocks() {
        let img = two_state();
        let g = ProgramGraph::decode(&img);
        assert_eq!(g.states.len(), 2);
        assert_eq!(g.arcs.len(), 4);
        assert!(g.collisions.is_empty());
        let with_block = g.arcs.iter().filter(|a| a.block.is_some()).count();
        assert_eq!(with_block, 1);
        let blk = g
            .arcs
            .iter()
            .find_map(|a| a.block.as_ref())
            .expect("one block");
        assert!(!blk.unterminated);
        assert_eq!(blk.undecodable, None);
        assert_eq!(blk.actions.len(), 1);
    }

    #[test]
    fn flat_targets_resolve_to_state_bases() {
        let img = two_state();
        let g = ProgramGraph::decode(&img);
        for arc in &g.arcs {
            if arc.word.kind() == ExecKind::Halt {
                assert_eq!(arc.flat_target, None);
            } else {
                let t = arc.flat_target.expect("resolved");
                assert!(
                    g.base_index.contains_key(&t),
                    "target {t:#x} not a state base"
                );
            }
        }
    }

    #[test]
    fn set_base_overrides_segment() {
        // A raw arc word whose block carries SetBase #0x1000 must resolve
        // into segment 1 even though its owner sits in segment 0.
        let mut img = two_state();
        // Append a private block: SetBase then last-Nop.
        let start = img.words.len() as u32;
        img.words
            .push(Action::imm(Opcode::SetBase, Reg::R0, Reg::R0, 0x1000).encode());
        img.words.push(
            Action::imm(Opcode::Nop, Reg::R0, Reg::R0, 0)
                .ending()
                .encode(),
        );
        // Scaled attach is 1-based: attach 1 at ascale 0 resolves to
        // abase + 1, so park abase one word before the block.
        img.init.abase = start - 1;
        img.init.ascale = 0;
        let base = img.state_bases[0];
        let sym = 0x21u32; // '!' — unused slot in the sample
        let w = TransitionWord::new(
            sym as u8,
            0x123,
            ExecKind::Consume,
            udp_isa::AttachMode::Scaled,
            1,
        );
        img.words[(base + sym) as usize] = w.encode();
        let g = ProgramGraph::decode(&img);
        let arc = g
            .arcs
            .iter()
            .find(|a| a.addr == base + sym)
            .expect("injected arc");
        assert_eq!(arc.set_base, Some(0x1000));
        assert_eq!(arc.flat_target, Some(0x1123));
    }

    #[test]
    fn reads_and_writes_match_exec_semantics() {
        let st = Action::imm(Opcode::StoreW, Reg::new(2), Reg::new(3), 8);
        assert_eq!(action_reads(&st), vec![Reg::new(2), Reg::new(3)]);
        assert_eq!(action_write(&st), None);

        let sb = Action::imm(Opcode::SetBase, Reg::R0, Reg::new(9), 0);
        assert!(action_reads(&sb).is_empty(), "SetBase ignores src");

        let lc = Action::reg(Opcode::LoopCmp, Reg::new(1), Reg::new(2), Reg::new(3));
        assert!(action_reads(&lc).contains(&Reg::R14));
        assert_eq!(action_write(&lc), Some(Reg::new(1)));

        let mv = Action::imm(Opcode::MovI, Reg::new(5), Reg::R0, 7);
        assert!(action_reads(&mv).is_empty());
        assert_eq!(action_write(&mv), Some(Reg::new(5)));
    }
}

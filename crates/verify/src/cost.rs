//! Static resource certification (DESIGN.md §9.1).
//!
//! Derives a [`ResourceCert`] for a verified image: worst-case cycles
//! and output bytes per consumed input byte, plus additive bases, such
//! that for every run from the architectural reset state (no host
//! register staging) over an `n`-byte chunk,
//!
//! ```text
//! cycles       <= base_cycles       + max_cycles_per_byte   * n
//! output bytes <= base_output_bytes + max_output_expansion  * n
//! ```
//!
//! — including runs that end in a fault, exhaustion, or a cycle-budget
//! stop, because the bound is established edge-by-edge, not only for
//! complete scans.
//!
//! ## Model
//!
//! Every followed arc of the dispatch graph becomes an *edge* carrying
//! three numbers derived from the lane interpreter's exact charging
//! rules (`crates/sim/src/lane.rs`):
//!
//! * `cost` — an upper bound on cycles for the dispatch plus the
//!   attached action block (loop actions bounded through the interval
//!   domain of [`crate::absint`]);
//! * `gain` — a lower bound on *net stream bits consumed* when the edge
//!   completes (symbol reads and unconditional `ReadBits` count
//!   positive; `RefillI` and pass-refill signatures count negative;
//!   shadowed reads count zero);
//! * `out`  — an upper bound on output bytes emitted.
//!
//! Since net consumption over a whole run is at most `8n` bits, a
//! certificate `cycles/byte <= λ` follows from the absence of any
//! dispatch cycle with `8·cost − λ·gain > 0`; the minimal integer `λ`
//! is found by binary search over a Bellman–Ford longest-path /
//! positive-cycle test, and the additive base falls out of the longest
//! acyclic path at that `λ` (plus a slack term for the one final,
//! partially-executed edge). Cycles that can spin without consuming
//! (`gain <= 0`, `cost > 0`) are reported as
//! [`Check::CostUnbounded`](crate::Check::CostUnbounded) blockers
//! instead.
//!
//! ## Span amortization
//!
//! The scanner kernels' hot block starts with the `EmitSpan` idiom
//! (`InIdx; Sub; LoopIn; EmitB; InIdx` — copy everything since the last
//! mark, emit a separator, re-mark). Its `LoopIn` length is unbounded
//! per-visit, but the mark-register discipline (every write to the mark
//! is an `InIdx` with a small offset spread) makes consecutive spans
//! telescope: their summed length is at most the input length plus a
//! constant. Such sites are charged a constant per visit, and the
//! certificate absorbs the telescoped total as `+1` cycle/byte and
//! `+1` output byte/byte per distinct mark register.

use crate::absint::{block_action_envs, AbsInt, Interval, RegEnv};
use crate::checks::ReachInfo;
use crate::graph::{action_write, ProgramGraph, Slot};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use udp_asm::layout::CHAIN_CONTINUE_SIGNATURE;
use udp_asm::{CostBlocker, CostMetric, ProgramImage, ResourceCert};
use udp_isa::action::{Action, Opcode};
use udp_isa::transition::{ExecKind, FALLBACK_SIGNATURE};
use udp_isa::Reg;

/// The lane's architectural loop-length cap (`loop_len` /
/// `LoopCmp`'s limit clamp) — lengths at or above it either fault or
/// are clamped, so a statically-unbounded operand is still *finitely*
/// costed at runtime, but uselessly so; we refuse to certify instead.
const LOOP_CAP: u32 = 1 << 26;

/// Maximum spread (max − min) of `InIdx` offsets written to a span
/// mark register before amortization is refused. Offsets are tiny in
/// practice (−1, 0, +1); the spread is charged per write, so it must
/// stay small for the charge to stay small.
const MAX_MARK_SPREAD: i64 = 64;

/// One dispatch edge with its cost/gain/output attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Edge {
    from: usize,
    /// Target state index; `None` for terminal edges (halt, guaranteed
    /// fault).
    to: Option<usize>,
    cost: u64,
    gain: i64,
    out: u64,
}

/// A recognized amortizable span site: arc + mark register + offsets.
struct SpanSite {
    arc: usize,
    mark: u8,
    off0: i64,
    off4: i64,
}

fn sx(imm: u16) -> i64 {
    i64::from(imm as i16)
}

fn symbol_entered(kind: Option<ExecKind>) -> bool {
    matches!(kind, Some(ExecKind::Consume | ExecKind::Flagged))
}

/// True when `arc` (by slot rules) is actually followed at runtime.
fn followed(graph: &ProgramGraph, reach: &ReachInfo, ai: usize) -> bool {
    let arc = &graph.arcs[ai];
    if reach.phantom[ai] || !reach.reached[arc.state] {
        return false;
    }
    let entered = reach.entered[arc.state];
    match arc.slot {
        Slot::Labeled(_) => symbol_entered(entered),
        // Only the word *at* the fallback slot is ever fetched; deeper
        // chain words exist for the NFA assembler mode only.
        Slot::Fallback => !matches!(entered, Some(ExecKind::Halt) | None),
        Slot::Chain(k) => k == 0 && !matches!(entered, Some(ExecKind::Halt) | None),
    }
}

/// Mirrors `EmitSpan::recognize` from the lane (shape + no-R15): the
/// five-action prefix the compiled backend fuses. Used for the
/// `fused_span_blocks` count and as the first gate for amortization.
fn emit_span_shape(actions: &[(u32, Action)]) -> bool {
    if actions.len() < 5 {
        return false;
    }
    let a: Vec<&Action> = actions.iter().take(5).map(|(_, a)| a).collect();
    let ok = a[0].op == Opcode::InIdx
        && a[1].op == Opcode::Sub
        && a[2].op == Opcode::LoopIn
        && a[3].op == Opcode::EmitB
        && a[4].op == Opcode::InIdx;
    let regs = [
        a[0].dst, a[1].dst, a[1].rref, a[1].src, a[2].rref, a[2].src, a[3].src, a[4].dst,
    ];
    ok && !regs.contains(&Reg::R15)
}

/// Mirrors the compiled backend's `recognize_bitemit`: the
/// action-per-symbol emit idiom — a sequence of ≤ 2 constant
/// `MovI rd; EmitBits rd` pairs (≤ 32 folded bits, ≤ 2 distinct
/// destination registers), optionally ending in one `EmitB`, with
/// `R13`/`R15` excluded throughout — and the single-`EmitB` block of
/// the decoder (refill pass) shape. A conservative superset of what
/// the bit-burst superop actually fuses: the compiler adds arc-level
/// conditions (consuming successor, pass-plan shape) this per-block
/// count does not see, so every fusable block is counted here. Used
/// for the `fused_bitemit_blocks` certification count.
fn bitemit_shape(actions: &[(u32, Action)]) -> bool {
    let banned = |r: Reg| r == Reg::R13 || r == Reg::R15;
    let mut len: u32 = 0;
    let mut dsts: BTreeSet<u8> = BTreeSet::new();
    let mut i = 0;
    while i < actions.len() {
        let a = &actions[i].1;
        if a.op == Opcode::MovI && i + 1 < actions.len() {
            let e = &actions[i + 1].1;
            if e.op != Opcode::EmitBits || e.src != a.dst || banned(a.dst) {
                return false;
            }
            len += u32::from(e.imm1.clamp(1, 16));
            dsts.insert(a.dst.index());
            if dsts.len() > 2 || len > 32 {
                return false;
            }
            i += 2;
        } else {
            return a.op == Opcode::EmitB && i + 1 == actions.len() && !banned(a.src);
        }
    }
    len > 0
}

/// Recognizes an *amortizable* span prefix: the `EmitSpan` shape plus
/// the dataflow equalities that make the telescoping argument go
/// through — the copied length is `(idx + off0) − mark` and the mark is
/// rewritten to `idx + off4` on every visit.
fn span_site(ai: usize, actions: &[(u32, Action)]) -> Option<SpanSite> {
    if !emit_span_shape(actions) {
        return None;
    }
    let a0 = &actions[0].1;
    let a1 = &actions[1].1;
    let a2 = &actions[2].1;
    let a4 = &actions[4].1;
    let mark = a1.src;
    if a1.rref != a0.dst || a2.src != a1.dst || a4.dst != mark {
        return None;
    }
    // R13 is implicitly rewritten by every dispatch; R15 already
    // excluded by the shape check.
    if mark == Reg::R13 {
        return None;
    }
    Some(SpanSite {
        arc: ai,
        mark: mark.index(),
        off0: sx(a0.imm),
        off4: sx(a4.imm),
    })
}

/// Collected per-mark-register amortization facts.
struct MarkInfo {
    /// Spread (max − min) over every `InIdx` offset written to the
    /// register anywhere reachable, including the span sites' own.
    spread: i64,
}

/// Builds the amortized-mark table: a mark register qualifies when at
/// least one span site uses it and *every* reachable write to it is an
/// `InIdx` whose offsets stay within [`MAX_MARK_SPREAD`].
fn amortized_marks(
    graph: &ProgramGraph,
    reach: &ReachInfo,
    sites: &[SpanSite],
) -> BTreeMap<u8, MarkInfo> {
    let candidates: BTreeSet<u8> = sites.iter().map(|s| s.mark).collect();
    let mut offsets: BTreeMap<u8, (i64, i64)> = BTreeMap::new();
    let mut disqualified: BTreeSet<u8> = BTreeSet::new();
    for ai in 0..graph.arcs.len() {
        if !followed(graph, reach, ai) {
            continue;
        }
        let Some(block) = &graph.arcs[ai].block else {
            continue;
        };
        for &(_, a) in &block.actions {
            let Some(w) = action_write(&a) else { continue };
            if !candidates.contains(&w.index()) {
                continue;
            }
            if a.op == Opcode::InIdx {
                let off = sx(a.imm);
                let e = offsets.entry(w.index()).or_insert((off, off));
                e.0 = e.0.min(off);
                e.1 = e.1.max(off);
            } else {
                disqualified.insert(w.index());
            }
        }
    }
    let mut out = BTreeMap::new();
    for site in sites {
        if disqualified.contains(&site.mark) {
            continue;
        }
        let (lo, hi) = offsets.get(&site.mark).copied().unwrap_or((0, 0));
        let lo = lo.min(site.off0).min(site.off4).min(0);
        let hi = hi.max(site.off0).max(site.off4).max(0);
        if hi - lo <= MAX_MARK_SPREAD {
            out.insert(site.mark, MarkInfo { spread: hi - lo });
        }
    }
    out
}

/// Result of one ratio solve.
enum Ratio {
    /// `(λ*, additive base numerator in eighth-cycles)`.
    Bounded { per: u64, base8: i128 },
    /// A reachable cycle whose weight stays positive at every `λ` —
    /// the program can spin without consuming. Carries a state base
    /// address on the offending cycle when one was identified.
    Unbounded { culprit: Option<u32> },
}

/// Longest-path / positive-cycle test at a fixed `λ` over `8·metric −
/// λ·gain` weights. Returns the maximum path weight from the entry
/// (including terminal-edge extensions), or `Err(culprit)` when a
/// positive cycle is reachable.
fn feasible(
    n_states: usize,
    entry: usize,
    edges: &[Edge],
    metric: impl Fn(&Edge) -> u64,
    lambda: i128,
    state_base: &[u32],
) -> Result<i128, Option<u32>> {
    let w = |e: &Edge| 8 * i128::from(metric(e)) - lambda * i128::from(e.gain);
    let mut dist: Vec<Option<i128>> = vec![None; n_states];
    dist[entry] = Some(0);
    let mut culprit = None;
    for pass in 0..=n_states {
        let mut changed = false;
        for e in edges {
            let Some(v) = e.to else { continue };
            let Some(du) = dist[e.from] else { continue };
            let nd = du + w(e);
            if dist[v].is_none_or(|dv| nd > dv) {
                dist[v] = Some(nd);
                changed = true;
                culprit = state_base.get(v).copied();
            }
        }
        if !changed {
            break;
        }
        if pass == n_states {
            return Err(culprit);
        }
    }
    let mut d: i128 = 0;
    for du in dist.iter().flatten() {
        d = d.max(*du);
    }
    for e in edges {
        if e.to.is_none() {
            if let Some(du) = dist[e.from] {
                d = d.max(du + w(e));
            }
        }
    }
    Ok(d)
}

/// Finds the minimal integer `λ` with no positive cycle, by binary
/// search (monotone on the feasible side: every edge's `cost >= 0`, so
/// a cycle that is infeasible at some `λ` has `gain <= 0` and stays
/// infeasible at every larger `λ`; feasibility at `λ_hi` therefore
/// implies all cycles have positive gain and larger `λ` only helps).
fn solve_ratio(
    n_states: usize,
    entry: usize,
    edges: &[Edge],
    metric: impl Fn(&Edge) -> u64 + Copy,
    state_base: &[u32],
) -> Ratio {
    let total: u64 = edges.iter().map(metric).sum();
    let hi = 8u128.saturating_mul(u128::from(total)).saturating_add(8) as i128;
    if let Err(culprit) = feasible(n_states, entry, edges, metric, hi, state_base) {
        return Ratio::Unbounded { culprit };
    }
    let (mut lo, mut hi) = (0i128, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match feasible(n_states, entry, edges, metric, mid, state_base) {
            Ok(_) => hi = mid,
            Err(_) => lo = mid + 1,
        }
    }
    match feasible(n_states, entry, edges, metric, lo, state_base) {
        Ok(base8) => Ratio::Bounded {
            per: lo as u64,
            base8,
        },
        Err(culprit) => Ratio::Unbounded { culprit },
    }
}

/// Collects per-arc cost/gain/out plus blockers, then solves both
/// ratios and assembles the certificate.
pub(crate) fn certify(
    image: &ProgramImage,
    graph: &ProgramGraph,
    reach: &ReachInfo,
    absint: &AbsInt,
) -> ResourceCert {
    let mut cert = ResourceCert::default();
    let mut blockers: Vec<CostBlocker> = Vec::new();
    let mut block = |metric: CostMetric, addr: Option<u32>, reason: &str| {
        blockers.push(CostBlocker {
            metric,
            addr,
            reason: reason.to_string(),
        });
    };

    let Some(&entry) = graph.base_index.get(&image.entry_base) else {
        block(CostMetric::Cycles, None, "entry base is not a placed state");
        cert.unbounded = blockers;
        return cert;
    };

    // Guaranteed bits per Consume dispatch: the smallest symbol width
    // any reachable execution can be running with.
    let mut sym_lo = u64::from(image.init.symbol_bits);
    for ai in 0..graph.arcs.len() {
        if !followed(graph, reach, ai) {
            continue;
        }
        if let Some(b) = &graph.arcs[ai].block {
            for &(_, a) in &b.actions {
                if matches!(a.op, Opcode::SetSym | Opcode::SetSymT) && (1..=8).contains(&a.imm) {
                    sym_lo = sym_lo.min(u64::from(a.imm));
                }
            }
        }
    }

    // Span amortization prep, plus the fused-shape block counts the
    // compiled backend keys its recognizers on.
    let mut sites: Vec<SpanSite> = Vec::new();
    let mut fused_starts: BTreeSet<u32> = BTreeSet::new();
    let mut bitemit_starts: BTreeSet<u32> = BTreeSet::new();
    for ai in 0..graph.arcs.len() {
        if !followed(graph, reach, ai) {
            continue;
        }
        if let Some(b) = &graph.arcs[ai].block {
            if emit_span_shape(&b.actions) {
                fused_starts.insert(b.start);
            }
            if bitemit_shape(&b.actions) {
                bitemit_starts.insert(b.start);
            }
            if let Some(site) = span_site(ai, &b.actions) {
                sites.push(site);
            }
        }
    }
    cert.fused_span_blocks = fused_starts.len() as u32;
    cert.fused_bitemit_blocks = bitemit_starts.len() as u32;
    let marks = amortized_marks(graph, reach, &sites);
    let amortized_arcs: HashSet<usize> = sites
        .iter()
        .filter(|s| marks.contains_key(&s.mark))
        .map(|s| s.arc)
        .collect();

    let span_bytes = (image.stats.span_words as u64) * 4;

    // Build the edge list.
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_nest = 0u32;
    for (ai, arc) in graph.arcs.iter().enumerate() {
        if !followed(graph, reach, ai) {
            continue;
        }
        let entered = reach.entered[arc.state];
        // Dispatch cost/gain; `terminal` marks edges the lane cannot
        // continue past (the block, if any, never runs on those).
        let consume_gain = if entered == Some(ExecKind::Consume) {
            sym_lo as i64
        } else {
            0
        };
        let (mut cost, mut gain, dispatch_terminal) = match entered {
            Some(ExecKind::Consume | ExecKind::Flagged) => match arc.slot {
                Slot::Labeled(_) => (1u64, consume_gain, false),
                Slot::Fallback | Slot::Chain(_) => (2, consume_gain, false),
            },
            Some(ExecKind::Pass) => {
                let sig = arc.word.signature();
                if matches!(arc.slot, Slot::Chain(_)) || sig == CHAIN_CONTINUE_SIGNATURE {
                    // Epsilon fork outside NFA mode: immediate fault.
                    (1, 0, true)
                } else if sig == FALLBACK_SIGNATURE {
                    (1, 0, false)
                } else if sig <= 8 {
                    (1, -i64::from(sig), false)
                } else {
                    // Bad pass signature: immediate fault.
                    (1, 0, true)
                }
            }
            _ => continue,
        };
        let mut out = 0u64;

        if arc.set_base_ambiguous && arc.word.kind() != ExecKind::Halt {
            block(
                CostMetric::Cycles,
                Some(arc.addr),
                "dispatch target depends on a conditional SetBase",
            );
            block(
                CostMetric::Output,
                Some(arc.addr),
                "dispatch target depends on a conditional SetBase",
            );
        }

        if !dispatch_terminal {
            if let Some(b) = &arc.block {
                if b.undecodable.is_some() || b.unterminated {
                    block(
                        CostMetric::Cycles,
                        Some(b.start),
                        "action block does not decode to a terminated sequence",
                    );
                }
                let nest = b
                    .actions
                    .iter()
                    .filter(|(_, a)| {
                        matches!(
                            a.op,
                            Opcode::LoopCmp
                                | Opcode::LoopCmpM
                                | Opcode::LoopCpy
                                | Opcode::LoopOut
                                | Opcode::LoopBack
                                | Opcode::LoopIn
                        )
                    })
                    .count() as u32;
                max_nest = max_nest.max(nest);

                let env0 = absint
                    .arc_block_entry(graph, reach, ai)
                    .unwrap_or([Interval::TOP; 16]);
                let (envs, last_conditional) = block_action_envs(env0, b);
                if last_conditional {
                    block(
                        CostMetric::Cycles,
                        Some(b.start),
                        "block terminator sits under a skip shadow",
                    );
                    block(
                        CostMetric::Output,
                        Some(b.start),
                        "block terminator sits under a skip shadow",
                    );
                }
                let amortized = amortized_arcs.contains(&ai);
                let (c, g, o) = walk_block(b, &envs, amortized, &marks, span_bytes, &mut block);
                cost += c;
                gain += g;
                out += o;
            }
        }

        let terminal = dispatch_terminal || arc.word.kind() == ExecKind::Halt;
        let to = if terminal {
            None
        } else {
            arc.flat_target
                .and_then(|t| graph.base_index.get(&t).copied())
        };
        edges.push(Edge {
            from: arc.state,
            to,
            cost,
            gain,
            out,
        });
    }
    cert.max_loop_nest = max_nest;

    // Dedupe exact parallel duplicates (dense DFA tables produce many).
    let mut seen: HashSet<Edge> = HashSet::new();
    edges.retain(|e| seen.insert(e.clone()));

    let n = graph.states.len();
    let bases: Vec<u32> = graph.states.iter().map(|s| s.base).collect();
    let max_gain8 = edges.iter().map(|e| e.gain.max(0)).max().unwrap_or(0) as u64;
    let m_marks = marks.len() as u64;

    let has = |metric: CostMetric, bl: &[CostBlocker]| bl.iter().any(|b| b.metric == metric);

    match solve_ratio(n, entry, &edges, |e| e.cost, &bases) {
        Ratio::Bounded { per, base8 } => {
            // cycles <= D/8 + λ·n + λ·max_gain/8 (final partial edge)
            // + 2 (terminal dispatch with no recorded arc) + rounding
            // + amortization supplements.
            cert.base_cycles = (base8.max(0) as u64).div_ceil(8)
                + (per.saturating_mul(max_gain8)).div_ceil(8)
                + 3
                + 16 * m_marks;
            cert.max_cycles_per_byte = Some(per + m_marks);
            cert.min_bytes_per_cycle_progress = Some((1, (per + m_marks).max(1)));
        }
        Ratio::Unbounded { culprit } => {
            block(
                CostMetric::Cycles,
                culprit,
                "a reachable dispatch cycle makes no guaranteed stream progress",
            );
        }
    }
    match solve_ratio(n, entry, &edges, |e| e.out, &bases) {
        Ratio::Bounded { per, base8 } => {
            cert.base_output_bytes = (base8.max(0) as u64).div_ceil(8)
                + (per.saturating_mul(max_gain8)).div_ceil(8)
                + 4
                + 128 * m_marks;
            cert.max_output_expansion = Some(per + m_marks);
        }
        Ratio::Unbounded { culprit } => {
            block(
                CostMetric::Output,
                culprit,
                "a reachable dispatch cycle can emit without guaranteed stream progress",
            );
        }
    }

    // A blocker invalidates its metric's ratio even if the solver
    // found one (the walk already under-reported the blocked edge).
    let mut dedup: HashSet<(CostMetric, Option<u32>, String)> = HashSet::new();
    blockers.retain(|b| dedup.insert((b.metric, b.addr, b.reason.clone())));
    if has(CostMetric::Cycles, &blockers) {
        cert.max_cycles_per_byte = None;
        cert.min_bytes_per_cycle_progress = None;
        cert.base_cycles = 0;
    }
    if has(CostMetric::Output, &blockers) {
        cert.max_output_expansion = None;
        cert.base_output_bytes = 0;
    }
    cert.unbounded = blockers;
    cert
}

/// Walks one action block accumulating `(cost, gain, out)` and
/// reporting blockers, mirroring `Lane::exec`'s charging rules.
fn walk_block(
    b: &crate::graph::ActionBlock,
    envs: &[RegEnv],
    amortized: bool,
    marks: &BTreeMap<u8, MarkInfo>,
    span_bytes: u64,
    block: &mut impl FnMut(CostMetric, Option<u32>, &str),
) -> (u64, i64, u64) {
    use Opcode::*;
    let mut cost = 0u64;
    let mut gain = 0i64;
    let mut out = 0u64;
    let mut shadow = 0u8;
    let mut sticky = false;
    let rd = |env: &RegEnv, r: Reg| -> Interval {
        if r == Reg::R15 {
            Interval::TOP
        } else {
            env[r.index() as usize]
        }
    };
    for (i, &(addr, a)) in b.actions.iter().enumerate() {
        let env = envs.get(i).copied().unwrap_or([Interval::TOP; 16]);
        let conditional = sticky || shadow > 0;
        shadow = shadow.saturating_sub(1);
        if matches!(a.op, SkipIfZ | SkipIfNz) {
            if conditional {
                sticky = true;
            } else {
                shadow = a.imm1;
            }
        }
        let simm = sx(a.imm);
        match a.op {
            SetSymT => {}
            BumpW => {
                cost += 2;
                let sv = rd(&env, a.src);
                let lo = i64::from(a.imm) + 4 * i64::from(sv.lo);
                if (lo as u64) < span_bytes || sv.is_top() {
                    block(
                        CostMetric::Cycles,
                        Some(addr),
                        "store may overwrite program code",
                    );
                }
            }
            StoreW | StoreB => {
                cost += 1;
                let dv = rd(&env, a.dst);
                let lo = i64::from(dv.lo) + simm;
                if lo < 0 || (lo as u64) < span_bytes || dv.is_top() {
                    block(
                        CostMetric::Cycles,
                        Some(addr),
                        "store may overwrite program code",
                    );
                }
            }
            SetABase | SetAScale => {
                cost += 1;
                block(
                    CostMetric::Cycles,
                    Some(addr),
                    "attach addressing mutated at runtime",
                );
                block(
                    CostMetric::Output,
                    Some(addr),
                    "attach addressing mutated at runtime",
                );
            }
            LoopCmp | LoopCmpM => {
                let limit = env[14].hi.min(LOOP_CAP);
                if env[14].hi >= LOOP_CAP {
                    block(
                        CostMetric::Cycles,
                        Some(addr),
                        "loop-compare limit (R14) not statically bounded",
                    );
                }
                cost += 1 + u64::from(limit.div_ceil(8));
            }
            LoopCpy | LoopOut | LoopBack | LoopIn => {
                if amortized && i == 2 && a.op == LoopIn {
                    // Telescoped: constant issue charge here, the
                    // summed copy length is absorbed globally.
                    cost += 2;
                } else {
                    let n_hi = rd(&env, a.src).hi;
                    if n_hi >= LOOP_CAP {
                        block(
                            CostMetric::Cycles,
                            Some(addr),
                            "bulk-loop length not statically bounded",
                        );
                        if matches!(a.op, LoopOut | LoopBack | LoopIn) {
                            block(
                                CostMetric::Output,
                                Some(addr),
                                "bulk-loop output length not statically bounded",
                            );
                        }
                    }
                    let n_hi = u64::from(n_hi.min(LOOP_CAP));
                    cost += 1 + n_hi.div_ceil(8);
                    if matches!(a.op, LoopOut | LoopBack | LoopIn) {
                        out += n_hi;
                    }
                    if a.op == LoopCpy {
                        let dv = rd(&env, a.dst);
                        if dv.is_top() || u64::from(dv.lo) < span_bytes {
                            block(
                                CostMetric::Cycles,
                                Some(addr),
                                "store may overwrite program code",
                            );
                        }
                    }
                }
            }
            ReadBits => {
                cost += 1;
                if !conditional {
                    gain += i64::from((a.imm & 31).max(1));
                }
            }
            RefillI => {
                cost += 1;
                gain -= i64::from((a.imm & 15).min(8));
            }
            EmitB => {
                cost += 1;
                out += 1;
            }
            EmitW => {
                cost += 1;
                out += 4;
            }
            EmitBits => {
                cost += 1;
                out += 2;
            }
            InIdx => {
                cost += 1;
                if let Some(info) = marks.get(&a.dst.index()) {
                    // A mark rewrite may move the mark backwards by up
                    // to the offset spread; charge the re-countable
                    // bytes here.
                    let spread = info.spread.max(0) as u64;
                    cost += spread.div_ceil(8);
                    out += spread;
                }
            }
            _ => cost += 1,
        }
    }
    (cost, gain, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::compute_reach;
    use udp_asm::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::Action;

    fn certify_image(image: &ProgramImage) -> ResourceCert {
        let graph = ProgramGraph::decode(image);
        let reach = compute_reach(image, &graph);
        let absint = crate::absint::analyze(image, &graph, &reach);
        certify(image, &graph, &reach, &absint)
    }

    #[test]
    fn consuming_loop_certifies_with_small_ratio() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(
            s,
            b'a' as u16,
            Target::State(s),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'x' as u16)],
        );
        b.fallback_arc(s, Target::State(s), vec![]);
        let image = b.assemble(&LayoutOptions::default()).unwrap();
        let cert = certify_image(&image);
        assert!(cert.is_complete(), "{cert:?}");
        let cpb = cert.max_cycles_per_byte.unwrap();
        // 8-bit symbols: one dispatch (+ block) per byte; the miss path
        // costs 2 + nothing. Well under 8 cycles/byte.
        assert!((2..=8).contains(&cpb), "cycles/byte {cpb}");
        assert!(cert.max_output_expansion.unwrap() <= 2);
        assert_eq!(cert.unbounded, vec![]);
    }

    #[test]
    fn non_consuming_refill_loop_is_blocked() {
        // A pass state that refills 8 bits and loops to a consuming
        // state that reads 8 bits: net gain 0, cost > 0 → unbounded.
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        let p = b.add_pass_state(
            8,
            udp_asm::Arc {
                target: Target::State(s),
                actions: vec![],
            },
        );
        b.set_entry(s);
        b.labeled_arc(s, b'a' as u16, Target::State(p), vec![]);
        b.fallback_arc(s, Target::Halt, vec![]);
        let image = b.assemble(&LayoutOptions::default()).unwrap();
        let cert = certify_image(&image);
        assert_eq!(cert.max_cycles_per_byte, None, "{cert:?}");
        assert!(cert
            .unbounded
            .iter()
            .any(|bl| bl.metric == CostMetric::Cycles));
    }

    #[test]
    fn halting_program_gets_zero_ratio() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, 0, Target::Halt, vec![]);
        b.fallback_arc(s, Target::Halt, vec![]);
        let image = b.assemble(&LayoutOptions::default()).unwrap();
        let cert = certify_image(&image);
        assert!(cert.is_complete());
        // One dispatch then halt: the per-byte ratio can be 0 (all cost
        // fits in the base).
        assert!(cert.max_cycles_per_byte.unwrap() <= 2);
        assert!(cert.base_cycles >= 1);
    }
}

//! Interval abstract interpretation over the decoded program graph
//! (DESIGN.md §9.1).
//!
//! Each placed state gets an abstract register environment — one
//! unsigned interval per scalar register — describing every value the
//! register can hold *at dispatch time* in any run that starts from the
//! architectural reset state (`regs = [0; 16]`, no host register
//! staging). A worklist fixpoint mirrors the reachability walk: an
//! arc's transfer function latches the dispatch symbol into `R13`
//! exactly as the lane does, threads the environment through the arc's
//! action block (weak updates under `SkipIfZ`/`SkipIfNz` shadows, since
//! a shadowed write may or may not land), and joins the result into the
//! target state. Widening caps the number of joins per state so the
//! fixpoint terminates on cyclic graphs.
//!
//! The cost analysis (`crate::cost`) consumes these environments to
//! bound loop-action trip counts (`LoopCmp`'s `R14` limit, the bulk
//! loops' `src` length operand); anything the domain cannot bound
//! surfaces there as a [`crate::Check::CostUnbounded`] finding.

use crate::checks::ReachInfo;
use crate::graph::{ActionBlock, ArcInfo, ProgramGraph, Slot};
use std::collections::VecDeque;
use udp_asm::ProgramImage;
use udp_isa::action::{Action, ActionFormat, Opcode};
use udp_isa::transition::ExecKind;
use udp_isa::Reg;

/// Joins (that changed the target) a state absorbs before further joins
/// widen straight to the extremes instead of creeping one bound at a
/// time. Small: precision past a few round trips is never load-bearing
/// for the cost bounds, and widening early keeps the fixpoint cheap.
const WIDEN_AFTER: u32 = 8;

/// An unsigned 32-bit interval `[lo, hi]` (inclusive, `lo <= hi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u32,
    /// Largest possible value.
    pub hi: u32,
}

impl Interval {
    /// The full range — "no information".
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u32::MAX,
    };

    /// A single known value.
    pub fn exact(v: u32) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An explicit range (callers guarantee `lo <= hi`).
    pub fn of(lo: u32, hi: u32) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// `[0, 2^bits - 1]` — the value range of a `bits`-wide field.
    pub fn of_bits(bits: u32) -> Interval {
        if bits >= 32 {
            Interval::TOP
        } else {
            Interval {
                lo: 0,
                hi: (1u32 << bits) - 1,
            }
        }
    }

    /// Converts a signed 64-bit range, going to `TOP` when any part
    /// falls outside `u32` (i.e. the concrete op may wrap).
    fn from_i64(lo: i64, hi: i64) -> Interval {
        if lo < 0 || hi > i64::from(u32::MAX) || lo > hi {
            Interval::TOP
        } else {
            Interval {
                lo: lo as u32,
                hi: hi as u32,
            }
        }
    }

    /// True when nothing is known.
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// True when the value is a single known constant.
    pub fn is_exact(self) -> bool {
        self.lo == self.hi
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Classic interval widening: any bound that moved jumps straight
    /// to its extreme.
    fn widen(self, newer: Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { 0 } else { self.lo },
            hi: if newer.hi > self.hi {
                u32::MAX
            } else {
                self.hi
            },
        }
    }
}

/// Smallest number of bits that can hold `x`.
fn bits_needed(x: u32) -> u32 {
    32 - x.leading_zeros()
}

/// One abstract register file: an interval per scalar register.
/// `R15` (the live stream index) is pinned to [`Interval::TOP`] — the
/// lane aliases it to the cursor on read and ignores writes.
pub type RegEnv = [Interval; 16];

/// The environment at architectural reset: every register zero, except
/// the `R15` stream-index alias which is the (unknown) cursor.
pub fn entry_env() -> RegEnv {
    let mut env = [Interval::exact(0); 16];
    env[15] = Interval::TOP;
    env
}

/// The fixpoint solution: an entry environment per placed state
/// (`None` for states the dispatch walk never reaches).
pub struct AbsInt {
    /// Per state (index as in [`ProgramGraph::states`]): the abstract
    /// register file *before* that state's dispatch.
    pub state_envs: Vec<Option<RegEnv>>,
}

impl AbsInt {
    /// The environment in force at the start of `arc`'s action block:
    /// the owning state's entry environment with the dispatch-symbol
    /// latch (`R13`) applied the way the lane's dispatch applies it.
    pub fn arc_block_entry(
        &self,
        graph: &ProgramGraph,
        reach: &ReachInfo,
        ai: usize,
    ) -> Option<RegEnv> {
        let arc = &graph.arcs[ai];
        let mut env = self.state_envs[arc.state]?;
        latch_symbol(&mut env, arc, reach.entered[arc.state]);
        Some(env)
    }

    /// The environment before each action of `arc`'s block (empty when
    /// the arc has no block). `None` when the owning state is
    /// unreached.
    pub fn arc_action_envs(
        &self,
        graph: &ProgramGraph,
        reach: &ReachInfo,
        ai: usize,
    ) -> Option<Vec<RegEnv>> {
        let env = self.arc_block_entry(graph, reach, ai)?;
        let arc = &graph.arcs[ai];
        Some(match &arc.block {
            Some(block) => block_action_envs(env, block).0,
            None => Vec::new(),
        })
    }
}

/// True when a state entered with `kind` reads its labeled slots.
fn symbol_entered(kind: Option<ExecKind>) -> bool {
    matches!(kind, Some(ExecKind::Consume | ExecKind::Flagged))
}

/// Applies the dispatch's `R13` symbol latch for one arc.
///
/// * Symbol-entered states (`Consume`/`Flagged`): a labeled hit pins
///   `R13` to the slot's symbol (the signature check guarantees the
///   dispatched value equals it); a signature miss latches whatever was
///   read, so the fallback path gets `[0, 255]` (symbols are at most 8
///   bits wide; a 32-bit `Consume` read that misses still masks the
///   *compared* byte but latches the full word — kept sound by `TOP`).
/// * `Pass` dispatch does not touch `R13`.
fn latch_symbol(env: &mut RegEnv, arc: &ArcInfo, entered: Option<ExecKind>) {
    if !symbol_entered(entered) {
        return;
    }
    match arc.slot {
        Slot::Labeled(sym) => env[13] = Interval::exact(u32::from(sym)),
        // The miss path latches the raw dispatched word; 8-bit symbol
        // reads stay within a byte but a 32-bit read does not.
        Slot::Fallback | Slot::Chain(_) => env[13] = Interval::TOP,
    }
}

/// Reads a register interval, honoring the `R15` stream-index alias.
fn rd(env: &RegEnv, r: Reg) -> Interval {
    if r == Reg::R15 {
        Interval::TOP
    } else {
        env[r.index() as usize]
    }
}

/// Writes a register interval; `conditional` writes join with the old
/// value (the action may be skipped), and `R15` writes are dropped as
/// the lane drops them.
fn wr(env: &mut RegEnv, r: Reg, v: Interval, conditional: bool) {
    if r == Reg::R15 {
        return;
    }
    let slot = &mut env[r.index() as usize];
    *slot = if conditional { slot.join(v) } else { v };
}

/// Threads `env` through one block, returning the environment *before*
/// each action plus whether the block's final action could be skipped
/// by a `SkipIfZ`/`SkipIfNz` shadow (in which case a static walk of the
/// recorded block diverges from the machine — the cost pass refuses to
/// certify such an arc).
pub(crate) fn block_action_envs(mut env: RegEnv, block: &ActionBlock) -> (Vec<RegEnv>, bool) {
    let mut envs = Vec::with_capacity(block.actions.len());
    let mut shadow = 0u8;
    // Once a skip itself sits under a shadow, the extent of *its*
    // shadow is unknown statically; everything after is conditional.
    let mut sticky = false;
    let mut last_conditional = false;
    for &(_, a) in &block.actions {
        envs.push(env);
        let conditional = sticky || shadow > 0;
        shadow = shadow.saturating_sub(1);
        if matches!(a.op, Opcode::SkipIfZ | Opcode::SkipIfNz) {
            if conditional {
                sticky = true;
            } else {
                shadow = a.imm1;
            }
        }
        if a.last {
            last_conditional = conditional;
        }
        transfer(&mut env, &a, conditional);
    }
    (envs, last_conditional)
}

/// Runs the worklist fixpoint over every reached state.
pub fn analyze(image: &ProgramImage, graph: &ProgramGraph, reach: &ReachInfo) -> AbsInt {
    let n = graph.states.len();
    let mut result = AbsInt {
        state_envs: vec![None; n],
    };
    let Some(&entry) = graph.base_index.get(&image.entry_base) else {
        return result;
    };
    let mut joins = vec![0u32; n];
    result.state_envs[entry] = Some(entry_env());
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(entry);
    queued[entry] = true;

    while let Some(s) = queue.pop_front() {
        queued[s] = false;
        let Some(env) = result.state_envs[s] else {
            continue;
        };
        let follow_labeled = symbol_entered(reach.entered[s]);
        for &ai in &graph.states[s].arcs {
            if reach.phantom[ai] {
                continue;
            }
            let arc = &graph.arcs[ai];
            if matches!(arc.slot, Slot::Labeled(_)) && !follow_labeled {
                continue;
            }
            let Some(t) = arc.flat_target else { continue };
            let Some(&ti) = graph.base_index.get(&t) else {
                continue;
            };
            let mut out = env;
            latch_symbol(&mut out, arc, reach.entered[s]);
            if let Some(block) = &arc.block {
                out = block_exit_env(out, block);
            }
            let changed = match result.state_envs[ti] {
                None => {
                    result.state_envs[ti] = Some(out);
                    true
                }
                Some(old) => {
                    let joined = join_envs(&old, &out, joins[ti] >= WIDEN_AFTER);
                    if joined != old {
                        joins[ti] += 1;
                        result.state_envs[ti] = Some(joined);
                        true
                    } else {
                        false
                    }
                }
            };
            if changed && !queued[ti] {
                queued[ti] = true;
                queue.push_back(ti);
            }
        }
    }
    result
}

/// The environment after a whole block has run.
fn block_exit_env(mut env: RegEnv, block: &ActionBlock) -> RegEnv {
    let mut shadow = 0u8;
    let mut sticky = false;
    for &(_, a) in &block.actions {
        let conditional = sticky || shadow > 0;
        shadow = shadow.saturating_sub(1);
        if matches!(a.op, Opcode::SkipIfZ | Opcode::SkipIfNz) {
            if conditional {
                sticky = true;
            } else {
                shadow = a.imm1;
            }
        }
        transfer(&mut env, &a, conditional);
    }
    env
}

/// Per-register join (with widening after the join budget runs out).
fn join_envs(old: &RegEnv, new: &RegEnv, widen: bool) -> RegEnv {
    let mut out = *old;
    for (o, n) in out.iter_mut().zip(new.iter()) {
        let j = o.join(*n);
        *o = if widen { o.widen(j) } else { j };
    }
    out
}

/// The abstract transfer function for one action, mirroring the lane
/// interpreter's `exec` value semantics (`crates/sim/src/lane.rs`).
/// Ops with no register result (stores, emits, stream moves, config)
/// leave the environment unchanged — their *cost* is the cost pass's
/// business, not the value domain's.
pub(crate) fn transfer(env: &mut RegEnv, a: &Action, conditional: bool) {
    use Opcode::*;
    let imm = u32::from(a.imm);
    let simm = i64::from(a.imm as i16);
    let sv = rd(env, a.src);
    let dv = rd(env, a.dst);
    let rv = || {
        if a.op.format() == ActionFormat::Reg {
            rd(env, a.rref)
        } else {
            Interval::TOP
        }
    };
    let value = match a.op {
        MovI => Interval::exact(imm),
        MovIH => {
            if dv.is_exact() {
                Interval::exact((dv.lo & 0xFFFF) | (imm << 16))
            } else {
                Interval::of(imm << 16, (imm << 16) | 0xFFFF)
            }
        }
        AddI => Interval::from_i64(i64::from(sv.lo) + simm, i64::from(sv.hi) + simm),
        SubI => Interval::from_i64(i64::from(sv.lo) - simm, i64::from(sv.hi) - simm),
        AndI => {
            if sv.is_exact() {
                Interval::exact(sv.lo & imm)
            } else {
                Interval::of(0, sv.hi.min(imm))
            }
        }
        OrI => {
            if sv.is_exact() {
                Interval::exact(sv.lo | imm)
            } else {
                let b = bits_needed(sv.hi.max(imm));
                Interval::of(sv.lo.max(imm), Interval::of_bits(b).hi.max(sv.lo.max(imm)))
            }
        }
        XorI => {
            if sv.is_exact() {
                Interval::exact(sv.lo ^ imm)
            } else {
                Interval::of(0, Interval::of_bits(bits_needed(sv.hi.max(imm))).hi)
            }
        }
        ShlI => {
            let s = imm & 31;
            Interval::from_i64(i64::from(sv.lo) << s, i64::from(sv.hi) << s)
        }
        ShrI => {
            let s = imm & 31;
            Interval::of(sv.lo >> s, sv.hi >> s)
        }
        SarI => {
            if sv.hi < 0x8000_0000 {
                let s = imm & 31;
                Interval::of(sv.lo >> s, sv.hi >> s)
            } else {
                Interval::TOP
            }
        }
        LoadW | BumpW | Crc | FnvB | Hash2 | PeekW => Interval::TOP,
        LoadB | PeekAt => Interval::of(0, 255),
        SEqI | SLtI | SLtUI | SEq | SLt | SLtU | AtEof => Interval::of(0, 1),
        ReadBits | PeekBits => Interval::of_bits((imm & 31).max(1)),
        Hash => {
            if (1..32).contains(&a.imm) {
                Interval::of_bits(u32::from(a.imm))
            } else {
                Interval::TOP
            }
        }
        InIdx | OutIdx => Interval::TOP,
        Clz | Popcnt => Interval::of(0, 32),
        Extract => {
            let width = u32::from(a.imm & 0x1F).max(1);
            let mask = Interval::of_bits(width).hi;
            if sv.is_exact() {
                Interval::exact((sv.lo >> a.imm1) & mask)
            } else {
                Interval::of(0, mask.min(sv.hi >> a.imm1))
            }
        }
        Deposit => {
            let m = i64::from(Interval::of_bits(u32::from(a.imm1.max(1))).hi);
            Interval::from_i64(i64::from(dv.lo) << a.imm1, (i64::from(dv.hi) << a.imm1) | m)
        }
        Mov => sv,
        Add => {
            let r = rv();
            Interval::from_i64(
                i64::from(r.lo) + i64::from(sv.lo),
                i64::from(r.hi) + i64::from(sv.hi),
            )
        }
        Sub => {
            let r = rv();
            Interval::from_i64(
                i64::from(r.lo) - i64::from(sv.hi),
                i64::from(r.hi) - i64::from(sv.lo),
            )
        }
        And => Interval::of(0, rv().hi.min(sv.hi)),
        Or => {
            let r = rv();
            let b = bits_needed(r.hi.max(sv.hi));
            Interval::of(
                r.lo.max(sv.lo),
                Interval::of_bits(b).hi.max(r.lo.max(sv.lo)),
            )
        }
        Xor => Interval::of(0, Interval::of_bits(bits_needed(rv().hi.max(sv.hi))).hi),
        Shl => {
            let r = rv();
            if sv.is_exact() {
                let s = sv.lo & 31;
                Interval::from_i64(i64::from(r.lo) << s, i64::from(r.hi) << s)
            } else {
                Interval::TOP
            }
        }
        Shr => {
            let r = rv();
            if sv.is_exact() {
                let s = sv.lo & 31;
                Interval::of(r.lo >> s, r.hi >> s)
            } else {
                Interval::of(0, r.hi)
            }
        }
        Mul => {
            let r = rv();
            match (
                u64::from(r.lo).checked_mul(u64::from(sv.lo)),
                u64::from(r.hi).checked_mul(u64::from(sv.hi)),
            ) {
                (Some(lo), Some(hi)) if hi <= u64::from(u32::MAX) => {
                    Interval::of(lo as u32, hi as u32)
                }
                _ => Interval::TOP,
            }
        }
        Min => {
            let r = rv();
            Interval::of(r.lo.min(sv.lo), r.hi.min(sv.hi))
        }
        Max => {
            let r = rv();
            Interval::of(r.lo.max(sv.lo), r.hi.max(sv.hi))
        }
        SubSat => {
            let r = rv();
            Interval::of(r.lo.saturating_sub(sv.hi), r.hi.saturating_sub(sv.lo))
        }
        Sel => {
            // Conditional move: may keep the old value.
            wr(env, a.dst, sv, true);
            return;
        }
        LoopCmp | LoopCmpM => {
            // Prefix length, capped by R14 and the architectural cap.
            let limit = env[14].hi.min(1 << 26);
            Interval::of(0, limit)
        }
        // No register result.
        Nop | SetSym | SetSymT | SetBase | SetABase | SetAScale | StoreW | StoreB | EmitB
        | EmitW | SkipB | RefillI | Report | Accept | Halt | EmitBits | SkipIfZ | SkipIfNz
        | LoopCpy | LoopOut | LoopBack | LoopIn => return,
    };
    wr(env, a.dst, value, conditional);
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::Action;

    #[test]
    fn interval_algebra() {
        let a = Interval::of(2, 6);
        let b = Interval::of(4, 10);
        assert_eq!(a.join(b), Interval::of(2, 10));
        assert!(Interval::TOP.is_top());
        assert_eq!(Interval::of_bits(8), Interval::of(0, 255));
        assert_eq!(Interval::of_bits(32), Interval::TOP);
        assert_eq!(Interval::from_i64(-1, 5), Interval::TOP);
        assert_eq!(a.widen(Interval::of(1, 6)), Interval::of(0, 6));
        assert_eq!(a.widen(Interval::of(2, 7)), Interval::of(2, u32::MAX));
    }

    #[test]
    fn transfer_tracks_constants_and_ranges() {
        let mut env = entry_env();
        transfer(
            &mut env,
            &Action::imm(Opcode::MovI, Reg::new(1), Reg::R0, 40),
            false,
        );
        transfer(
            &mut env,
            &Action::imm(Opcode::AddI, Reg::new(2), Reg::new(1), 2),
            false,
        );
        assert_eq!(env[2], Interval::exact(42));
        transfer(
            &mut env,
            &Action::imm(Opcode::ReadBits, Reg::new(3), Reg::R0, 4),
            false,
        );
        assert_eq!(env[3], Interval::of(0, 15));
        // Conditional writes join with the old value.
        transfer(
            &mut env,
            &Action::imm(Opcode::MovI, Reg::new(2), Reg::R0, 7),
            true,
        );
        assert_eq!(env[2], Interval::of(7, 42));
        // R15 reads are the live cursor: unknown.
        transfer(
            &mut env,
            &Action::imm(Opcode::AddI, Reg::new(4), Reg::R15, 0),
            false,
        );
        assert!(env[4].is_top());
    }

    #[test]
    fn fixpoint_reaches_all_states_with_sound_envs() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        let t = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(
            s,
            b'a' as u16,
            Target::State(t),
            vec![Action::imm(Opcode::MovI, Reg::new(5), Reg::R0, 9)],
        );
        b.fallback_arc(s, Target::State(s), vec![]);
        b.labeled_arc(t, b'b' as u16, Target::State(s), vec![]);
        b.fallback_arc(t, Target::Halt, vec![]);
        let image = b.assemble(&LayoutOptions::default()).unwrap();
        let graph = ProgramGraph::decode(&image);
        let reach = crate::checks::compute_reach(&image, &graph);
        let ai = analyze(&image, &graph, &reach);
        for (si, env) in ai.state_envs.iter().enumerate() {
            assert!(env.is_some(), "state {si} unreached by absint");
        }
        // r5 is either 0 (never took the arc) or 9.
        let entry = graph.base_index[&image.entry_base];
        let env = ai.state_envs[entry].unwrap();
        assert_eq!(env[5], Interval::of(0, 9));
    }
}

//! Finding and report types shared by every check pass.

use std::fmt;

/// How serious a finding is. Ordered: `Lint < Warn < Error`, so a
/// severity threshold can be expressed as `severity >= min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only: dead code, redundant writes, style-level facts
    /// the engine never cares about. Never blocks execution.
    Lint,
    /// Suspicious but possibly intentional; the image may still run.
    Warn,
    /// The image violates an invariant the engine relies on.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Lint => f.write_str("LINT"),
            Severity::Warn => f.write_str("WARN"),
            Severity::Error => f.write_str("ERROR"),
        }
    }
}

/// Which check pass produced a finding (DESIGN.md §9 catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// Decode totality and word-kind consistency.
    Totality,
    /// Dispatch-target bounds, dead states, unreachable code.
    Reachability,
    /// Cycles that can never consume stream bits.
    Livelock,
    /// Scalar-register use-before-def dataflow.
    UseBeforeDef,
    /// Memory-addressing legality against the lane window.
    Addressing,
    /// EffCLiP layout integrity (collisions, aliasing, attach bounds).
    Layout,
    /// Resource certification: cycle or output cost per input byte
    /// could not be bounded by the abstract interpreter (§9.1).
    CostUnbounded,
}

impl Check {
    /// Every check, in report order.
    pub const ALL: [Check; 7] = [
        Check::Totality,
        Check::Reachability,
        Check::Livelock,
        Check::UseBeforeDef,
        Check::Addressing,
        Check::Layout,
        Check::CostUnbounded,
    ];

    /// Stable kebab-case name used in machine-readable summaries.
    pub fn name(self) -> &'static str {
        match self {
            Check::Totality => "totality",
            Check::Reachability => "reachability",
            Check::Livelock => "livelock",
            Check::UseBeforeDef => "use-before-def",
            Check::Addressing => "addressing",
            Check::Layout => "layout",
            Check::CostUnbounded => "cost-unbounded",
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic produced by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced this finding.
    pub check: Check,
    /// Severity class.
    pub severity: Severity,
    /// Word offset inside the image the finding points at, when one exists.
    pub addr: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(
                f,
                "{}[{}] @{:#06x}: {}",
                self.severity, self.check, a, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.check, self.message),
        }
    }
}

/// The verifier's output: every finding from every pass, in pass order,
/// plus the resource certificate when the cost analysis ran and the
/// structural checks passed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, grouped by check in [`Check::ALL`] order.
    pub findings: Vec<Finding>,
    /// Resource certificate derived by the cost analysis (§9.1).
    /// `None` when the analysis was skipped (check deselected, image
    /// not executable, or structural errors made the graph unusable).
    pub cert: Option<udp_asm::ResourceCert>,
}

impl Report {
    /// Number of `Error`-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of `Warn`-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Number of `Lint`-severity (advisory) findings.
    pub fn lints(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Lint)
            .count()
    }

    /// True when no `Error`-severity finding exists (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Findings attributed to one check.
    pub fn by_check(&self, check: Check) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.check == check)
    }

    pub(crate) fn push(
        &mut self,
        check: Check,
        severity: Severity,
        addr: Option<u32>,
        message: String,
    ) {
        self.findings.push(Finding {
            check,
            severity,
            addr,
            message,
        });
    }

    pub(crate) fn error(&mut self, check: Check, addr: Option<u32>, message: String) {
        self.push(check, Severity::Error, addr, message);
    }

    pub(crate) fn warn(&mut self, check: Check, addr: Option<u32>, message: String) {
        self.push(check, Severity::Warn, addr, message);
    }

    pub(crate) fn lint(&mut self, check: Check, addr: Option<u32>, message: String) {
        self.push(check, Severity::Lint, addr, message);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() && self.cert.is_none() {
            return writeln!(f, "verify: clean");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        if let Some(cert) = &self.cert {
            writeln!(f, "cert: {}", cert.summary())?;
        }
        writeln!(
            f,
            "verify: {} error(s), {} warning(s), {} lint(s)",
            self.errors(),
            self.warnings(),
            self.lints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_display() {
        let mut r = Report::default();
        assert!(r.is_clean());
        assert_eq!(format!("{r}"), "verify: clean\n");
        r.warn(Check::UseBeforeDef, Some(0x10), "r5 read before def".into());
        r.error(Check::Layout, None, "duplicate base".into());
        r.lint(Check::Reachability, Some(0x20), "dead state".into());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.lints(), 1);
        assert!(!r.is_clean());
        let text = format!("{r}");
        assert!(text.contains("WARN[use-before-def] @0x0010: r5 read before def"));
        assert!(text.contains("ERROR[layout]: duplicate base"));
        assert!(text.contains("LINT[reachability] @0x0020: dead state"));
        assert!(text.contains("1 error(s), 1 warning(s), 1 lint(s)"));
    }

    #[test]
    fn severity_threshold_orders_lint_below_warn() {
        assert!(Severity::Lint < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn check_names_are_stable() {
        let names: Vec<&str> = Check::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "totality",
                "reachability",
                "livelock",
                "use-before-def",
                "addressing",
                "layout",
                "cost-unbounded"
            ]
        );
    }
}

//! Finding and report types shared by every check pass.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but possibly intentional; the image may still run.
    Warn,
    /// The image violates an invariant the engine relies on.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => f.write_str("WARN"),
            Severity::Error => f.write_str("ERROR"),
        }
    }
}

/// Which check pass produced a finding (DESIGN.md §9 catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// Decode totality and word-kind consistency.
    Totality,
    /// Dispatch-target bounds, dead states, unreachable code.
    Reachability,
    /// Cycles that can never consume stream bits.
    Livelock,
    /// Scalar-register use-before-def dataflow.
    UseBeforeDef,
    /// Memory-addressing legality against the lane window.
    Addressing,
    /// EffCLiP layout integrity (collisions, aliasing, attach bounds).
    Layout,
}

impl Check {
    /// Every check, in report order.
    pub const ALL: [Check; 6] = [
        Check::Totality,
        Check::Reachability,
        Check::Livelock,
        Check::UseBeforeDef,
        Check::Addressing,
        Check::Layout,
    ];

    /// Stable kebab-case name used in machine-readable summaries.
    pub fn name(self) -> &'static str {
        match self {
            Check::Totality => "totality",
            Check::Reachability => "reachability",
            Check::Livelock => "livelock",
            Check::UseBeforeDef => "use-before-def",
            Check::Addressing => "addressing",
            Check::Layout => "layout",
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic produced by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced this finding.
    pub check: Check,
    /// Severity class.
    pub severity: Severity,
    /// Word offset inside the image the finding points at, when one exists.
    pub addr: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(
                f,
                "{}[{}] @{:#06x}: {}",
                self.severity, self.check, a, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.check, self.message),
        }
    }
}

/// The verifier's output: every finding from every pass, in pass order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, grouped by check in [`Check::ALL`] order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Number of `Error`-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of `Warn`-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// True when no `Error`-severity finding exists (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Findings attributed to one check.
    pub fn by_check(&self, check: Check) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.check == check)
    }

    pub(crate) fn push(
        &mut self,
        check: Check,
        severity: Severity,
        addr: Option<u32>,
        message: String,
    ) {
        self.findings.push(Finding {
            check,
            severity,
            addr,
            message,
        });
    }

    pub(crate) fn error(&mut self, check: Check, addr: Option<u32>, message: String) {
        self.push(check, Severity::Error, addr, message);
    }

    pub(crate) fn warn(&mut self, check: Check, addr: Option<u32>, message: String) {
        self.push(check, Severity::Warn, addr, message);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "verify: clean");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        writeln!(
            f,
            "verify: {} error(s), {} warning(s)",
            self.errors(),
            self.warnings()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_display() {
        let mut r = Report::default();
        assert!(r.is_clean());
        assert_eq!(format!("{r}"), "verify: clean\n");
        r.warn(Check::UseBeforeDef, Some(0x10), "r5 read before def".into());
        r.error(Check::Layout, None, "duplicate base".into());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(!r.is_clean());
        let text = format!("{r}");
        assert!(text.contains("WARN[use-before-def] @0x0010: r5 read before def"));
        assert!(text.contains("ERROR[layout]: duplicate base"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn check_names_are_stable() {
        let names: Vec<&str> = Check::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "totality",
                "reachability",
                "livelock",
                "use-before-def",
                "addressing",
                "layout"
            ]
        );
    }
}

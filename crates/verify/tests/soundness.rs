//! Soundness suite: the verifier accepts every program the translator
//! corpus produces, and each check category fires on a dedicated
//! hand-broken image.

use udp_asm::{LayoutOptions, ProgramBuilder, ProgramImage, Target};
use udp_compilers::corpus::{assemble_smallest, corpus};
use udp_isa::action::{Action, Opcode};
use udp_isa::transition::{AttachMode, ExecKind, TransitionWord};
use udp_isa::{Reg, FALLBACK_SLOT};
use udp_verify::{verify_image, Check, ProgramGraph, Severity, VerifyOptions};

/// The soundness invariant: every corpus backend, swept over its
/// parameters, assembles to an image the verifier accepts with zero
/// errors.
#[test]
fn verifier_accepts_the_full_compiler_corpus() {
    let entries = corpus();
    assert!(entries.len() >= 20);
    for (name, pb) in &entries {
        let img = assemble_smallest(pb, 64).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = verify_image(&img, &VerifyOptions::default());
        assert!(
            report.errors() == 0,
            "{name} must verify clean, got:\n{report}"
        );
    }
}

fn sample() -> ProgramImage {
    let mut b = ProgramBuilder::new();
    let a = b.add_consuming_state();
    let z = b.add_consuming_state();
    b.set_entry(a);
    b.labeled_arc(
        a,
        b'x' as u16,
        Target::State(z),
        vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, 1)],
    );
    b.fallback_arc(a, Target::State(a), vec![]);
    b.labeled_arc(z, b'y' as u16, Target::State(a), vec![]);
    b.fallback_arc(z, Target::Halt, vec![]);
    b.assemble(&LayoutOptions::default()).unwrap()
}

fn errors_in(img: &ProgramImage, check: Check) -> usize {
    verify_image(img, &VerifyOptions::default())
        .findings
        .iter()
        .filter(|f| f.check == check && f.severity == Severity::Error)
        .count()
}

#[test]
fn totality_rejects_undecodable_action_words() {
    let mut img = sample();
    let g = ProgramGraph::decode(&img);
    let (addr, _) = g
        .arcs
        .iter()
        .find_map(|a| a.block.as_ref())
        .expect("sample has one block")
        .actions[0];
    img.words[addr as usize] = 0x7F << 25; // undefined opcode
    assert!(errors_in(&img, Check::Totality) > 0);
}

#[test]
fn totality_rejects_out_of_range_symbol_widths() {
    let mut b = ProgramBuilder::new();
    let s = b.add_consuming_state();
    b.set_entry(s);
    b.labeled_arc(
        s,
        b'a' as u16,
        Target::State(s),
        vec![Action::imm(Opcode::SetSym, Reg::R0, Reg::R0, 9)],
    );
    b.fallback_arc(s, Target::Halt, vec![]);
    let img = b.assemble(&LayoutOptions::default()).unwrap();
    assert!(errors_in(&img, Check::Totality) > 0);
}

#[test]
fn reachability_rejects_targets_that_are_not_states() {
    let mut img = sample();
    let g = ProgramGraph::decode(&img);
    // Repoint the entry state's fallback at a non-base address.
    let entry = g.base_index[&img.entry_base];
    let fb_addr = img.entry_base + FALLBACK_SLOT;
    let old = TransitionWord::decode(img.words[fb_addr as usize]);
    let bogus = (g.states[entry].base + 7) as u16 & 0xFFF;
    assert!(!img.state_bases.contains(&u32::from(bogus)));
    img.words[fb_addr as usize] =
        TransitionWord::new(old.signature(), bogus, old.kind(), AttachMode::Direct, 0).encode();
    assert!(errors_in(&img, Check::Reachability) > 0);
}

#[test]
fn reachability_warns_about_dead_states() {
    let mut b = ProgramBuilder::new();
    let live = b.add_consuming_state();
    let dead = b.add_consuming_state();
    b.set_entry(live);
    b.labeled_arc(live, b'a' as u16, Target::State(live), vec![]);
    b.fallback_arc(live, Target::Halt, vec![]);
    b.labeled_arc(dead, b'b' as u16, Target::State(dead), vec![]);
    b.fallback_arc(dead, Target::Halt, vec![]);
    let img = b.assemble(&LayoutOptions::default()).unwrap();
    let report = verify_image(&img, &VerifyOptions::default());
    assert_eq!(report.errors(), 0, "{report}");
    assert!(report
        .findings
        .iter()
        .any(|f| f.check == Check::Reachability && f.message.contains("unreachable")));
}

#[test]
fn livelock_rejects_forced_pass_cycles() {
    use udp_asm::Arc as IrArc;
    let mut b = ProgramBuilder::new();
    let p = b.add_pass_state(
        0,
        IrArc {
            target: Target::Halt, // patched below into a self-loop
            actions: vec![],
        },
    );
    let q = b.add_pass_state(
        0,
        IrArc {
            target: Target::State(p),
            actions: vec![],
        },
    );
    let entry = b.add_consuming_state();
    b.set_entry(entry);
    b.labeled_arc(entry, b'a' as u16, Target::State(q), vec![]);
    b.fallback_arc(entry, Target::Halt, vec![]);
    let mut img = b.assemble(&LayoutOptions::default()).unwrap();
    // Close the cycle by hand: p's pass slot now loops back to q. p is
    // the state whose slot-256 word carries the Halt kind.
    let p_base = img
        .state_bases
        .iter()
        .copied()
        .find(|&bse| {
            let w = img.words[(bse + FALLBACK_SLOT) as usize];
            bse != img.entry_base && w != 0 && TransitionWord::decode(w).kind() == ExecKind::Halt
        })
        .expect("p's pass slot halts");
    let q_base = img
        .state_bases
        .iter()
        .copied()
        .find(|&bse| bse != p_base && bse != img.entry_base)
        .expect("three states");
    let slot = (p_base + FALLBACK_SLOT) as usize;
    let old = TransitionWord::decode(img.words[slot]);
    img.words[slot] = TransitionWord::new(
        old.signature(),
        (q_base & 0xFFF) as u16,
        ExecKind::Pass,
        AttachMode::Direct,
        0,
    )
    .encode();
    let report = verify_image(&img, &VerifyOptions::default());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == Check::Livelock && f.severity == Severity::Error),
        "expected a livelock error:\n{report}"
    );
}

#[test]
fn use_before_def_warns_when_a_definition_misses_a_path() {
    // r4 is written on the 'w' path only, but read on every dispatch of
    // the downstream state — the 'n' path reaches the read undefined.
    let mut b = ProgramBuilder::new();
    let top = b.add_consuming_state();
    let reader = b.add_consuming_state();
    b.set_entry(top);
    b.labeled_arc(
        top,
        b'w' as u16,
        Target::State(reader),
        vec![Action::imm(Opcode::MovI, Reg::new(4), Reg::R0, 7)],
    );
    b.labeled_arc(top, b'n' as u16, Target::State(reader), vec![]);
    b.fallback_arc(top, Target::Halt, vec![]);
    b.labeled_arc(
        reader,
        b'r' as u16,
        Target::State(top),
        vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::new(4), 0)],
    );
    b.fallback_arc(reader, Target::Halt, vec![]);
    let img = b.assemble(&LayoutOptions::default()).unwrap();
    let report = verify_image(&img, &VerifyOptions::default());
    assert_eq!(report.errors(), 0, "{report}");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == Check::UseBeforeDef && f.message.contains("r4")),
        "expected a use-before-def warning for r4:\n{report}"
    );
}

#[test]
fn use_before_def_stays_silent_for_architectural_zeros() {
    // Reading a register the program never assigns is idiomatic (all
    // registers power on as zero) and must not warn.
    let mut b = ProgramBuilder::new();
    let s = b.add_consuming_state();
    b.set_entry(s);
    b.labeled_arc(
        s,
        b'a' as u16,
        Target::State(s),
        vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), 0)],
    );
    b.fallback_arc(s, Target::Halt, vec![]);
    let img = b.assemble(&LayoutOptions::default()).unwrap();
    let report = verify_image(&img, &VerifyOptions::default());
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.check == Check::UseBeforeDef),
        "architectural zero reads must stay silent:\n{report}"
    );
}

#[test]
fn addressing_rejects_wbase_off_the_entry_segment() {
    let mut img = sample();
    img.init.wbase = img.entry_base & !0xFFF ^ 0x1000;
    assert!(errors_in(&img, Check::Addressing) > 0);
}

#[test]
fn addressing_rejects_images_larger_than_the_window() {
    let img = sample();
    let opts = VerifyOptions {
        addressing: udp_isa::AddressingMode::Local,
        ..VerifyOptions::default()
    };
    let mut big = img.clone();
    big.words.resize(5000, 0);
    let report = verify_image(&big, &opts);
    assert!(report
        .findings
        .iter()
        .any(|f| f.check == Check::Addressing && f.severity == Severity::Error));
}

#[test]
fn layout_rejects_duplicate_state_bases() {
    let mut img = sample();
    let dup = img.state_bases[0];
    img.state_bases.push(dup);
    assert!(errors_in(&img, Check::Layout) > 0);
}

#[test]
fn layout_rejects_word_collisions() {
    // Fabricate a dispatching state one word above the entry: the
    // entry's 0xFF-signature fallback word then doubles as that state's
    // labeled arc for symbol 255 — the EffCLiP alias hazard the packer
    // is hardened against.
    let mut img = sample();
    let fake = img.entry_base + 1;
    let fb = TransitionWord::decode(img.words[(img.entry_base + FALLBACK_SLOT) as usize]);
    assert_eq!(fb.signature(), 0xFF, "entry fallback word");
    img.state_bases.push(fake);
    // Make the fake state symbol-entered: repoint the entry's labeled
    // 'x' arc (Consume kind) at it.
    let x_addr = (img.entry_base + u32::from(b'x')) as usize;
    let old = TransitionWord::decode(img.words[x_addr]);
    img.words[x_addr] = TransitionWord::new(
        old.signature(),
        (fake & 0xFFF) as u16,
        old.kind(),
        old.attach_mode(),
        old.attach(),
    )
    .encode();
    let report = verify_image(&img, &VerifyOptions::default());
    assert!(
        report.findings.iter().any(|f| f.check == Check::Layout
            && f.severity == Severity::Error
            && f.message.contains("claimed twice")),
        "expected a layout collision error:\n{report}"
    );
}

//! Pinned resource-certificate snapshot for the full compiler corpus
//! (DESIGN.md §9.1).
//!
//! Every corpus program's certificate summary is pinned verbatim. A
//! diff here is not necessarily a bug — tightening the cost model
//! legitimately shrinks ratios — but it must be *seen*: a silently
//! loosened bound weakens every budget, admission decision, and
//! deadline clamp derived from it downstream. Update the table
//! deliberately, with the `verify` bench output as the source.

use udp_compilers::corpus::{assemble_smallest, corpus};
use udp_verify::{verify_image, VerifyOptions};

/// `(program, pinned certificate summary)` for all corpus entries.
/// `unbounded` programs must still explain themselves: the blocker
/// count at the end of the summary is part of the pin.
const PINNED: &[(&str, &str)] = &[
    (
        "csv",
        "cycles/byte<=10 (+28), out-bytes/byte<=5 (+136), loop-nest<=1, span-blocks=5, bitemit-blocks=0",
    ),
    (
        "csv-semicolon",
        "cycles/byte<=10 (+28), out-bytes/byte<=5 (+136), loop-nest<=1, span-blocks=5, bitemit-blocks=0",
    ),
    (
        "json",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=unbounded (+0), loop-nest<=1, span-blocks=0, bitemit-blocks=9, 18 blocker(s)",
    ),
    (
        "xml",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=unbounded (+0), loop-nest<=1, span-blocks=0, bitemit-blocks=2, 4 blocker(s)",
    ),
    (
        "rle-decode",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=unbounded (+0), loop-nest<=1, span-blocks=0, bitemit-blocks=0, 4 blocker(s)",
    ),
    (
        "bitpack-enc-w1",
        "cycles/byte<=2 (+5), out-bytes/byte<=2 (+6), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "bitpack-dec-w1",
        "cycles/byte<=16 (+5), out-bytes/byte<=8 (+5), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "bitpack-enc-w4",
        "cycles/byte<=2 (+5), out-bytes/byte<=2 (+6), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "bitpack-dec-w4",
        "cycles/byte<=4 (+5), out-bytes/byte<=2 (+5), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "bitpack-enc-w8",
        "cycles/byte<=2 (+5), out-bytes/byte<=2 (+6), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "bitpack-dec-w8",
        "cycles/byte<=2 (+5), out-bytes/byte<=1 (+5), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "dict-k4",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=4 (+8), loop-nest<=1, span-blocks=0, bitemit-blocks=0, 2 blocker(s)",
    ),
    (
        "dict-k8",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=4 (+8), loop-nest<=1, span-blocks=0, bitemit-blocks=0, 2 blocker(s)",
    ),
    (
        "dict-k11",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=4 (+8), loop-nest<=1, span-blocks=0, bitemit-blocks=0, 2 blocker(s)",
    ),
    (
        "dict-rle-k8",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=8 (+12), loop-nest<=1, span-blocks=0, bitemit-blocks=0, 2 blocker(s)",
    ),
    (
        "snappy-comp",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=unbounded (+0), loop-nest<=1, span-blocks=0, bitemit-blocks=0, 6 blocker(s)",
    ),
    (
        "snappy-decomp",
        "cycles/byte<=unbounded (+0), out-bytes/byte<=unbounded (+0), loop-nest<=1, span-blocks=0, bitemit-blocks=0, 2 blocker(s)",
    ),
    (
        "huffman-encode",
        "cycles/byte<=3 (+6), out-bytes/byte<=2 (+6), loop-nest<=0, span-blocks=0, bitemit-blocks=27",
    ),
    (
        "huffman-decode-sst",
        "cycles/byte<=16 (+5), out-bytes/byte<=8 (+5), loop-nest<=0, span-blocks=0, bitemit-blocks=7",
    ),
    (
        "huffman-decode-ssreg",
        "cycles/byte<=20 (+6), out-bytes/byte<=8 (+5), loop-nest<=0, span-blocks=0, bitemit-blocks=7",
    ),
    (
        "huffman-decode-ssref",
        "cycles/byte<=12 (+14), out-bytes/byte<=4 (+8), loop-nest<=0, span-blocks=0, bitemit-blocks=27",
    ),
    (
        "huffman-decode-ssf",
        "cycles/byte<=5 (+8), out-bytes/byte<=4 (+8), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "histogram-u4",
        "cycles/byte<=3 (+15), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "histogram-u10",
        "cycles/byte<=3 (+15), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "adfa",
        "cycles/byte<=4 (+7), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "dfa",
        "cycles/byte<=2 (+5), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "dfa-full",
        "cycles/byte<=2 (+5), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "d2fa",
        "cycles/byte<=7 (+10), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "nfa",
        "cycles/byte<=0 (+8), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "counted",
        "cycles/byte<=3 (+6), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
    (
        "trigger-p3",
        "cycles/byte<=2 (+5), out-bytes/byte<=0 (+4), loop-nest<=0, span-blocks=0, bitemit-blocks=0",
    ),
];

#[test]
fn corpus_certificates_match_pinned_snapshot() {
    let entries = corpus();
    assert_eq!(
        entries.len(),
        PINNED.len(),
        "corpus grew or shrank; extend the snapshot table"
    );
    let mut mismatches = Vec::new();
    for (name, pb) in &entries {
        let img = assemble_smallest(pb, 64).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = verify_image(&img, &VerifyOptions::default());
        let got = report
            .cert
            .as_ref()
            .map_or_else(|| "none".to_string(), udp_asm::ResourceCert::summary);
        match PINNED.iter().find(|(n, _)| n == name) {
            None => mismatches.push(format!("{name}: not in snapshot (got \"{got}\")")),
            Some((_, want)) if got != *want => {
                mismatches.push(format!("{name}:\n  want \"{want}\"\n  got  \"{got}\""));
            }
            Some(_) => {}
        }
    }
    assert!(
        mismatches.is_empty(),
        "certificate snapshot drifted — update deliberately:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn every_corpus_program_is_certified_or_carries_blockers() {
    for (name, pb) in &corpus() {
        let img = assemble_smallest(pb, 64).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = verify_image(&img, &VerifyOptions::default());
        let cert = report
            .cert
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: no certificate pass ran"));
        if !cert.is_complete() {
            assert!(
                !cert.unbounded.is_empty(),
                "{name}: incomplete certificate with no blockers to explain it"
            );
        }
    }
}

//! # udp-etl — the Figure 1 ingest pipeline
//!
//! The paper motivates the UDP with the cost of loading Gzip-compressed
//! TPC-H CSV into PostgreSQL: ">99.5% of wall-clock loading time is
//! spent on CPU tasks, rather than disk IO" (Figure 1). This crate
//! reproduces that experiment end-to-end:
//!
//! * a typed [`store::ColumnStore`] standing in for the database heap;
//! * per-stage deserializers ([`deserialize`]) — integers, decimals,
//!   dates, validated domains;
//! * the staged [`pipeline`]: modeled SSD IO → decompress → parse →
//!   tokenize/deserialize → columnar load, each stage wall-clocked, plus
//!   a UDP-offload model that replaces the decompress/parse/deserialize
//!   stages with measured UDP rates.
//!
//! Substitution (DESIGN.md §4): the paper used Gzip; we use our Snappy
//! codec for the decompress stage. Against the same 500 MB/s SSD model
//! the load remains thoroughly CPU-bound, which is the figure's point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-free degradation discipline (DESIGN.md §8): the pipeline
// ingests external bytes, so damage must degrade per record (or come
// back as a typed error), never panic the host. `run_cpu_etl` keeps
// its documented panic contract as a wrapper for trusted inputs.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod deserialize;
pub mod pipeline;
pub mod store;

pub use pipeline::{
    run_cpu_etl, run_cpu_etl_recovering, udp_offload_model, EtlError, EtlReport, OffloadRates,
    SSD_MBPS,
};
pub use store::{Column, ColumnStore};

//! Field deserialization and domain validation — the "costly follow-on
//! processing (deserialization and validation) which often dominates
//! execution time" (§7).

use std::fmt;

/// Deserialization failure with field context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeserializeFieldError {
    /// Column index.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DeserializeFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "column {}: {}", self.column, self.message)
    }
}

impl std::error::Error for DeserializeFieldError {}

fn err(column: usize, message: impl Into<String>) -> DeserializeFieldError {
    DeserializeFieldError {
        column,
        message: message.into(),
    }
}

/// Parses an `i64` without intermediate allocation.
pub fn parse_i64(field: &[u8], column: usize) -> Result<i64, DeserializeFieldError> {
    if field.is_empty() {
        return Err(err(column, "empty integer"));
    }
    let (neg, digits) = match field[0] {
        b'-' => (true, &field[1..]),
        b'+' => (false, &field[1..]),
        _ => (false, field),
    };
    if digits.is_empty() {
        return Err(err(column, "sign without digits"));
    }
    let mut v: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(err(column, format!("non-digit {:?}", b as char)));
        }
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add(i64::from(b - b'0')))
            .ok_or_else(|| err(column, "integer overflow"))?;
    }
    Ok(if neg { -v } else { v })
}

/// Parses a fixed-point decimal into `f64`.
pub fn parse_decimal(field: &[u8], column: usize) -> Result<f64, DeserializeFieldError> {
    let s = std::str::from_utf8(field).map_err(|_| err(column, "non-UTF8 decimal"))?;
    s.parse::<f64>()
        .map_err(|e| err(column, format!("bad decimal: {e}")))
        .and_then(|v| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(err(column, "non-finite decimal"))
            }
        })
}

/// Days in each month (non-leap).
const MDAYS: [u16; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Parses and validates `YYYY-MM-DD`, returning days since 1970-01-01.
pub fn parse_date(field: &[u8], column: usize) -> Result<i32, DeserializeFieldError> {
    if field.len() != 10 || field[4] != b'-' || field[7] != b'-' {
        return Err(err(column, "date must be YYYY-MM-DD"));
    }
    let y = parse_i64(&field[0..4], column)?;
    let m = parse_i64(&field[5..7], column)?;
    let d = parse_i64(&field[8..10], column)?;
    if !(1..=12).contains(&m) {
        return Err(err(column, format!("month {m} out of range")));
    }
    let dim = i64::from(MDAYS[(m - 1) as usize]) + i64::from(m == 2 && is_leap(y));
    if !(1..=dim).contains(&d) {
        return Err(err(column, format!("day {d} out of range")));
    }
    // Days from civil date (Howard Hinnant's algorithm).
    let y2 = y - i64::from(m <= 2);
    let era = if y2 >= 0 { y2 } else { y2 - 399 } / 400;
    let yoe = y2 - era * 400;
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Ok((era * 146_097 + doe - 719_468) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers() {
        assert_eq!(parse_i64(b"12345", 0).unwrap(), 12345);
        assert_eq!(parse_i64(b"-7", 0).unwrap(), -7);
        assert!(parse_i64(b"", 0).is_err());
        assert!(parse_i64(b"12a", 0).is_err());
        assert!(parse_i64(b"99999999999999999999", 0).is_err());
    }

    #[test]
    fn decimals() {
        assert!((parse_decimal(b"3.25", 1).unwrap() - 3.25).abs() < 1e-12);
        assert!(parse_decimal(b"x", 1).is_err());
        assert!(parse_decimal(b"inf", 1).is_err());
    }

    #[test]
    fn dates() {
        assert_eq!(parse_date(b"1970-01-01", 2).unwrap(), 0);
        assert_eq!(parse_date(b"1970-01-02", 2).unwrap(), 1);
        assert_eq!(parse_date(b"1969-12-31", 2).unwrap(), -1);
        assert_eq!(parse_date(b"2000-03-01", 2).unwrap(), 11017);
        assert!(parse_date(b"1996-02-29", 2).is_ok(), "leap year");
        assert!(parse_date(b"1997-02-29", 2).is_err());
        assert!(parse_date(b"1997-13-01", 2).is_err());
        assert!(parse_date(b"1997-00-10", 2).is_err());
        assert!(parse_date(b"97-1-1", 2).is_err());
    }

    #[test]
    fn errors_carry_column() {
        let e = parse_i64(b"x", 7).unwrap_err();
        assert_eq!(e.column, 7);
        assert!(!e.to_string().is_empty());
    }
}

//! A minimal typed columnar store (the load target).

use udp_codecs::DictionaryEncoder;

/// One typed column.
#[derive(Debug)]
pub enum Column {
    /// 64-bit integers.
    I64(Vec<i64>),
    /// Decimals as f64.
    F64(Vec<f64>),
    /// Dates as days since 1970-01-01.
    Date(Vec<i32>),
    /// Dictionary-encoded strings.
    Str {
        /// Interned dictionary.
        dict: DictionaryEncoder,
        /// Per-row codes.
        codes: Vec<u32>,
    },
}

impl Column {
    /// Row count.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Declared column types for a table schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Parses as `i64`.
    I64,
    /// Parses as decimal `f64`.
    F64,
    /// Parses as `YYYY-MM-DD`.
    Date,
    /// Kept as a dictionary-encoded string.
    Str,
}

/// A loaded table.
#[derive(Debug)]
pub struct ColumnStore {
    /// Columns in schema order.
    pub columns: Vec<Column>,
    /// Rows loaded.
    pub rows: usize,
}

impl ColumnStore {
    /// An empty store for a schema.
    pub fn new(schema: &[ColumnType]) -> ColumnStore {
        ColumnStore {
            columns: schema
                .iter()
                .map(|t| match t {
                    ColumnType::I64 => Column::I64(Vec::new()),
                    ColumnType::F64 => Column::F64(Vec::new()),
                    ColumnType::Date => Column::Date(Vec::new()),
                    ColumnType::Str => Column::Str {
                        dict: DictionaryEncoder::default(),
                        codes: Vec::new(),
                    },
                })
                .collect(),
            rows: 0,
        }
    }
}

/// The TPC-H lineitem schema (17 columns including the trailing empty
/// field produced by the `|`-terminated format).
pub fn lineitem_schema() -> Vec<ColumnType> {
    use ColumnType::*;
    vec![
        I64, I64, I64, I64, I64, // orderkey..quantity
        F64, F64, F64, // extendedprice, discount, tax
        Str, Str, // returnflag, linestatus
        Date, Date, Date, // ship/commit/receipt
        Str, Str, Str, // shipinstruct, shipmode, comment
        Str, // trailing empty
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_has_schema_arity() {
        let s = ColumnStore::new(&lineitem_schema());
        assert_eq!(s.columns.len(), 17);
        assert!(s.columns.iter().all(|c| c.is_empty()));
    }
}

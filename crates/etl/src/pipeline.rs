//! The staged ingest pipeline and its timing breakdown (Figure 1).

use crate::deserialize::{parse_date, parse_decimal, parse_i64};
use crate::store::{lineitem_schema, Column, ColumnStore, ColumnType};
use std::fmt;
use std::time::Instant;
use udp_codecs::{snappy_decompress, CsvEvent, CsvParser, SnappyError};

/// Modeled SSD sequential-read bandwidth (a 2017 SATA3 SSD, ~500 MB/s —
/// the paper used a 250 GB SATA3 SSD).
pub const SSD_MBPS: f64 = 500.0;

/// A stream-level ingest failure: nothing row-shaped could be
/// recovered from the input. Row-level damage is not an error — the
/// recovering pipeline skips such rows and counts them in
/// [`EtlReport::rows_rejected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EtlError {
    /// The compressed stream would not decode.
    Decompress(SnappyError),
}

impl fmt::Display for EtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtlError::Decompress(e) => write!(f, "decompress: {e}"),
        }
    }
}

impl std::error::Error for EtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EtlError::Decompress(e) => Some(e),
        }
    }
}

impl From<SnappyError> for EtlError {
    fn from(e: SnappyError) -> Self {
        EtlError::Decompress(e)
    }
}

/// Per-stage wall-clock breakdown of one load.
#[derive(Debug, Clone, Default)]
pub struct EtlReport {
    /// Compressed bytes read (drives the IO model).
    pub compressed_bytes: usize,
    /// Raw CSV bytes after decompression.
    pub raw_bytes: usize,
    /// Rows loaded.
    pub rows: usize,
    /// Malformed rows skipped by the recovering pipeline (wrong arity,
    /// unparseable field). Always zero for clean generator output.
    pub rows_rejected: usize,
    /// Modeled IO seconds (`compressed_bytes / SSD_MBPS`).
    pub io_model_s: f64,
    /// Measured decompression seconds.
    pub decompress_s: f64,
    /// Measured parse/tokenize seconds.
    pub parse_s: f64,
    /// Measured deserialize/validate seconds.
    pub deserialize_s: f64,
    /// Measured columnar-append seconds.
    pub load_s: f64,
}

impl EtlReport {
    /// Total CPU seconds.
    pub fn cpu_s(&self) -> f64 {
        self.decompress_s + self.parse_s + self.deserialize_s + self.load_s
    }

    /// Fraction of wall time spent on CPU work (Figure 1b: >99.5% in
    /// the paper's setup).
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.cpu_s() + self.io_model_s;
        if total == 0.0 {
            return 0.0;
        }
        self.cpu_s() / total
    }
}

/// Loads Snappy-compressed `|`-delimited lineitem CSV into a column
/// store, timing each stage (the CPU-only pipeline of Figure 1a).
///
/// Thin wrapper over [`run_cpu_etl_recovering`] for trusted inputs
/// (generator output, benches).
///
/// # Panics
///
/// Panics on malformed input — a broken compressed stream or any
/// rejected row. Dirty feeds go through [`run_cpu_etl_recovering`],
/// which skips damaged rows and reports them instead.
pub fn run_cpu_etl(compressed: &[u8]) -> (ColumnStore, EtlReport) {
    match run_cpu_etl_recovering(compressed) {
        Ok((store, report)) => {
            assert_eq!(
                report.rows_rejected, 0,
                "{} malformed rows in trusted input",
                report.rows_rejected
            );
            (store, report)
        }
        Err(e) => panic!("ETL ingest failed: {e}"),
    }
}

/// One deserialized field value; `S` indexes the raw field buffer so
/// strings are only interned for rows that survive validation.
enum Typed {
    I(i64),
    F(f64),
    D(i32),
    S(usize),
}

/// The recovering form of [`run_cpu_etl`]: per-record degradation for
/// dirty feeds (the translators of the paper's §7 must tolerate
/// damaged TPC-H-like input without dropping the whole load).
///
/// A stream-level failure — the Snappy envelope will not decode —
/// returns a typed [`EtlError`]. Row-level damage degrades per record:
/// a row with the wrong arity or an unparseable field is skipped, the
/// parser resynchronizes at the next record delimiter (the CSV FSM
/// already frames records independently of their content), and the
/// skip is counted in [`EtlReport::rows_rejected`]. All well-formed
/// rows load normally; no input bytes can panic this path.
///
/// # Errors
///
/// Returns [`EtlError::Decompress`] when the compressed envelope is
/// unreadable (truncated/corrupt Snappy stream).
pub fn run_cpu_etl_recovering(compressed: &[u8]) -> Result<(ColumnStore, EtlReport), EtlError> {
    let mut report = EtlReport {
        compressed_bytes: compressed.len(),
        io_model_s: compressed.len() as f64 / (SSD_MBPS * 1e6),
        ..Default::default()
    };

    // Stage 1: decompress.
    let t = Instant::now();
    let raw = snappy_decompress(compressed)?;
    report.decompress_s = t.elapsed().as_secs_f64();
    report.raw_bytes = raw.len();

    // Stage 2: parse / tokenize. The FSM frames records regardless of
    // their content, so a damaged row never desynchronizes its
    // neighbors — recovery below is strictly per record.
    let t = Instant::now();
    let mut fields: Vec<Vec<u8>> = Vec::new();
    let mut row_bounds: Vec<usize> = Vec::new();
    CsvParser::new()
        .with_delimiter(b'|')
        .parse_events(&raw, |e| match e {
            CsvEvent::Field(f) => fields.push(f),
            CsvEvent::EndRecord => row_bounds.push(fields.len()),
        });
    report.parse_s = t.elapsed().as_secs_f64();

    // Stage 3: deserialize + validate, transactionally per row: a row
    // contributes to `typed` only if every field deserializes, so a
    // mid-row failure cannot leave a column torn.
    let schema = lineitem_schema();
    let t = Instant::now();
    let mut typed: Vec<Typed> = Vec::with_capacity(fields.len());
    let mut rows_ok = 0usize;
    let mut start = 0usize;
    for &end in &row_bounds {
        let row = &fields[start..end];
        match deserialize_row(row, &schema, start) {
            Some(row_typed) => {
                typed.extend(row_typed);
                rows_ok += 1;
            }
            None => report.rows_rejected += 1,
        }
        start = end;
    }
    report.deserialize_s = t.elapsed().as_secs_f64();

    // Stage 4: columnar load.
    let t = Instant::now();
    let mut store = ColumnStore::new(&schema);
    let arity = schema.len();
    for (i, v) in typed.iter().enumerate() {
        match (v, &mut store.columns[i % arity]) {
            (Typed::I(x), Column::I64(col)) => col.push(*x),
            (Typed::F(x), Column::F64(col)) => col.push(*x),
            (Typed::D(x), Column::Date(col)) => col.push(*x),
            (Typed::S(idx), Column::Str { dict, codes }) => {
                codes.push(dict.encode_value(&fields[*idx]));
            }
            _ => unreachable!("schema/typed mismatch"),
        }
    }
    store.rows = rows_ok;
    report.rows = store.rows;
    report.load_s = t.elapsed().as_secs_f64();
    Ok((store, report))
}

/// Deserializes one record against `schema`; `None` rejects the whole
/// row (arity mismatch or any field failure).
fn deserialize_row(row: &[Vec<u8>], schema: &[ColumnType], start: usize) -> Option<Vec<Typed>> {
    if row.len() != schema.len() {
        return None;
    }
    let mut out = Vec::with_capacity(schema.len());
    for (c, field) in row.iter().enumerate() {
        let v = match schema[c] {
            ColumnType::I64 => Typed::I(parse_i64(field, c).ok()?),
            ColumnType::F64 => Typed::F(parse_decimal(field, c).ok()?),
            ColumnType::Date => Typed::D(parse_date(field, c).ok()?),
            ColumnType::Str => Typed::S(start + c),
        };
        out.push(v);
    }
    Some(out)
}

/// Measured UDP rates used by the offload model (MB/s).
#[derive(Debug, Clone, Copy)]
pub struct OffloadRates {
    /// UDP Snappy decompression throughput.
    pub decompress_mbps: f64,
    /// UDP CSV parse throughput.
    pub parse_mbps: f64,
}

/// Models the UDP-offloaded load: decompression and parse/tokenize move
/// to the accelerator at its measured throughputs (overlapped with IO),
/// leaving deserialize+load on the CPU. Returns the modeled wall
/// seconds `(cpu_only, udp_offloaded)`.
pub fn udp_offload_model(report: &EtlReport, rates: OffloadRates) -> (f64, f64) {
    let cpu_only = report.cpu_s() + report.io_model_s;
    let udp_decompress = report.raw_bytes as f64 / (rates.decompress_mbps * 1e6);
    let udp_parse = report.raw_bytes as f64 / (rates.parse_mbps * 1e6);
    let offloaded =
        report.io_model_s + udp_decompress + udp_parse + report.deserialize_s + report.load_s;
    (cpu_only, offloaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_codecs::snappy_compress;

    fn compressed_lineitem(bytes: usize) -> Vec<u8> {
        snappy_compress(&udp_workloads::lineitem_csv(bytes, 42))
    }

    #[test]
    fn pipeline_loads_rows() {
        let (store, rep) = run_cpu_etl(&compressed_lineitem(120_000));
        assert!(store.rows > 100);
        assert_eq!(store.columns.len(), 17);
        assert!(store.columns.iter().all(|c| c.len() == store.rows));
        assert!(rep.raw_bytes >= 120_000);
        assert!(rep.rows == store.rows);
    }

    #[test]
    fn load_is_cpu_bound_like_figure_1b() {
        let (_, rep) = run_cpu_etl(&compressed_lineitem(400_000));
        assert!(
            rep.cpu_fraction() > 0.9,
            "CPU fraction = {}",
            rep.cpu_fraction()
        );
    }

    #[test]
    fn offload_model_shrinks_wall_time() {
        let (_, rep) = run_cpu_etl(&compressed_lineitem(200_000));
        let (cpu_only, offloaded) = udp_offload_model(
            &rep,
            OffloadRates {
                decompress_mbps: 500.0,
                parse_mbps: 200.0,
            },
        );
        assert!(offloaded < cpu_only);
    }

    #[test]
    fn malformed_row_is_rejected_and_counted() {
        // Take clean generated lineitem CSV and replace one row's
        // quantity field (index 4, I64) with garbage. The recovering
        // path must reject exactly that row, resync at the next record
        // delimiter, and load every other row.
        let raw = udp_workloads::lineitem_csv(60_000, 11);
        let mut rows: Vec<&[u8]> = raw
            .split(|&b| b == b'\n')
            .filter(|r| !r.is_empty())
            .collect();
        let victim = rows.len() / 2;
        let mut bad_fields: Vec<Vec<u8>> = rows[victim]
            .split(|&b| b == b'|')
            .map(<[u8]>::to_vec)
            .collect();
        bad_fields[4] = b"NOT_A_NUMBER".to_vec();
        let bad_row = bad_fields.join(&b'|');
        rows[victim] = &bad_row;
        let dirty = rows.join(&b'\n');
        let (store, rep) =
            run_cpu_etl_recovering(&snappy_compress(&dirty)).expect("stream is intact");
        assert_eq!(rep.rows_rejected, 1);
        assert_eq!(store.rows, rows.len() - 1);
        assert!(store.columns.iter().all(|c| c.len() == store.rows));
    }

    #[test]
    fn wrong_arity_row_is_rejected() {
        let raw = udp_workloads::lineitem_csv(30_000, 5);
        let mut dirty = b"just|three|fields\n".to_vec();
        dirty.extend_from_slice(&raw);
        let (store, rep) = run_cpu_etl_recovering(&snappy_compress(&dirty)).unwrap();
        assert_eq!(rep.rows_rejected, 1);
        assert!(store.rows > 0);
    }

    #[test]
    fn corrupt_stream_is_a_typed_error() {
        let mut c = compressed_lineitem(20_000);
        c.truncate(c.len() / 2);
        match run_cpu_etl_recovering(&c) {
            Err(EtlError::Decompress(_)) => {}
            // A truncation can also land on an element boundary and
            // decode to a short stream whose rows simply reject.
            Ok((_, rep)) => assert!(rep.rows_rejected > 0 || rep.raw_bytes < 20_000),
        }
    }

    #[test]
    #[should_panic(expected = "malformed rows")]
    fn trusted_wrapper_panics_on_dirty_rows() {
        let dirty = b"not|a|lineitem|row\n".to_vec();
        let _ = run_cpu_etl(&snappy_compress(&dirty));
    }

    #[test]
    fn etl_error_composes_as_box_dyn_error_with_source() {
        fn load(bytes: &[u8]) -> Result<(), Box<dyn std::error::Error>> {
            run_cpu_etl_recovering(bytes)?;
            Ok(())
        }
        let e = load(b"\xFF\xFF\xFF garbage").unwrap_err();
        assert!(e.to_string().starts_with("decompress:"));
        // The chain bottoms out at the SnappyError that caused it.
        let source = std::error::Error::source(e.as_ref()).expect("source is the codec error");
        assert!(source.downcast_ref::<SnappyError>().is_some());
    }

    #[test]
    fn typed_columns_round_trip_values() {
        let raw = udp_workloads::lineitem_csv(50_000, 7);
        let (store, _) = run_cpu_etl(&snappy_compress(&raw));
        // Quantity column (index 4) is 1..=50 by construction.
        let Column::I64(qty) = &store.columns[4] else {
            panic!("quantity should be I64")
        };
        assert!(qty.iter().all(|&q| (1..=50).contains(&q)));
        // Ship date (index 10) is in the 1990s.
        let Column::Date(dates) = &store.columns[10] else {
            panic!("shipdate should be Date")
        };
        let d1992 = 22 * 365;
        let d2000 = 30 * 366;
        assert!(dates.iter().all(|&d| d > d1992 && d < d2000));
    }
}

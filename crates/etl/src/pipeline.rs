//! The staged ingest pipeline and its timing breakdown (Figure 1).

use crate::deserialize::{parse_date, parse_decimal, parse_i64};
use crate::store::{lineitem_schema, Column, ColumnStore, ColumnType};
use std::time::Instant;
use udp_codecs::{snappy_decompress, CsvEvent, CsvParser};

/// Modeled SSD sequential-read bandwidth (a 2017 SATA3 SSD, ~500 MB/s —
/// the paper used a 250 GB SATA3 SSD).
pub const SSD_MBPS: f64 = 500.0;

/// Per-stage wall-clock breakdown of one load.
#[derive(Debug, Clone, Default)]
pub struct EtlReport {
    /// Compressed bytes read (drives the IO model).
    pub compressed_bytes: usize,
    /// Raw CSV bytes after decompression.
    pub raw_bytes: usize,
    /// Rows loaded.
    pub rows: usize,
    /// Modeled IO seconds (`compressed_bytes / SSD_MBPS`).
    pub io_model_s: f64,
    /// Measured decompression seconds.
    pub decompress_s: f64,
    /// Measured parse/tokenize seconds.
    pub parse_s: f64,
    /// Measured deserialize/validate seconds.
    pub deserialize_s: f64,
    /// Measured columnar-append seconds.
    pub load_s: f64,
}

impl EtlReport {
    /// Total CPU seconds.
    pub fn cpu_s(&self) -> f64 {
        self.decompress_s + self.parse_s + self.deserialize_s + self.load_s
    }

    /// Fraction of wall time spent on CPU work (Figure 1b: >99.5% in
    /// the paper's setup).
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.cpu_s() + self.io_model_s;
        if total == 0.0 {
            return 0.0;
        }
        self.cpu_s() / total
    }
}

/// Loads Snappy-compressed `|`-delimited lineitem CSV into a column
/// store, timing each stage (the CPU-only pipeline of Figure 1a).
///
/// # Panics
///
/// Panics on malformed input — ingest of generator output never fails.
pub fn run_cpu_etl(compressed: &[u8]) -> (ColumnStore, EtlReport) {
    let mut report = EtlReport {
        compressed_bytes: compressed.len(),
        io_model_s: compressed.len() as f64 / (SSD_MBPS * 1e6),
        ..Default::default()
    };

    // Stage 1: decompress.
    let t = Instant::now();
    let raw = snappy_decompress(compressed).expect("valid snappy stream");
    report.decompress_s = t.elapsed().as_secs_f64();
    report.raw_bytes = raw.len();

    // Stage 2: parse / tokenize.
    let t = Instant::now();
    let mut fields: Vec<Vec<u8>> = Vec::new();
    let mut row_bounds: Vec<usize> = Vec::new();
    CsvParser::new()
        .with_delimiter(b'|')
        .parse_events(&raw, |e| match e {
            CsvEvent::Field(f) => fields.push(f),
            CsvEvent::EndRecord => row_bounds.push(fields.len()),
        });
    report.parse_s = t.elapsed().as_secs_f64();

    // Stage 3: deserialize + validate.
    let schema = lineitem_schema();
    let t = Instant::now();
    enum Typed {
        I(i64),
        F(f64),
        D(i32),
        S(usize), // index into `fields`
    }
    let mut typed: Vec<Typed> = Vec::with_capacity(fields.len());
    let mut start = 0usize;
    for &end in &row_bounds {
        let row = &fields[start..end];
        assert_eq!(row.len(), schema.len(), "row arity {}", row.len());
        for (c, field) in row.iter().enumerate() {
            let v = match schema[c] {
                ColumnType::I64 => Typed::I(parse_i64(field, c).expect("int")),
                ColumnType::F64 => Typed::F(parse_decimal(field, c).expect("decimal")),
                ColumnType::Date => Typed::D(parse_date(field, c).expect("date")),
                ColumnType::Str => Typed::S(start + c),
            };
            typed.push(v);
        }
        start = end;
    }
    report.deserialize_s = t.elapsed().as_secs_f64();

    // Stage 4: columnar load.
    let t = Instant::now();
    let mut store = ColumnStore::new(&schema);
    let arity = schema.len();
    for (i, v) in typed.iter().enumerate() {
        match (v, &mut store.columns[i % arity]) {
            (Typed::I(x), Column::I64(col)) => col.push(*x),
            (Typed::F(x), Column::F64(col)) => col.push(*x),
            (Typed::D(x), Column::Date(col)) => col.push(*x),
            (Typed::S(idx), Column::Str { dict, codes }) => {
                codes.push(dict.encode_value(&fields[*idx]));
            }
            _ => unreachable!("schema/typed mismatch"),
        }
    }
    store.rows = row_bounds.len();
    report.rows = store.rows;
    report.load_s = t.elapsed().as_secs_f64();
    (store, report)
}

/// Measured UDP rates used by the offload model (MB/s).
#[derive(Debug, Clone, Copy)]
pub struct OffloadRates {
    /// UDP Snappy decompression throughput.
    pub decompress_mbps: f64,
    /// UDP CSV parse throughput.
    pub parse_mbps: f64,
}

/// Models the UDP-offloaded load: decompression and parse/tokenize move
/// to the accelerator at its measured throughputs (overlapped with IO),
/// leaving deserialize+load on the CPU. Returns the modeled wall
/// seconds `(cpu_only, udp_offloaded)`.
pub fn udp_offload_model(report: &EtlReport, rates: OffloadRates) -> (f64, f64) {
    let cpu_only = report.cpu_s() + report.io_model_s;
    let udp_decompress = report.raw_bytes as f64 / (rates.decompress_mbps * 1e6);
    let udp_parse = report.raw_bytes as f64 / (rates.parse_mbps * 1e6);
    let offloaded =
        report.io_model_s + udp_decompress + udp_parse + report.deserialize_s + report.load_s;
    (cpu_only, offloaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_codecs::snappy_compress;

    fn compressed_lineitem(bytes: usize) -> Vec<u8> {
        snappy_compress(&udp_workloads::lineitem_csv(bytes, 42))
    }

    #[test]
    fn pipeline_loads_rows() {
        let (store, rep) = run_cpu_etl(&compressed_lineitem(120_000));
        assert!(store.rows > 100);
        assert_eq!(store.columns.len(), 17);
        assert!(store.columns.iter().all(|c| c.len() == store.rows));
        assert!(rep.raw_bytes >= 120_000);
        assert!(rep.rows == store.rows);
    }

    #[test]
    fn load_is_cpu_bound_like_figure_1b() {
        let (_, rep) = run_cpu_etl(&compressed_lineitem(400_000));
        assert!(
            rep.cpu_fraction() > 0.9,
            "CPU fraction = {}",
            rep.cpu_fraction()
        );
    }

    #[test]
    fn offload_model_shrinks_wall_time() {
        let (_, rep) = run_cpu_etl(&compressed_lineitem(200_000));
        let (cpu_only, offloaded) = udp_offload_model(
            &rep,
            OffloadRates {
                decompress_mbps: 500.0,
                parse_mbps: 200.0,
            },
        );
        assert!(offloaded < cpu_only);
    }

    #[test]
    fn typed_columns_round_trip_values() {
        let raw = udp_workloads::lineitem_csv(50_000, 7);
        let (store, _) = run_cpu_etl(&snappy_compress(&raw));
        // Quantity column (index 4) is 1..=50 by construction.
        let Column::I64(qty) = &store.columns[4] else {
            panic!("quantity should be I64")
        };
        assert!(qty.iter().all(|&q| (1..=50).contains(&q)));
        // Ship date (index 10) is in the 1990s.
        let Column::Date(dates) = &store.columns[10] else {
            panic!("shipdate should be Date")
        };
        let d1992 = 22 * 365;
        let d2000 = 30 * 366;
        assert!(dates.iter().all(|&d| d > d1992 && d < d2000));
    }
}

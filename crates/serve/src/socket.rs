//! Unix-domain-socket transport over the wire protocol: a listener
//! that serves a [`ServeHandle`], plus the small blocking client used
//! by tests and the chaos harness.
//!
//! Transport-level robustness discipline (the same invariant as the
//! runtime): a hostile or broken peer costs the service one connection
//! handler, never a wedge. Concretely:
//!
//! * every connection gets read/write timeouts, so a peer that opens a
//!   frame and stalls (the "stalled reader" chaos mode) times out
//!   instead of pinning a handler thread forever;
//! * protocol violations are answered with a typed error frame when the
//!   peer is still writable, and the connection is dropped either way;
//! * the accept loop is non-blocking and polls a stop flag, so server
//!   shutdown never races a blocked `accept(2)`.

#![cfg(unix)]

use crate::error::ServeError;
use crate::job::JobResult;
use crate::runtime::{ServeHandle, Shutdown};
use crate::wire::{self, read_frame, write_frame, RemoteError, Request, WireError};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Socket server configuration.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Per-connection read timeout: a peer that stalls mid-frame longer
    /// than this loses the connection (typed, logged in stats — never a
    /// pinned handler).
    pub read_timeout: Duration,
    /// Per-connection write timeout (a peer that stops draining its
    /// receive buffer).
    pub write_timeout: Duration,
    /// Pre-shared auth token. `Some` requires every connection's first
    /// frame to be an AUTH frame carrying exactly these bytes (compared
    /// in constant time); anything else is answered with
    /// [`ServeError::Unauthorized`] and the connection is dropped.
    /// `None` (the default) disables the handshake.
    pub auth_token: Option<Vec<u8>>,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            auth_token: None,
        }
    }
}

/// Constant-time byte-slice equality: the comparison touches every byte
/// of both slices regardless of where they first differ, so response
/// timing does not leak a prefix match. (A length mismatch is folded in
/// the same way rather than early-returned.)
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// A Unix-socket front end serving a [`ServeHandle`].
pub struct SocketServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `path` and starts accepting connections, each served on
    /// its own thread. An existing socket file at `path` is replaced
    /// (the normal crash-restart sequence for Unix sockets).
    pub fn bind(
        path: impl AsRef<Path>,
        handle: ServeHandle,
        config: SocketConfig,
    ) -> Result<SocketServer, ServeError> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).map_err(|e| ServeError::Protocol {
            detail: format!("bind {}: {e}", path.display()),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Protocol {
                detail: format!("set_nonblocking: {e}"),
            })?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("udp-serve-accept".into())
            .spawn(move || accept_loop(&listener, &handle, &config, &accept_stop))
            .map_err(|e| ServeError::Internal {
                detail: format!("could not spawn accept loop: {e}"),
            })?;
        Ok(SocketServer {
            path,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops accepting and joins the accept loop. In-flight connection
    /// handlers finish their current request and exit on their own.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: &UnixListener,
    handle: &ServeHandle,
    config: &SocketConfig,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let handle = handle.clone();
                let config = config.clone();
                let spawned = std::thread::Builder::new()
                    .name("udp-serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &handle, &config);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: shed the connection (it closes),
                    // keep accepting. The client sees a disconnect, which
                    // it already has to handle.
                    continue;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serves one connection until EOF, a protocol violation, a timeout, or
/// server shutdown. Returns the first error for diagnostics; every path
/// out of here drops the connection cleanly.
fn serve_connection(
    stream: UnixStream,
    handle: &ServeHandle,
    config: &SocketConfig,
) -> Result<(), WireError> {
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(|e| WireError {
            detail: format!("set_read_timeout: {e}"),
        })?;
    stream
        .set_write_timeout(Some(config.write_timeout))
        .map_err(|e| WireError {
            detail: format!("set_write_timeout: {e}"),
        })?;
    let mut reader = io::BufReader::new(&stream);
    let mut writer = io::BufWriter::new(&stream);
    // With no token configured every connection starts authenticated;
    // otherwise nothing but a correct AUTH frame gets past the gate.
    let mut authed = config.auth_token.is_none();
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean EOF between requests
            Err(e) => {
                // Stalled reader or malformed framing: try to tell the
                // peer (best-effort), then drop the connection.
                let reply: JobResult = Err(ServeError::Protocol {
                    detail: e.detail.clone(),
                });
                let _ = write_frame(&mut writer, &wire::encode_response(&reply));
                return Err(e);
            }
        };
        let request = wire::decode_request(&frame);
        if !authed {
            // The gate: only a correct AUTH frame proceeds. A bad
            // token, a short/truncated frame, or any other request is
            // answered Unauthorized and the connection is dropped —
            // an unauthenticated peer learns nothing but "no".
            let ok = matches!(
                &request,
                Ok(Request::Auth { token })
                    if config.auth_token.as_deref().is_some_and(|want| ct_eq(token, want))
            );
            if ok {
                authed = true;
                let reply: JobResult = Ok(crate::job::JobOutput {
                    output: Vec::new(),
                    cycles: 0,
                    outcome: crate::job::JobOutcome::Clean,
                });
                write_frame(&mut writer, &wire::encode_response(&reply))?;
                continue;
            }
            let reply: JobResult = Err(ServeError::Unauthorized);
            let _ = write_frame(&mut writer, &wire::encode_response(&reply));
            return Err(WireError {
                detail: "closed unauthenticated connection".into(),
            });
        }
        let reply: JobResult = match request {
            // A redundant AUTH on an authenticated connection is
            // acknowledged (idempotent) as long as the token is right.
            Ok(Request::Auth { token }) => {
                if config
                    .auth_token
                    .as_deref()
                    .is_none_or(|want| ct_eq(&token, want))
                {
                    Ok(crate::job::JobOutput {
                        output: Vec::new(),
                        cycles: 0,
                        outcome: crate::job::JobOutcome::Clean,
                    })
                } else {
                    let reply: JobResult = Err(ServeError::Unauthorized);
                    let _ = write_frame(&mut writer, &wire::encode_response(&reply));
                    return Err(WireError {
                        detail: "closed after bad re-auth".into(),
                    });
                }
            }
            Ok(Request::Submit(spec)) => match handle.submit(spec) {
                // Blocking on the ticket is safe: every accepted job
                // gets exactly one delivery, including during shutdown.
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            },
            Ok(Request::Ping) => Ok(crate::job::JobOutput {
                output: Vec::new(),
                cycles: 0,
                outcome: crate::job::JobOutcome::Clean,
            }),
            Ok(Request::Shutdown) => {
                handle.begin_shutdown(Shutdown::Drain);
                Ok(crate::job::JobOutput {
                    output: Vec::new(),
                    cycles: 0,
                    outcome: crate::job::JobOutcome::Clean,
                })
            }
            Err(e) => Err(ServeError::from(e)),
        };
        let is_protocol_err = matches!(reply, Err(ServeError::Protocol { .. }));
        write_frame(&mut writer, &wire::encode_response(&reply))?;
        if is_protocol_err {
            // One malformed frame poisons the stream position; drop the
            // connection rather than misparse everything after it.
            return Err(WireError {
                detail: "closed after protocol violation".into(),
            });
        }
    }
}

/// A minimal blocking client for the socket protocol (tests, the chaos
/// harness, examples). One request in flight at a time.
pub struct ServeClient {
    stream: UnixStream,
}

impl ServeClient {
    /// Connects to a server socket, with timeouts on both directions.
    pub fn connect(path: impl AsRef<Path>, timeout: Duration) -> Result<ServeClient, ServeError> {
        let stream = UnixStream::connect(path.as_ref()).map_err(|e| ServeError::Protocol {
            detail: format!("connect {}: {e}", path.as_ref().display()),
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| ServeError::Protocol {
                detail: format!("set timeouts: {e}"),
            })?;
        Ok(ServeClient { stream })
    }

    /// [`ServeClient::connect`] followed by the AUTH handshake: sends
    /// `token` as the first frame and fails with
    /// [`ServeError::Unauthorized`] if the server refuses it.
    pub fn connect_with_token(
        path: impl AsRef<Path>,
        timeout: Duration,
        token: &[u8],
    ) -> Result<ServeClient, ServeError> {
        let mut client = ServeClient::connect(path, timeout)?;
        match client.call(&Request::Auth {
            token: token.to_vec(),
        })? {
            Ok(_) => Ok(client),
            Err(remote) if remote.code == ServeError::Unauthorized.code() => {
                Err(ServeError::Unauthorized)
            }
            Err(remote) => Err(ServeError::Protocol {
                detail: format!("auth refused with code {}: {}", remote.code, remote.message),
            }),
        }
    }

    /// Sends one request and reads one response.
    pub fn call(
        &mut self,
        req: &Request,
    ) -> Result<Result<crate::job::JobOutput, RemoteError>, ServeError> {
        write_frame(&mut self.stream, &wire::encode_request(req)).map_err(ServeError::from)?;
        let frame = read_frame(&mut self.stream)
            .map_err(ServeError::from)?
            .ok_or(ServeError::Protocol {
                detail: "server closed the connection".into(),
            })?;
        wire::decode_response(&frame).map_err(ServeError::from)
    }

    /// Submits a job and waits for its result.
    pub fn submit(
        &mut self,
        spec: crate::job::JobSpec,
    ) -> Result<Result<crate::job::JobOutput, RemoteError>, ServeError> {
        self.call(&Request::Submit(spec))
    }

    /// The raw stream — the chaos harness uses it to model misbehaving
    /// clients (half-written frames, stalled reads, abrupt hangups).
    pub fn stream_mut(&mut self) -> &mut UnixStream {
        &mut self.stream
    }
}

//! # udp-serve — multi-tenant service runtime for the UDP simulator
//!
//! The paper positions the UDP as a shared accelerator for
//! extract-transform-load pipelines; sharing means *serving*: many
//! tenants submitting small jobs concurrently, not one batch owner
//! driving the device. This crate is that service layer (DESIGN.md
//! §10): a long-running runtime that admits jobs over an in-process
//! channel API or a length-prefixed Unix-socket protocol, batches them
//! into data-parallel lane waves on the persistent pool, and wraps
//! every job in a robustness envelope —
//!
//! * **admission control** with bounded queues and typed load shedding
//!   ([`ServeError::Overloaded`]),
//! * **per-tenant cycle quotas** derived from the same modeled cycle
//!   counters the lane budget enforces,
//! * **wall-clock deadlines** with cooperative cancellation (remaining
//!   time clamps the wave's cycle cap; late results are dropped, never
//!   delivered),
//! * **per-tenant quarantine** reusing the supervisor's
//!   retry → fallback → quarantine ladder: a tenant whose jobs keep
//!   poisoning lanes is isolated without touching anyone else's
//!   traffic,
//! * **graceful drain-then-stop shutdown** with an exactly-once result
//!   delivery guarantee for every accepted job.
//!
//! The service-level invariant, fuzzed by `udp-fault`'s `serve` module
//! under overload bursts, client disconnects, stalled readers, and
//! poison tenants: hostile load surfaces only as typed [`ServeError`]
//! values — the runtime never panics and never hangs a client.
//!
//! ## Example
//!
//! ```
//! use udp_serve::{JobSpec, ServeConfig, ServeRuntime, Shutdown};
//!
//! let rt = ServeRuntime::start_with_builtin_kernels(ServeConfig {
//!     parallel: false, // keep doctests light
//!     ..ServeConfig::default()
//! })?;
//! let handle = rt.handle();
//! let a = handle.submit(JobSpec::new("alice", "csv", b"x,y\n".to_vec()))?;
//! let b = handle.submit(JobSpec::new("bob", "csv", b"1,2\n".to_vec()))?;
//! assert_eq!(a.wait()?.output, b"x\x1fy\x1f\x1e");
//! assert_eq!(b.wait()?.output, b"1\x1f2\x1f\x1e");
//! rt.shutdown(Shutdown::Drain);
//! # Ok::<(), udp_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The service invariant (DESIGN.md §10): hostile load surfaces as typed
// errors, never a panic — so no unwrap/expect outside tests.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod job;
pub mod journal;
pub mod runtime;
pub mod socket;
pub mod wire;

pub use error::{OverloadScope, ServeError};
pub use job::{ChaosSpec, JobOutcome, JobOutput, JobResult, JobSpec, JobTicket};
pub use journal::{JournalRecord, JournalWriter, Replay};
pub use runtime::{
    csv_kernel, csv_kernel_artifact, ServeConfig, ServeHandle, ServeRuntime, ServeStats, Shutdown,
    TenantQuota,
};
#[cfg(unix)]
pub use socket::{ServeClient, SocketConfig, SocketServer};
pub use wire::{RemoteError, Request, WireError};

//! Job submission and completion types: what a tenant hands the
//! runtime and what it gets back.

use crate::error::ServeError;
use std::sync::mpsc;
use std::time::Duration;

/// Deterministic fault injection riding on a job — the service-level
/// face of the lane chaos hooks ([`udp_sim::LaneConfig::chaos_fault_at`]
/// / `chaos_panic_at`). Only harnesses and tests set this; production
/// submissions leave it `None`, which costs nothing. When any job of a
/// wave carries a spec, the wave's lane config arms the hooks — the
/// injection point is chosen above the sibling chunks' cycle counts so
/// only the chaos job faults (the same discipline `udp-fault` uses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Stop the chunk with a detected soft error at this cycle count.
    pub fault_at: Option<u64>,
    /// Panic the chunk (undetected crash) at this cycle count.
    pub panic_at: Option<u64>,
    /// Transient: the supervisor disarms the hooks on replay, so the
    /// fault recovers on the retry rung. Persistent chaos re-fires on
    /// every replay and must resolve by fallback or quarantine.
    pub transient: bool,
}

/// One unit of work: run `payload` through the registered kernel
/// `kernel` on behalf of `tenant`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant identity — the unit of quotas, fairness, and quarantine.
    pub tenant: String,
    /// Registered kernel name (see `ServeRuntime::register_kernel`).
    pub kernel: String,
    /// Input bytes the kernel consumes.
    pub payload: Vec<u8>,
    /// Wall-clock deadline relative to submission. Expired jobs are
    /// shed with [`ServeError::DeadlineExceeded`] — at dispatch if the
    /// queue was slow, after execution if the run was; either way the
    /// output is dropped, never delivered late. `None` means no
    /// deadline.
    pub deadline: Option<Duration>,
    /// Deterministic fault injection (harnesses only).
    pub chaos: Option<ChaosSpec>,
}

impl JobSpec {
    /// A plain job with no deadline and no chaos.
    pub fn new(tenant: impl Into<String>, kernel: impl Into<String>, payload: Vec<u8>) -> Self {
        JobSpec {
            tenant: tenant.into(),
            kernel: kernel.into(),
            payload,
            deadline: None,
            chaos: None,
        }
    }

    /// The same job with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// How a completed job's chunk came through the device (mirrors
/// [`udp_sim::ChunkOutcome`], minus the quarantine arm, which is an
/// error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Executed cleanly on the first attempt.
    Clean,
    /// A transient fault was replayed away by the supervisor.
    Recovered {
        /// Replay attempts spent.
        attempts: u32,
    },
    /// The software reference fallback produced the output.
    Fallback,
}

impl JobOutcome {
    /// Stable wire code (0/1/2).
    pub fn code(self) -> u8 {
        match self {
            JobOutcome::Clean => 0,
            JobOutcome::Recovered { .. } => 1,
            JobOutcome::Fallback => 2,
        }
    }
}

/// A successfully completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// The kernel's output bytes for this job's payload.
    pub output: Vec<u8>,
    /// Modeled device cycles the chunk spent (what quota accounting
    /// charged the tenant).
    pub cycles: u64,
    /// How the chunk came through the supervisor.
    pub outcome: JobOutcome,
}

/// What the runtime delivers for every accepted job — exactly once.
pub type JobResult = Result<JobOutput, ServeError>;

/// The receiving half of an accepted job: redeem it for the result.
///
/// Dropping a ticket models a client disconnect; the runtime still
/// executes (or sheds) the job and discards the undeliverable result
/// without error — `ServeStats::results_dropped` counts them.
#[derive(Debug)]
pub struct JobTicket {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<JobResult>,
}

impl JobTicket {
    /// The job's runtime-assigned id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the runtime delivers the result. Every accepted
    /// job gets exactly one delivery (including during shutdown), so
    /// this only errors with [`ServeError::RuntimeGone`] if the runtime
    /// was torn down abnormally.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or(Err(ServeError::RuntimeGone))
    }

    /// [`JobTicket::wait`] with an upper bound — the hang detector
    /// harnesses use. A timeout comes back as
    /// [`ServeError::ResultTimeout`].
    pub fn wait_timeout(self, timeout: Duration) -> JobResult {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::ResultTimeout {
                waited_ms: timeout.as_millis() as u64,
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::RuntimeGone),
        }
    }
}

//! The length-prefixed wire protocol the Unix-socket transport speaks
//! (DESIGN.md §10.4). Pure encode/decode over byte buffers — no I/O —
//! so the framing is testable without a socket and reusable by any
//! transport.
//!
//! ## Framing
//!
//! Every message is one frame: a little-endian `u32` length followed by
//! that many payload bytes. Lengths above [`MAX_FRAME`] are rejected
//! before any allocation — a hostile 4 GB length prefix must cost
//! nothing.
//!
//! ## Requests (client → server)
//!
//! ```text
//! SUBMIT   = 0x01  u16 tenant_len, tenant, u16 kernel_len, kernel,
//!                  u32 deadline_ms (0 = none), u32 payload_len, payload
//! SHUTDOWN = 0x02  (drain-then-stop; empty body)
//! PING     = 0x03  (liveness; empty body)
//! AUTH     = 0x04  u16 token_len, token (pre-shared bytes; must be the
//!                  first frame when the server requires a token)
//! ```
//!
//! ## Responses (server → client)
//!
//! ```text
//! OK  = 0x00  u8 outcome code (JobOutcome::code), u64 cycles,
//!             u32 output_len, output
//! ERR = 0x01  u16 error code (ServeError::code),
//!             u16 message_len, message (UTF-8, human-readable)
//! ```
//!
//! Error frames carry the stable numeric code so clients branch without
//! parsing prose; the message is diagnostic only.

use crate::error::ServeError;
use crate::job::{JobOutcome, JobOutput, JobResult, JobSpec};
use std::time::Duration;

/// Hard cap on a frame's payload length (64 MB): anything larger is a
/// protocol error, not an allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Request opcodes.
pub const OP_SUBMIT: u8 = 0x01;
/// Drain-then-stop the runtime.
pub const OP_SHUTDOWN: u8 = 0x02;
/// Liveness probe; answered with an empty OK frame.
pub const OP_PING: u8 = 0x03;
/// Pre-shared-token handshake; must be the connection's first frame
/// when the server was configured with a token.
pub const OP_AUTH: u8 = 0x04;

/// Cap on an auth token's length, bytes. Far above any reasonable
/// pre-shared secret; keeps a hostile length field from meaning much.
pub const MAX_TOKEN: usize = 1024;

const STATUS_OK: u8 = 0x00;
const STATUS_ERR: u8 = 0x01;

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a job.
    Submit(JobSpec),
    /// Drain the runtime and stop accepting connections.
    Shutdown,
    /// Liveness probe.
    Ping,
    /// Present the pre-shared token.
    Auth {
        /// The token bytes as sent; the server compares in constant
        /// time.
        token: Vec<u8>,
    },
}

/// Typed protocol violations, carried to the peer as
/// [`ServeError::Protocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was malformed.
    pub detail: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.detail)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Protocol { detail: e.detail }
    }
}

fn wire_err(detail: impl Into<String>) -> WireError {
    WireError {
        detail: detail.into(),
    }
}

/// A bounds-checked little-endian cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                wire_err(format!(
                    "truncated frame: {what} needs {n} bytes, {} remain",
                    self.buf.len() - self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(wire_err(format!(
                "{} trailing byte(s) after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encodes a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Submit(spec) => {
            let mut v =
                Vec::with_capacity(16 + spec.tenant.len() + spec.kernel.len() + spec.payload.len());
            v.push(OP_SUBMIT);
            v.extend_from_slice(&(spec.tenant.len() as u16).to_le_bytes());
            v.extend_from_slice(spec.tenant.as_bytes());
            v.extend_from_slice(&(spec.kernel.len() as u16).to_le_bytes());
            v.extend_from_slice(spec.kernel.as_bytes());
            let deadline_ms = spec
                .deadline
                .map(|d| (d.as_millis() as u64).clamp(1, u64::from(u32::MAX - 1)) as u32)
                .unwrap_or(0);
            v.extend_from_slice(&deadline_ms.to_le_bytes());
            v.extend_from_slice(&(spec.payload.len() as u32).to_le_bytes());
            v.extend_from_slice(&spec.payload);
            v
        }
        Request::Shutdown => vec![OP_SHUTDOWN],
        Request::Ping => vec![OP_PING],
        Request::Auth { token } => {
            let token = &token[..token.len().min(MAX_TOKEN)];
            let mut v = Vec::with_capacity(3 + token.len());
            v.push(OP_AUTH);
            v.extend_from_slice(&(token.len() as u16).to_le_bytes());
            v.extend_from_slice(token);
            v
        }
    }
}

/// Decodes a request frame payload. The per-job chaos channel is not
/// part of the wire protocol — remote tenants do not get to inject
/// faults; decoded specs always carry `chaos: None`.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(buf);
    let op = c.u8("opcode")?;
    match op {
        OP_SUBMIT => {
            let tenant_len = usize::from(c.u16("tenant length")?);
            let tenant = String::from_utf8(c.take(tenant_len, "tenant")?.to_vec())
                .map_err(|_| wire_err("tenant is not UTF-8"))?;
            let kernel_len = usize::from(c.u16("kernel length")?);
            let kernel = String::from_utf8(c.take(kernel_len, "kernel")?.to_vec())
                .map_err(|_| wire_err("kernel is not UTF-8"))?;
            let deadline_ms = c.u32("deadline")?;
            let payload_len = c.u32("payload length")? as usize;
            let payload = c.take(payload_len, "payload")?.to_vec();
            c.finish("submit request")?;
            let mut spec = JobSpec::new(tenant, kernel, payload);
            if deadline_ms > 0 {
                spec.deadline = Some(Duration::from_millis(u64::from(deadline_ms)));
            }
            Ok(Request::Submit(spec))
        }
        OP_SHUTDOWN => {
            c.finish("shutdown request")?;
            Ok(Request::Shutdown)
        }
        OP_PING => {
            c.finish("ping request")?;
            Ok(Request::Ping)
        }
        OP_AUTH => {
            let token_len = usize::from(c.u16("token length")?);
            if token_len > MAX_TOKEN {
                return Err(wire_err(format!(
                    "token length {token_len} exceeds the {MAX_TOKEN}-byte cap"
                )));
            }
            let token = c.take(token_len, "token")?.to_vec();
            c.finish("auth request")?;
            Ok(Request::Auth { token })
        }
        other => Err(wire_err(format!("unknown request opcode {other:#04x}"))),
    }
}

/// Encodes a job result into a response frame payload.
pub fn encode_response(result: &JobResult) -> Vec<u8> {
    match result {
        Ok(out) => {
            let mut v = Vec::with_capacity(14 + out.output.len());
            v.push(STATUS_OK);
            v.push(out.outcome.code());
            v.extend_from_slice(&out.cycles.to_le_bytes());
            v.extend_from_slice(&(out.output.len() as u32).to_le_bytes());
            v.extend_from_slice(&out.output);
            v
        }
        Err(e) => {
            let msg = e.to_string();
            let msg = &msg.as_bytes()[..msg.len().min(usize::from(u16::MAX))];
            let mut v = Vec::with_capacity(5 + msg.len());
            v.push(STATUS_ERR);
            v.extend_from_slice(&e.code().to_le_bytes());
            v.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            v.extend_from_slice(msg);
            v
        }
    }
}

/// The client-side view of a decoded error response: the stable code
/// plus the server's diagnostic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// [`ServeError::code`] as sent by the server.
    pub code: u16,
    /// The server's human-readable rendering of the error.
    pub message: String,
}

/// Decodes a response frame payload into either a [`JobOutput`] or the
/// peer's error (code + message).
pub fn decode_response(buf: &[u8]) -> Result<Result<JobOutput, RemoteError>, WireError> {
    let mut c = Cursor::new(buf);
    match c.u8("status")? {
        STATUS_OK => {
            let code = c.u8("outcome code")?;
            let outcome = match code {
                0 => JobOutcome::Clean,
                // The wire does not carry the attempt count; one replay
                // is the common case and the distinction is diagnostic.
                1 => JobOutcome::Recovered { attempts: 1 },
                2 => JobOutcome::Fallback,
                other => return Err(wire_err(format!("unknown outcome code {other}"))),
            };
            let cycles = c.u64("cycles")?;
            let out_len = c.u32("output length")? as usize;
            let output = c.take(out_len, "output")?.to_vec();
            c.finish("ok response")?;
            Ok(Ok(JobOutput {
                output,
                cycles,
                outcome,
            }))
        }
        STATUS_ERR => {
            let code = c.u16("error code")?;
            let msg_len = usize::from(c.u16("message length")?);
            let message = String::from_utf8_lossy(c.take(msg_len, "message")?).into_owned();
            c.finish("error response")?;
            Ok(Err(RemoteError { code, message }))
        }
        other => Err(wire_err(format!("unknown response status {other:#04x}"))),
    }
}

/// Reads one length-prefixed frame from `r`. `Ok(None)` is a clean EOF
/// at a frame boundary (the peer hung up between requests); EOF inside
/// a frame, or a length above [`MAX_FRAME`], is a [`WireError`].
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(wire_err("EOF inside frame length")),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(wire_err(format!("read failed: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(wire_err(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(wire_err("EOF inside frame payload")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(wire_err(format!("read failed: {e}"))),
        }
    }
    Ok(Some(payload))
}

/// Writes one length-prefixed frame to `w`.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(wire_err(format!(
            "refusing to send a {}-byte frame (cap {MAX_FRAME})",
            payload.len()
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| wire_err(format!("write failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let spec = JobSpec::new("alice", "csv", b"a,b\n".to_vec())
            .with_deadline(Duration::from_millis(250));
        let buf = encode_request(&Request::Submit(spec.clone()));
        match decode_request(&buf).unwrap() {
            Request::Submit(got) => {
                assert_eq!(got.tenant, spec.tenant);
                assert_eq!(got.kernel, spec.kernel);
                assert_eq!(got.payload, spec.payload);
                assert_eq!(got.deadline, spec.deadline);
                assert_eq!(got.chaos, None);
            }
            other => panic!("wrong request: {other:?}"),
        }
        for req in [
            Request::Shutdown,
            Request::Ping,
            Request::Auth {
                token: b"s3cret".to_vec(),
            },
            Request::Auth { token: Vec::new() },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn hostile_auth_frames_are_typed() {
        // Token length field larger than the bytes that follow.
        let bad = [OP_AUTH, 10, 0, b'x'];
        assert!(decode_request(&bad).is_err());
        // Declared length over the cap is refused even if bytes exist.
        let mut over = vec![OP_AUTH];
        over.extend_from_slice(&((MAX_TOKEN as u16) + 1).to_le_bytes());
        over.extend(std::iter::repeat_n(0u8, MAX_TOKEN + 1));
        assert!(decode_request(&over).unwrap_err().detail.contains("cap"));
        // Trailing bytes after the token are refused.
        let mut trailing = encode_request(&Request::Auth {
            token: b"t".to_vec(),
        });
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let ok: JobResult = Ok(JobOutput {
            output: b"framed".to_vec(),
            cycles: 1234,
            outcome: JobOutcome::Fallback,
        });
        let got = decode_response(&encode_response(&ok)).unwrap().unwrap();
        assert_eq!(got.output, b"framed");
        assert_eq!(got.cycles, 1234);
        assert_eq!(got.outcome, JobOutcome::Fallback);

        let err: JobResult = Err(ServeError::DeadlineExceeded { waited_ms: 7 });
        let remote = decode_response(&encode_response(&err))
            .unwrap()
            .unwrap_err();
        assert_eq!(
            remote.code,
            ServeError::DeadlineExceeded { waited_ms: 7 }.code()
        );
        assert!(remote.message.contains("deadline"));
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        // Unknown opcode.
        assert!(decode_request(&[0xEE]).is_err());
        // Empty frame.
        assert!(decode_request(&[]).is_err());
        // Truncated submit: tenant length says 10, only 2 bytes follow.
        let bad = [OP_SUBMIT, 10, 0, b'h', b'i'];
        let e = decode_request(&bad).unwrap_err();
        assert!(e.detail.contains("truncated"), "{e}");
        // Trailing garbage after a complete ping.
        assert!(decode_request(&[OP_PING, 0]).is_err());
        // Hostile length prefix is refused before allocation.
        let mut r = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut r).unwrap_err().detail.contains("cap"));
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_only_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
        // EOF mid-frame is an error, not a hang or a silent None.
        let mut r = std::io::Cursor::new(vec![5, 0, 0, 0, b'x']);
        assert!(read_frame(&mut r).unwrap_err().detail.contains("EOF"));
    }
}

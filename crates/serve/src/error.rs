//! Typed service errors — every way the runtime sheds, refuses, or
//! abandons a job. No free-form failures: a client can always branch
//! on the variant, and the wire protocol carries the stable
//! [`ServeError::code`] across the socket.

use std::fmt;
use udp_sim::SimError;

/// Which admission bound a shed request hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadScope {
    /// The runtime's global bounded queue is full.
    Queue,
    /// The submitting tenant already has its quota of queued jobs.
    Tenant,
}

/// Why the service refused, shed, or abandoned a job.
///
/// Admission-time variants ([`ServeError::Overloaded`],
/// [`ServeError::QuotaExhausted`], [`ServeError::TenantQuarantined`],
/// [`ServeError::UnknownKernel`], [`ServeError::ShuttingDown`]) are
/// returned from `submit` before the job is queued; completion-time
/// variants are delivered through the job's ticket. The service-level
/// invariant (DESIGN.md §10) is that hostile load surfaces *only* as
/// these values — never a panic, never a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Load shed at admission: a bounded queue was full.
    Overloaded {
        /// Which bound fired.
        scope: OverloadScope,
        /// Jobs queued against that bound when the request arrived.
        queued: usize,
        /// The bound itself.
        capacity: usize,
    },
    /// The job's wall-clock deadline passed before its result could be
    /// delivered (at admission, at dispatch, or after execution — the
    /// output is dropped in every case).
    DeadlineExceeded {
        /// Milliseconds the job had been waiting when the deadline was
        /// enforced.
        waited_ms: u64,
    },
    /// The tenant's cumulative modeled-cycle budget is spent; refill it
    /// with `ServeHandle::refill_quota` or wait for an operator.
    QuotaExhausted {
        /// Cycles the tenant has consumed.
        used: u64,
        /// The tenant's cycle allowance.
        budget: u64,
    },
    /// The tenant tripped the per-tenant quarantine (its jobs kept
    /// poisoning lanes); only an operator reset readmits it.
    TenantQuarantined {
        /// Quarantine strikes the tenant accumulated.
        strikes: u32,
    },
    /// No kernel with this name is registered.
    UnknownKernel {
        /// The requested kernel name.
        name: String,
    },
    /// The runtime is draining or stopped; no new work is admitted.
    ShuttingDown,
    /// The job's chunk climbed the whole supervisor ladder and was
    /// quarantined; the fault is reported, the output dropped.
    JobQuarantined {
        /// Stable kebab-case name of the fault that poisoned the chunk.
        fault: String,
    },
    /// The device run itself could not start (pre-flight
    /// misconfiguration) — should not happen for kernels that passed
    /// registration, so this indicates an operator error.
    Sim(SimError),
    /// A bounded wait on a ticket expired before the runtime delivered
    /// a result. Used by harnesses as a hang detector.
    ResultTimeout {
        /// How long the caller waited, milliseconds.
        waited_ms: u64,
    },
    /// The runtime dropped the job without delivering any result —
    /// a contract breach surfaced as a value instead of a hang.
    RuntimeGone,
    /// The peer spoke the wire protocol wrong (socket paths only).
    Protocol {
        /// What was malformed.
        detail: String,
    },
    /// A bug unwound out of the scheduler while this job's wave ran;
    /// the panic was contained and every job of the wave completed
    /// with this value instead of hanging its clients.
    Internal {
        /// The contained panic's message.
        detail: String,
    },
    /// The connection has not completed the auth handshake (or sent a
    /// bad token); the server answers with this and drops the
    /// connection. Socket paths with `SocketConfig::auth_token` only.
    Unauthorized,
    /// The durable layer failed: the artifact store could not serve a
    /// kernel, or the warm-restart journal could not be opened or
    /// replayed. Carries the underlying typed error's rendering.
    Store {
        /// The store/journal error message.
        detail: String,
    },
}

impl ServeError {
    /// Stable numeric code for the wire protocol.
    pub fn code(&self) -> u16 {
        match self {
            ServeError::Overloaded { .. } => 1,
            ServeError::DeadlineExceeded { .. } => 2,
            ServeError::QuotaExhausted { .. } => 3,
            ServeError::TenantQuarantined { .. } => 4,
            ServeError::UnknownKernel { .. } => 5,
            ServeError::ShuttingDown => 6,
            ServeError::JobQuarantined { .. } => 7,
            ServeError::Sim(_) => 8,
            ServeError::ResultTimeout { .. } => 9,
            ServeError::RuntimeGone => 10,
            ServeError::Protocol { .. } => 11,
            ServeError::Internal { .. } => 12,
            ServeError::Unauthorized => 13,
            ServeError::Store { .. } => 14,
        }
    }

    /// Stable kebab-case name of the variant (stats, summaries, logs).
    pub fn name(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServeError::QuotaExhausted { .. } => "quota-exhausted",
            ServeError::TenantQuarantined { .. } => "tenant-quarantined",
            ServeError::UnknownKernel { .. } => "unknown-kernel",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::JobQuarantined { .. } => "job-quarantined",
            ServeError::Sim(_) => "sim-error",
            ServeError::ResultTimeout { .. } => "result-timeout",
            ServeError::RuntimeGone => "runtime-gone",
            ServeError::Protocol { .. } => "protocol",
            ServeError::Internal { .. } => "internal",
            ServeError::Unauthorized => "unauthorized",
            ServeError::Store { .. } => "store",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                scope,
                queued,
                capacity,
            } => {
                let what = match scope {
                    OverloadScope::Queue => "service queue",
                    OverloadScope::Tenant => "tenant queue quota",
                };
                write!(f, "overloaded: {what} full ({queued}/{capacity})")
            }
            ServeError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms} ms")
            }
            ServeError::QuotaExhausted { used, budget } => {
                write!(f, "cycle quota exhausted ({used}/{budget} cycles)")
            }
            ServeError::TenantQuarantined { strikes } => {
                write!(f, "tenant quarantined after {strikes} poisoned job(s)")
            }
            ServeError::UnknownKernel { name } => {
                write!(f, "no kernel named `{name}` is registered")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::JobQuarantined { fault } => {
                write!(f, "job quarantined by the supervisor: {fault}")
            }
            ServeError::Sim(e) => write!(f, "device run refused: {e}"),
            ServeError::ResultTimeout { waited_ms } => {
                write!(f, "no result after {waited_ms} ms")
            }
            ServeError::RuntimeGone => {
                write!(f, "runtime dropped the job without a result")
            }
            ServeError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ServeError::Internal { detail } => {
                write!(f, "internal scheduler error: {detail}")
            }
            ServeError::Unauthorized => {
                write!(
                    f,
                    "unauthorized: the connection has not presented a valid token"
                )
            }
            ServeError::Store { detail } => {
                write!(f, "durable state error: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ServeError> {
        vec![
            ServeError::Overloaded {
                scope: OverloadScope::Queue,
                queued: 8,
                capacity: 8,
            },
            ServeError::Overloaded {
                scope: OverloadScope::Tenant,
                queued: 2,
                capacity: 2,
            },
            ServeError::DeadlineExceeded { waited_ms: 5 },
            ServeError::QuotaExhausted {
                used: 10,
                budget: 9,
            },
            ServeError::TenantQuarantined { strikes: 1 },
            ServeError::UnknownKernel {
                name: "nope".into(),
            },
            ServeError::ShuttingDown,
            ServeError::JobQuarantined {
                fault: "chaos-injected".into(),
            },
            ServeError::Sim(SimError::NotExecutable),
            ServeError::ResultTimeout { waited_ms: 100 },
            ServeError::RuntimeGone,
            ServeError::Protocol {
                detail: "short frame".into(),
            },
            ServeError::Internal {
                detail: "bug".into(),
            },
            ServeError::Unauthorized,
            ServeError::Store {
                detail: "checksum mismatch".into(),
            },
        ]
    }

    #[test]
    fn codes_are_unique_and_names_kebab() {
        let variants = all_variants();
        for (i, a) in variants.iter().enumerate() {
            assert!(!a.to_string().is_empty());
            assert!(a.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            for b in variants.iter().skip(i + 1) {
                if a.name() != b.name() {
                    assert_ne!(a.code(), b.code(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn sim_error_is_a_source() {
        use std::error::Error as _;
        let e = ServeError::from(SimError::NotExecutable);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("size-model-only"));
    }
}

//! The multi-tenant service runtime: a long-running scheduler that
//! admits jobs, batches them into lane waves on the simulated device,
//! and wraps every job in the robustness envelope (DESIGN.md §10):
//!
//! * **Admission control.** One global bounded queue plus a per-tenant
//!   queued-jobs quota; a full bound sheds the request with a typed
//!   [`ServeError::Overloaded`] instead of blocking the caller —
//!   backpressure is the client's signal to slow down.
//! * **Per-tenant cycle quotas.** Every chunk's modeled cycles (the
//!   same `budget_for`-bounded counter the lane enforces) are charged
//!   to its tenant; a tenant over its cumulative budget is refused at
//!   admission with [`ServeError::QuotaExhausted`] until an operator
//!   refills it. A greedy tenant exhausts its own allowance, never the
//!   service.
//! * **Deadlines.** A job's wall-clock deadline is enforced at
//!   admission, at dispatch (stale queue entries are shed unexecuted),
//!   and at completion (a result that missed its deadline is dropped,
//!   never delivered late). Remaining wall time also clamps the wave's
//!   cycle cap ([`ServeConfig::cycles_per_ms`]), so a run that cannot
//!   finish in time is cooperatively cancelled by the lane's own cycle
//!   budget instead of burning the device.
//! * **Per-tenant fault isolation.** Every wave runs under the
//!   supervisor ladder (retry → reference fallback → quarantine); a
//!   chunk that survives the whole ladder quarantined is a *strike*
//!   against its tenant, and [`ServeConfig::quarantine_strikes`] of
//!   them quarantine the tenant itself — subsequent submissions are
//!   refused with [`ServeError::TenantQuarantined`] while every other
//!   tenant's traffic is untouched.
//! * **Drain-then-stop shutdown.** [`ServeRuntime::shutdown`] with
//!   [`Shutdown::Drain`] stops admission and lets the queue empty;
//!   [`Shutdown::Abort`] completes every queued job with
//!   [`ServeError::ShuttingDown`]. Either way, every accepted job gets
//!   exactly one delivery.

use crate::error::{OverloadScope, ServeError};
use crate::job::{ChaosSpec, JobOutcome, JobOutput, JobResult, JobSpec, JobTicket};
use crate::journal::{self, JournalRecord, JournalWriter};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use udp_asm::{DecodedProgram, LayoutOptions, ProgramImage};
use udp_isa::mem::{BANK_WORDS, NUM_BANKS};
use udp_sim::engine::Staging;
use udp_sim::{
    ChunkOutcome, ExecBackend, FaultKind, LaneConfig, ReferenceFallback, SimError,
    SupervisorOptions, Udp, UdpRunOptions,
};
use udp_store::ArtifactStore;

/// Per-tenant resource limits.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Jobs the tenant may have queued at once; the next submission is
    /// shed with [`ServeError::Overloaded`] (tenant scope).
    pub max_queued: usize,
    /// Cumulative modeled-cycle allowance. `None` is unmetered; with a
    /// budget, admissions are refused once the tenant's charged cycles
    /// reach it ([`ServeError::QuotaExhausted`]) until
    /// [`ServeHandle::refill_quota`] tops it up.
    pub cycle_budget: Option<u64>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_queued: 64,
            cycle_budget: None,
        }
    }
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Global bounded-queue capacity (jobs queued across all tenants).
    pub queue_capacity: usize,
    /// Most jobs batched into one device wave (≤ 64 is the natural
    /// lane count; larger values still work — the engine models extra
    /// waves).
    pub max_wave: usize,
    /// Execute waves on the persistent host worker pool.
    pub parallel: bool,
    /// Quota applied to tenants the runtime has not seen before.
    pub default_quota: TenantQuota,
    /// Quarantined chunks a tenant may cause before the tenant itself
    /// is quarantined. Strike counting ignores deadline-induced cycle
    /// budget faults — a tight deadline is not a poison kernel.
    pub quarantine_strikes: u32,
    /// Supervisor ladder template for every wave; the per-kernel
    /// reference fallback is filled in at dispatch. Validated at
    /// startup via [`SupervisorOptions::validate`].
    pub supervisor: SupervisorOptions,
    /// Base lane configuration (cycle budgets; chaos hooks must stay
    /// unset — per-job [`ChaosSpec`]s arm them).
    pub lane: LaneConfig,
    /// Deadline-to-cycle conversion for cooperative cancellation: a job
    /// with `r` milliseconds of wall clock left gets its wave cycle cap
    /// clamped to `r * cycles_per_ms`. `0` disables the clamp (deadlines
    /// then only shed, never cancel mid-run).
    pub cycles_per_ms: u64,
    /// Execution backend for waves; `None` resolves
    /// [`ExecBackend::from_env`] at startup, so the runtime joins the
    /// `UDP_SIM_BACKEND` test matrix like everything else.
    pub backend: Option<ExecBackend>,
    /// `fsync` the warm-restart journal after every record
    /// ([`ServeRuntime::start_journaled`] only). Durable by default;
    /// tests that churn many short-lived services can turn it off.
    pub journal_sync: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            max_wave: 64,
            parallel: true,
            default_quota: TenantQuota::default(),
            quarantine_strikes: 1,
            supervisor: SupervisorOptions {
                backoff_base_ms: 0,
                ..SupervisorOptions::default()
            },
            lane: LaneConfig::default(),
            cycles_per_ms: 200_000,
            backend: None,
            journal_sync: true,
        }
    }
}

/// Service-level counters, all monotonic. [`ServeHandle::stats`]
/// returns a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions seen (accepted + rejected).
    pub submitted: u64,
    /// Submissions admitted to the queue.
    pub accepted: u64,
    /// Jobs completed with an `Ok` output.
    pub completed: u64,
    /// Requests shed by a full queue bound (global or tenant).
    pub shed_overload: u64,
    /// Jobs shed or dropped by their deadline.
    pub shed_deadline: u64,
    /// Submissions refused for an exhausted cycle quota.
    pub rejected_quota: u64,
    /// Submissions (or queued jobs) refused because the tenant is
    /// quarantined.
    pub rejected_quarantined: u64,
    /// Submissions refused for other reasons (unknown kernel,
    /// shutdown).
    pub rejected_other: u64,
    /// Jobs whose chunk the supervisor quarantined.
    pub quarantined_jobs: u64,
    /// Tenants currently quarantined.
    pub tenants_quarantined: u64,
    /// Results that could not be delivered (client hung up).
    pub results_dropped: u64,
    /// Kernels whose journal record could not be restored at warm
    /// restart (artifact gone *and* source unassemblable); the service
    /// starts degraded and refuses them with
    /// [`ServeError::UnknownKernel`].
    pub kernels_dropped: u64,
    /// Device waves executed.
    pub waves: u64,
    /// Input bytes executed on the device.
    pub bytes_in: u64,
    /// Modeled cycles charged across all tenants.
    pub cycles: u64,
}

/// A registered kernel: the verified program image, its predecode-once
/// execution table (shared by every wave instead of re-predecoding per
/// run), and its optional software reference fallback (the
/// supervisor's second rung).
#[derive(Clone)]
struct KernelSpec {
    image: Arc<ProgramImage>,
    decoded: Arc<DecodedProgram>,
    banks_per_lane: usize,
    fallback: Option<Arc<dyn ReferenceFallback>>,
}

struct TenantState {
    quota: TenantQuota,
    queued: usize,
    cycles_used: u64,
    strikes: u32,
    quarantined: bool,
}

impl TenantState {
    fn new(quota: TenantQuota) -> Self {
        TenantState {
            quota,
            queued: 0,
            cycles_used: 0,
            strikes: 0,
            quarantined: false,
        }
    }
}

struct PendingJob {
    tenant: String,
    kernel: String,
    payload: Vec<u8>,
    deadline: Option<Instant>,
    accepted_at: Instant,
    chaos: Option<ChaosSpec>,
    tx: mpsc::Sender<JobResult>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Stopped,
}

struct State {
    phase: Phase,
    paused: bool,
    queue: VecDeque<PendingJob>,
    tenants: HashMap<String, TenantState>,
    kernels: HashMap<String, KernelSpec>,
    stats: ServeStats,
    next_job_id: u64,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    config: ServeConfig,
    backend: ExecBackend,
    /// Warm-restart write-ahead journal; `None` for unjournaled
    /// runtimes. Lock order: `state` first, `journal` second — never
    /// the reverse.
    journal: Mutex<Option<JournalWriter>>,
}

impl Shared {
    /// Lock that survives poisoning: a panicking scheduler must not
    /// turn every client call into a second panic.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record to the journal, if one is attached.
    fn journal_append(&self, rec: &JournalRecord) {
        let mut j = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(w) = j.as_mut() {
            w.append(rec);
        }
    }
}

/// How to stop the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Stop admission, run the queue dry, then stop.
    Drain,
    /// Stop admission and complete every queued job with
    /// [`ServeError::ShuttingDown`] without executing it.
    Abort,
}

/// Cloneable client handle to a running service.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

/// The running service: owns the scheduler thread. Keep it alive for
/// the lifetime of the service; dropping it aborts (typed, not hung).
pub struct ServeRuntime {
    handle: ServeHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeRuntime {
    /// Starts a runtime with no kernels registered.
    /// Fails fast on an invalid supervisor template
    /// ([`SupervisorOptions::validate`]).
    pub fn start(config: ServeConfig) -> Result<ServeRuntime, ServeError> {
        config.supervisor.validate()?;
        let backend = config.backend.unwrap_or_else(ExecBackend::from_env);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                phase: Phase::Running,
                paused: false,
                queue: VecDeque::new(),
                tenants: HashMap::new(),
                kernels: HashMap::new(),
                stats: ServeStats::default(),
                next_job_id: 0,
            }),
            work_cv: Condvar::new(),
            config,
            backend,
            journal: Mutex::new(None),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("udp-serve-scheduler".into())
            .spawn(move || scheduler_loop(&worker))
            .map_err(|e| ServeError::Internal {
                detail: format!("could not spawn scheduler: {e}"),
            })?;
        Ok(ServeRuntime {
            handle: ServeHandle { shared },
            thread: Some(thread),
        })
    }

    /// [`ServeRuntime::start`] plus the built-in `"csv"` kernel (the
    /// workspace CSV framing kernel with its byte-identical software
    /// reference as the fallback rung).
    pub fn start_with_builtin_kernels(config: ServeConfig) -> Result<ServeRuntime, ServeError> {
        let rt = ServeRuntime::start(config)?;
        let (image, fallback) = csv_kernel()?;
        rt.handle().register_kernel("csv", image, Some(fallback))?;
        Ok(rt)
    }

    /// Warm(-restartable) start: replays the write-ahead journal at
    /// `journal_path` — restoring registered kernels through the
    /// artifact `store` and every tenant's admission-relevant state
    /// (quotas, cycles charged, strikes, quarantine) — then resumes
    /// journaling to the same file, so a restarted service admits and
    /// refuses exactly like the one that stopped (DESIGN.md §11.3).
    ///
    /// Recovery discipline:
    ///
    /// * A torn journal tail (crash mid-append) is detected by the
    ///   per-record CRC, reported on stderr, and truncated away —
    ///   everything before it replays normally.
    /// * A kernel whose artifact is corrupt is rebuilt from the source
    ///   in its journal record (the store's recovery rung). If that
    ///   fails too, the kernel is dropped — counted in
    ///   [`ServeStats::kernels_dropped`] — and the service starts
    ///   degraded, refusing that kernel with
    ///   [`ServeError::UnknownKernel`] instead of refusing to start.
    /// * Only kernels registered via [`ServeHandle::register_artifact`]
    ///   survive restarts; [`ServeHandle::register_kernel`] is
    ///   journal-less by design (it has no durable provenance).
    pub fn start_journaled(
        config: ServeConfig,
        journal_path: impl AsRef<Path>,
        store: &ArtifactStore,
    ) -> Result<ServeRuntime, ServeError> {
        let journal_path = journal_path.as_ref();
        let replayed = journal::replay(journal_path)?;
        if let Some(note) = &replayed.torn {
            eprintln!(
                "udp-serve: journal {}: discarding torn tail ({note})",
                journal_path.display()
            );
        }
        let sync = config.journal_sync;
        let rt = ServeRuntime::start(config)?;
        {
            let shared = &rt.handle.shared;
            let default_quota = shared.config.default_quota.clone();
            let mut st = shared.lock();
            for rec in &replayed.records {
                apply_record(&mut st, store, &default_quota, rec);
            }
        }
        let writer = JournalWriter::open(journal_path, replayed.valid_bytes, sync)?;
        *rt.handle
            .shared
            .journal
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(writer);
        Ok(rt)
    }

    /// A clone of the client handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Stops the runtime ([`Shutdown::Drain`] runs the queue dry first)
    /// and returns the final stats. Blocks until the scheduler exits.
    pub fn shutdown(mut self, mode: Shutdown) -> ServeStats {
        self.handle.begin_shutdown(mode);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.handle.stats()
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.handle.begin_shutdown(Shutdown::Abort);
            let _ = t.join();
        }
    }
}

impl ServeHandle {
    /// Registers (or replaces) a kernel under `name`. The image must be
    /// executable, fit the device, and pass `udp-verify`'s static
    /// checks — a service must never load a program a tenant could use
    /// to wedge a lane when the verifier can prove it hostile up front.
    pub fn register_kernel(
        &self,
        name: impl Into<String>,
        image: Arc<ProgramImage>,
        fallback: Option<Arc<dyn ReferenceFallback>>,
    ) -> Result<(), ServeError> {
        if !image.executable {
            return Err(ServeError::Sim(SimError::NotExecutable));
        }
        let span = image.stats.span_words;
        if span > NUM_BANKS * BANK_WORDS {
            return Err(ServeError::Sim(SimError::ProgramTooLarge {
                span_words: span,
                window_words: NUM_BANKS * BANK_WORDS,
                banks_per_lane: NUM_BANKS,
            }));
        }
        let banks_per_lane = span.div_ceil(BANK_WORDS).clamp(1, NUM_BANKS);
        let report = udp_verify::verify_image(
            &image,
            &udp_verify::VerifyOptions::with_banks(banks_per_lane),
        );
        if !report.is_clean() {
            return Err(ServeError::Sim(SimError::Verify(Box::new(report))));
        }
        // Attach the verifier's resource certificate (when the program
        // earned one) so admission can forecast job costs and the sim
        // engine can derive per-lane budgets from the certified bounds.
        let image = match report.cert {
            Some(cert) if image.cert.is_none() => {
                let mut img = (*image).clone();
                img.cert = Some(cert);
                Arc::new(img)
            }
            _ => image,
        };
        let decoded = Arc::new(image.predecode());
        let mut st = self.shared.lock();
        st.kernels.insert(
            name.into(),
            KernelSpec {
                image,
                decoded,
                banks_per_lane,
                fallback,
            },
        );
        Ok(())
    }

    /// Registers (or replaces) a kernel from a store [`Artifact`]
    /// (`udp_store::Artifact`). The store already integrity-checked and
    /// re-validated the image — certificate included — at load, so
    /// registration skips the redundant re-verification and shares the
    /// artifact's image and predecoded table by `Arc` (no copies).
    ///
    /// Unlike [`ServeHandle::register_kernel`], this registration is
    /// journaled (source + layout + fallback tag), so on a
    /// [`ServeRuntime::start_journaled`] restart the kernel is restored
    /// from the store — or rebuilt from its source if the artifact was
    /// corrupted in between.
    pub fn register_artifact(
        &self,
        name: impl Into<String>,
        artifact: &udp_store::Artifact,
        fallback: Option<Arc<dyn ReferenceFallback>>,
    ) -> Result<(), ServeError> {
        if !artifact.image.executable {
            return Err(ServeError::Sim(SimError::NotExecutable));
        }
        let name = name.into();
        let rec = JournalRecord::RegisterKernel {
            name: name.clone(),
            source: artifact.source.clone(),
            layout: artifact.layout.clone(),
            fallback: fallback.as_ref().map(|f| f.name().to_string()),
        };
        let mut st = self.shared.lock();
        st.kernels.insert(
            name,
            KernelSpec {
                image: Arc::clone(&artifact.image),
                decoded: Arc::clone(&artifact.decoded),
                banks_per_lane: artifact.banks_per_lane,
                fallback,
            },
        );
        self.shared.journal_append(&rec);
        Ok(())
    }

    /// The resource certificate of a registered kernel, if the verifier
    /// produced a cost bound for it at registration. Operators can use
    /// this to size tenant budgets against certified worst-case costs.
    pub fn kernel_cert(&self, name: &str) -> Option<udp_asm::ResourceCert> {
        self.shared
            .lock()
            .kernels
            .get(name)
            .and_then(|k| k.image.cert.clone())
    }

    /// Submits a job. Admission is non-blocking: a refused job comes
    /// back immediately as a typed [`ServeError`]; an accepted one
    /// returns a [`JobTicket`] redeemable for exactly one result.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, ServeError> {
        let cfg = &self.shared.config;
        let mut st = self.shared.lock();
        st.stats.submitted += 1;
        if st.phase != Phase::Running {
            st.stats.rejected_other += 1;
            return Err(ServeError::ShuttingDown);
        }
        // Certified worst-case cost of this payload on the requested
        // kernel (DESIGN.md §9.1). When the kernel carries a complete
        // certificate, admission reserves the bound against the
        // tenant's budget instead of admitting doomed work.
        let certified_cost = match st.kernels.get(&spec.kernel) {
            None => {
                st.stats.rejected_other += 1;
                return Err(ServeError::UnknownKernel { name: spec.kernel });
            }
            Some(k) => k
                .image
                .cert
                .as_ref()
                .and_then(|c| c.cycle_bound(spec.payload.len())),
        };
        // Tenant-scoped checks. The entry is created on first contact so
        // quota state persists across the tenant's submissions.
        let default_quota = cfg.default_quota.clone();
        let tenant = st
            .tenants
            .entry(spec.tenant.clone())
            .or_insert_with(|| TenantState::new(default_quota));
        if tenant.quarantined {
            let strikes = tenant.strikes;
            st.stats.rejected_quarantined += 1;
            return Err(ServeError::TenantQuarantined { strikes });
        }
        if let Some(budget) = tenant.quota.cycle_budget {
            // A certified kernel is metered by forecast: the job is
            // refused when its certified worst case cannot fit the
            // remaining budget. Uncertified kernels keep overdraft
            // semantics (admit while any budget remains, charge
            // actuals), since there is no sound forecast to reserve.
            let forecast = tenant
                .cycles_used
                .saturating_add(certified_cost.unwrap_or(0));
            if tenant.cycles_used >= budget || forecast > budget {
                let used = tenant.cycles_used;
                st.stats.rejected_quota += 1;
                return Err(ServeError::QuotaExhausted { used, budget });
            }
        }
        let (tenant_queued, tenant_cap) = (tenant.queued, tenant.quota.max_queued);
        if tenant_queued >= tenant_cap {
            st.stats.shed_overload += 1;
            return Err(ServeError::Overloaded {
                scope: OverloadScope::Tenant,
                queued: tenant_queued,
                capacity: tenant_cap,
            });
        }
        if st.queue.len() >= cfg.queue_capacity {
            let queued = st.queue.len();
            st.stats.shed_overload += 1;
            return Err(ServeError::Overloaded {
                scope: OverloadScope::Queue,
                queued,
                capacity: cfg.queue_capacity,
            });
        }
        // Admitted.
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let id = st.next_job_id;
        st.next_job_id += 1;
        if let Some(t) = st.tenants.get_mut(&spec.tenant) {
            t.queued += 1;
        }
        st.stats.accepted += 1;
        st.queue.push_back(PendingJob {
            tenant: spec.tenant,
            kernel: spec.kernel,
            payload: spec.payload,
            deadline: spec.deadline.map(|d| now + d),
            accepted_at: now,
            chaos: spec.chaos,
            tx,
        });
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(JobTicket { id, rx })
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.lock().stats
    }

    /// Sets (or replaces) `tenant`'s quota. Creates the tenant record
    /// if it has not submitted yet.
    pub fn set_quota(&self, tenant: impl Into<String>, quota: TenantQuota) {
        let tenant = tenant.into();
        let rec = JournalRecord::SetQuota {
            tenant: tenant.clone(),
            max_queued: quota.max_queued as u64,
            cycle_budget: quota.cycle_budget,
        };
        let mut st = self.shared.lock();
        match st.tenants.entry(tenant) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().quota = quota;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(TenantState::new(quota));
            }
        }
        self.shared.journal_append(&rec);
    }

    /// Credits `cycles` back to `tenant`'s spent-cycle account (an
    /// operator refilling a budget). Saturates at zero.
    pub fn refill_quota(&self, tenant: &str, cycles: u64) {
        let mut st = self.shared.lock();
        if let Some(t) = st.tenants.get_mut(tenant) {
            t.cycles_used = t.cycles_used.saturating_sub(cycles);
            self.shared.journal_append(&JournalRecord::Refill {
                tenant: tenant.to_string(),
                cycles,
            });
        }
    }

    /// Lifts `tenant`'s quarantine and clears its strikes (operator
    /// action after the poison kernel is fixed).
    pub fn release_quarantine(&self, tenant: &str) {
        let mut st = self.shared.lock();
        if let Some(t) = st.tenants.get_mut(tenant) {
            if t.quarantined {
                t.quarantined = false;
                t.strikes = 0;
                st.stats.tenants_quarantined = st.stats.tenants_quarantined.saturating_sub(1);
                self.shared.journal_append(&JournalRecord::Release {
                    tenant: tenant.to_string(),
                });
            }
        }
    }

    /// Pauses dispatch: queued jobs stay queued (admission still runs).
    /// Lets tests and benchmarks build a backlog deterministically.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resumes dispatch after [`ServeHandle::pause`].
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work_cv.notify_all();
    }

    /// True once the scheduler has stopped (drain complete or aborted).
    pub fn is_stopped(&self) -> bool {
        let st = self.shared.lock();
        st.phase == Phase::Stopped && st.queue.is_empty()
    }

    /// Non-blocking shutdown signal; [`ServeRuntime::shutdown`] wraps
    /// this plus the join. Exposed for signal-style control paths (the
    /// socket server's SHUTDOWN frame uses it).
    pub fn begin_shutdown(&self, mode: Shutdown) {
        let mut st = self.shared.lock();
        match mode {
            Shutdown::Drain => {
                if st.phase == Phase::Running {
                    st.phase = Phase::Draining;
                }
            }
            Shutdown::Abort => st.phase = Phase::Stopped,
        }
        st.paused = false;
        drop(st);
        self.shared.work_cv.notify_all();
    }
}

/// Builds the workspace CSV framing kernel and its byte-identical
/// software reference (the pair the fault harness pins to each other).
pub fn csv_kernel() -> Result<(Arc<ProgramImage>, Arc<dyn ReferenceFallback>), ServeError> {
    let pb = udp_compilers::csv::csv_to_udp();
    let mut banks = 1;
    let image = loop {
        match pb.assemble(&LayoutOptions::with_banks(banks)) {
            Ok(img) => break img,
            Err(_) if banks < NUM_BANKS => banks *= 2,
            Err(e) => {
                return Err(ServeError::Internal {
                    detail: format!("csv kernel failed to assemble: {e:?}"),
                })
            }
        }
    };
    let fallback = csv_fallback();
    Ok((Arc::new(image), fallback))
}

/// The byte-identical software reference for the CSV framing kernel.
fn csv_fallback() -> Arc<dyn ReferenceFallback> {
    Arc::new(udp_codecs::fallback::CsvFramingFallback {
        delimiter: b',',
        quote: b'"',
        field_sep: udp_compilers::FIELD_SEP,
        record_sep: udp_compilers::RECORD_SEP,
    })
}

/// Resolves a journaled fallback tag back to its builtin
/// implementation at replay time. Tags are `ReferenceFallback::name()`
/// values; an unknown tag restores the kernel without a fallback rung
/// (degraded but serving) rather than dropping it.
fn builtin_fallback(tag: &str) -> Option<Arc<dyn ReferenceFallback>> {
    match tag {
        "csv-framing" => Some(csv_fallback()),
        _ => None,
    }
}

/// The CSV framing kernel as a durable store artifact: its canonical
/// source text is built (or loaded) through `store`, so the verified
/// image round-trips the artifact format and a
/// [`ServeHandle::register_artifact`] registration survives warm
/// restarts. Returns the artifact plus the byte-identical software
/// reference fallback.
pub fn csv_kernel_artifact(
    store: &ArtifactStore,
) -> Result<(udp_store::Artifact, Arc<dyn ReferenceFallback>), ServeError> {
    let pb = udp_compilers::csv::csv_to_udp();
    let source = udp_asm::emit_asm(&pb);
    let mut banks = 1;
    let artifact = loop {
        match store.get_or_build(&source, &LayoutOptions::with_banks(banks)) {
            Ok(a) => break a,
            Err(_) if banks < NUM_BANKS => banks *= 2,
            Err(e) => {
                return Err(ServeError::Store {
                    detail: e.to_string(),
                })
            }
        }
    };
    Ok((artifact, csv_fallback()))
}

/// Applies one replayed journal record to the fresh runtime state.
/// Mirrors the live mutation paths exactly — same entry-creation
/// semantics, same saturating arithmetic — so a replayed service is
/// indistinguishable at admission time from one that never stopped.
fn apply_record(
    st: &mut State,
    store: &ArtifactStore,
    default_quota: &TenantQuota,
    rec: &JournalRecord,
) {
    match rec {
        JournalRecord::RegisterKernel {
            name,
            source,
            layout,
            fallback,
        } => match store.get_or_build(source, layout) {
            Ok(artifact) => {
                let fallback = fallback.as_deref().and_then(builtin_fallback);
                st.kernels.insert(
                    name.clone(),
                    KernelSpec {
                        image: Arc::clone(&artifact.image),
                        decoded: Arc::clone(&artifact.decoded),
                        banks_per_lane: artifact.banks_per_lane,
                        fallback,
                    },
                );
            }
            Err(e) => {
                st.stats.kernels_dropped += 1;
                eprintln!("udp-serve: kernel `{name}` dropped at warm restart: {e}");
            }
        },
        JournalRecord::SetQuota {
            tenant,
            max_queued,
            cycle_budget,
        } => {
            let quota = TenantQuota {
                max_queued: *max_queued as usize,
                cycle_budget: *cycle_budget,
            };
            match st.tenants.entry(tenant.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().quota = quota;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(TenantState::new(quota));
                }
            }
        }
        JournalRecord::Charge { tenant, cycles } => {
            let t = st
                .tenants
                .entry(tenant.clone())
                .or_insert_with(|| TenantState::new(default_quota.clone()));
            t.cycles_used = t.cycles_used.saturating_add(*cycles);
        }
        JournalRecord::Strike { tenant } => {
            let t = st
                .tenants
                .entry(tenant.clone())
                .or_insert_with(|| TenantState::new(default_quota.clone()));
            t.strikes += 1;
        }
        JournalRecord::Quarantine { tenant } => {
            let t = st
                .tenants
                .entry(tenant.clone())
                .or_insert_with(|| TenantState::new(default_quota.clone()));
            if !t.quarantined {
                t.quarantined = true;
                st.stats.tenants_quarantined += 1;
            }
        }
        JournalRecord::Release { tenant } => {
            if let Some(t) = st.tenants.get_mut(tenant) {
                if t.quarantined {
                    t.quarantined = false;
                    t.strikes = 0;
                    st.stats.tenants_quarantined = st.stats.tenants_quarantined.saturating_sub(1);
                }
            }
        }
        JournalRecord::Refill { tenant, cycles } => {
            if let Some(t) = st.tenants.get_mut(tenant) {
                t.cycles_used = t.cycles_used.saturating_sub(*cycles);
            }
        }
    }
}

/// The scheduler: wait for work, form a same-kernel wave, run it under
/// the supervisor, deliver results. One thread — the device is one
/// device; host-level parallelism lives inside the wave (the lane
/// pool), not across waves.
fn scheduler_loop(shared: &Shared) {
    loop {
        let wave = {
            let mut st = shared.lock();
            loop {
                match st.phase {
                    Phase::Running => {
                        if !st.paused && !st.queue.is_empty() {
                            break;
                        }
                        st = shared
                            .work_cv
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Phase::Draining => {
                        if st.queue.is_empty() {
                            st.phase = Phase::Stopped;
                            return;
                        }
                        break;
                    }
                    Phase::Stopped => {
                        flush_queue(&mut st);
                        return;
                    }
                }
            }
            form_wave(&mut st, shared.config.max_wave)
        };
        let Some((kernel, jobs)) = wave else { continue };
        // A panic unwinding out of wave execution is a scheduler bug;
        // contain it and complete the wave's jobs with a typed error so
        // no client hangs on our bugs either and the service keeps
        // serving. Senders are cloned up front because the panicking
        // closure consumes the jobs; a job the wave already delivered
        // to just gets a second message its consumed ticket never reads.
        let txs: Vec<mpsc::Sender<JobResult>> = jobs.iter().map(|j| j.tx.clone()).collect();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_wave(shared, &kernel, jobs))) {
            let detail = panic_message(payload.as_ref());
            eprintln!("udp-serve: contained scheduler panic: {detail}");
            for tx in txs {
                let _ = tx.send(Err(ServeError::Internal {
                    detail: detail.clone(),
                }));
            }
        }
    }
}

/// Completes every queued job with `ShuttingDown` (abort path).
fn flush_queue(st: &mut State) {
    while let Some(job) = st.queue.pop_front() {
        if let Some(t) = st.tenants.get_mut(&job.tenant) {
            t.queued = t.queued.saturating_sub(1);
        }
        if job.tx.send(Err(ServeError::ShuttingDown)).is_err() {
            st.stats.results_dropped += 1;
        }
    }
}

/// Pops the front job plus up to `max_wave - 1` more jobs for the same
/// kernel (scanning the whole queue — kernels interleave in submission
/// order but a wave is one program image). Tenant queued counts drop
/// here: the jobs are now the wave's responsibility.
fn form_wave(st: &mut State, max_wave: usize) -> Option<(KernelSpec, Vec<PendingJob>)> {
    let front = st.queue.pop_front()?;
    let kernel_name = front.kernel.clone();
    let mut jobs = vec![front];
    let mut i = 0;
    while i < st.queue.len() && jobs.len() < max_wave.max(1) {
        if st.queue[i].kernel == kernel_name {
            if let Some(job) = st.queue.remove(i) {
                jobs.push(job);
                continue; // index i now holds the next element
            }
        }
        i += 1;
    }
    for job in &jobs {
        if let Some(t) = st.tenants.get_mut(&job.tenant) {
            t.queued = t.queued.saturating_sub(1);
        }
    }
    let Some(kernel) = st.kernels.get(&kernel_name).cloned() else {
        // Unregistered mid-flight (not currently possible, but never
        // hang a client over it).
        for job in jobs {
            let name = kernel_name.clone();
            if job
                .tx
                .send(Err(ServeError::UnknownKernel { name }))
                .is_err()
            {
                st.stats.results_dropped += 1;
            }
        }
        return None;
    };
    Some((kernel, jobs))
}

/// Milliseconds from `now` until `deadline`, zero if passed.
fn remaining_ms(now: Instant, deadline: Instant) -> u64 {
    deadline.saturating_duration_since(now).as_millis() as u64
}

fn waited_ms(job: &PendingJob, now: Instant) -> u64 {
    now.saturating_duration_since(job.accepted_at).as_millis() as u64
}

/// Executes one wave end to end: dispatch-time shedding, the device
/// run under the supervisor ladder, per-job outcome mapping, tenant
/// accounting, and result delivery.
fn run_wave(shared: &Shared, kernel: &KernelSpec, jobs: Vec<PendingJob>) {
    let cfg = &shared.config;
    let now = Instant::now();

    // Dispatch-time shedding: stale deadlines and tenants quarantined
    // since admission never reach the device.
    let mut runnable: Vec<PendingJob> = Vec::with_capacity(jobs.len());
    {
        let mut st = shared.lock();
        for job in jobs {
            let quarantined = st
                .tenants
                .get(&job.tenant)
                .map(|t| (t.quarantined, t.strikes))
                .filter(|(q, _)| *q);
            if let Some((_, strikes)) = quarantined {
                st.stats.rejected_quarantined += 1;
                deliver(
                    &mut st,
                    &job.tx,
                    Err(ServeError::TenantQuarantined { strikes }),
                );
                continue;
            }
            if let Some(dl) = job.deadline {
                if now >= dl {
                    st.stats.shed_deadline += 1;
                    let waited = waited_ms(&job, now);
                    deliver(
                        &mut st,
                        &job.tx,
                        Err(ServeError::DeadlineExceeded { waited_ms: waited }),
                    );
                    continue;
                }
            }
            runnable.push(job);
        }
    }
    if runnable.is_empty() {
        return;
    }

    // Per-job cycle clamps: the deadline's remaining wall time converted
    // to cycles. The wave cap is the *loosest* clamp so no job is
    // starved by a sibling's deadline; each job's own clamp is enforced
    // after the run.
    let base_cap = cfg.lane.max_cycles;
    let mut wave_cap = 0u64;
    let mut chaos: Option<ChaosSpec> = None;
    let mut clamps: Vec<Option<u64>> = Vec::with_capacity(runnable.len());
    for job in &runnable {
        let clamp = match (job.deadline, cfg.cycles_per_ms) {
            (Some(dl), cpm) if cpm > 0 => {
                Some(remaining_ms(now, dl).saturating_mul(cpm).clamp(1, base_cap))
            }
            _ => None,
        };
        // A complete resource certificate bounds every clean run of
        // this kernel, so the certified cost also caps the job's share
        // of the wave: cutting off at the bound can never cancel a
        // legitimate run, only a soundness violation (DESIGN.md §9.1).
        let cert_cap = kernel
            .image
            .cert
            .as_ref()
            .and_then(|c| c.cycle_bound(job.payload.len()))
            .map_or(base_cap, |b| b.clamp(1, base_cap));
        wave_cap = wave_cap.max(clamp.unwrap_or(base_cap).min(cert_cap));
        clamps.push(clamp);
        if chaos.is_none() {
            chaos = job.chaos;
        }
    }
    let chaos = chaos.unwrap_or_default();
    let lane = LaneConfig {
        max_cycles: wave_cap,
        chaos_fault_at: chaos.fault_at,
        chaos_panic_at: chaos.panic_at,
        chaos_transient: chaos.transient,
        ..cfg.lane.clone()
    };
    let opts = UdpRunOptions {
        banks_per_lane: kernel.banks_per_lane,
        lane,
        parallel: cfg.parallel,
        verify: false, // verified once at registration
        supervise: Some(SupervisorOptions {
            fallback: kernel.fallback.clone(),
            ..cfg.supervisor.clone()
        }),
        backend: shared.backend,
        ..UdpRunOptions::default()
    };
    let inputs: Vec<&[u8]> = runnable.iter().map(|j| j.payload.as_slice()).collect();
    let staging = Staging::default();
    // The kernel's predecoded table is shared with the engine — decoded
    // once at registration, reused by every wave of every job.
    let report = Udp::new().try_run_data_parallel_shared(
        &kernel.image,
        &kernel.decoded,
        &inputs,
        &staging,
        &opts,
    );

    let done = Instant::now();
    let mut st = shared.lock();
    st.stats.waves += 1;
    let mut report = match report {
        Ok(rep) => rep,
        Err(e) => {
            // Pre-flight refusal (cannot happen for registered kernels;
            // typed either way).
            for job in runnable {
                deliver(&mut st, &job.tx, Err(ServeError::Sim(e.clone())));
            }
            return;
        }
    };

    for (i, job) in runnable.into_iter().enumerate() {
        let lane_rep = &report.lanes[i];
        let cycles = lane_rep.cycles;
        // Quota accounting: modeled cycles, charged to the tenant.
        st.stats.bytes_in += job.payload.len() as u64;
        st.stats.cycles += cycles;
        if let Some(t) = st.tenants.get_mut(&job.tenant) {
            t.cycles_used = t.cycles_used.saturating_add(cycles);
            shared.journal_append(&JournalRecord::Charge {
                tenant: job.tenant.clone(),
                cycles,
            });
        }
        // Deadline enforcement at completion: a late result is dropped,
        // and a run cancelled by its deadline-derived cycle clamp is a
        // deadline miss, not a tenant fault.
        let clamp = clamps[i];
        let deadline_missed = match job.deadline {
            Some(dl) => done >= dl || clamp.is_some_and(|c| cycles >= c),
            None => false,
        };
        let deadline_cancelled = clamp.is_some_and(|c| c < base_cap)
            && matches!(
                &lane_rep.status,
                udp_sim::LaneStatus::Fault(FaultKind::CycleBudget { .. })
            );
        if deadline_missed || deadline_cancelled {
            st.stats.shed_deadline += 1;
            let waited = waited_ms(&job, done);
            deliver(
                &mut st,
                &job.tx,
                Err(ServeError::DeadlineExceeded { waited_ms: waited }),
            );
            continue;
        }
        // Move the lane's output out of the report instead of cloning
        // it — this is the submit path's last deep copy of job data.
        let output = std::mem::take(&mut report.lanes[i].output);
        let result = match &report.health.outcomes[i] {
            ChunkOutcome::Clean => Ok(JobOutput {
                output,
                cycles,
                outcome: JobOutcome::Clean,
            }),
            ChunkOutcome::Recovered { attempts } => Ok(JobOutput {
                output,
                cycles,
                outcome: JobOutcome::Recovered {
                    attempts: *attempts,
                },
            }),
            ChunkOutcome::Fallback => Ok(JobOutput {
                output,
                cycles,
                outcome: JobOutcome::Fallback,
            }),
            ChunkOutcome::Quarantined(reason) => {
                // A poisoned chunk: strike the tenant, and past the
                // strike limit quarantine the tenant itself.
                st.stats.quarantined_jobs += 1;
                if let Some(t) = st.tenants.get_mut(&job.tenant) {
                    t.strikes += 1;
                    shared.journal_append(&JournalRecord::Strike {
                        tenant: job.tenant.clone(),
                    });
                    if !t.quarantined && t.strikes >= shared.config.quarantine_strikes.max(1) {
                        t.quarantined = true;
                        st.stats.tenants_quarantined += 1;
                        shared.journal_append(&JournalRecord::Quarantine {
                            tenant: job.tenant.clone(),
                        });
                    }
                }
                Err(ServeError::JobQuarantined {
                    fault: reason.fault.name().to_string(),
                })
            }
        };
        if result.is_ok() {
            st.stats.completed += 1;
        }
        deliver(&mut st, &job.tx, result);
    }
}

/// Sends a result; a hung-up client (dropped ticket) is counted, not
/// an error — mid-job disconnects are business as usual for a service.
fn deliver(st: &mut State, tx: &mpsc::Sender<JobResult>, result: JobResult) {
    if tx.send(result).is_err() {
        st.stats.results_dropped += 1;
    }
}

/// Human-readable message from a contained panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn defaults_are_valid() {
        let cfg = ServeConfig::default();
        assert!(cfg.supervisor.validate().is_ok());
        assert!(cfg.queue_capacity > 0);
        assert!(cfg.max_wave >= 1);
    }

    #[test]
    fn csv_kernel_builds_and_verifies() {
        let (image, fallback) = csv_kernel().expect("builtin kernel");
        assert!(image.executable);
        assert_eq!(fallback.name(), "csv-framing");
    }

    #[test]
    fn remaining_ms_saturates() {
        let now = Instant::now();
        assert_eq!(remaining_ms(now + Duration::from_secs(1), now), 0);
        assert!(remaining_ms(now, now + Duration::from_millis(50)) <= 50);
    }
}

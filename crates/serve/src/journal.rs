//! Write-ahead journal for warm restarts (DESIGN.md §11.3).
//!
//! The runtime's durable state is small and additive: which kernels
//! are registered (by source + layout, so the artifact store can
//! rebuild them), and each tenant's admission-relevant accounting —
//! quota, cycles charged, quarantine strikes. Every mutation appends
//! one framed record here *while the state lock is held*, and
//! [`replay`] reads them back so a restarted service admits and
//! refuses exactly like the one that died.
//!
//! ## Framing
//!
//! ```text
//! record = u32 payload_len | u32 crc32(payload) | payload
//! payload = u8 tag | fields (little-endian, u32-length-prefixed strings)
//! ```
//!
//! A crash can tear the last record (partial write); [`replay`] treats
//! any record that fails the length, CRC, or decode check as the torn
//! tail: everything before it is the replayed state, everything from
//! it on is discarded (the caller truncates the file to
//! [`Replay::valid_bytes`] before appending again). Torn tails are the
//! *expected* crash artifact — they are reported, not errored.
//!
//! Journal appends are deliberately infallible at the call site: a
//! full disk mid-flight marks the writer dead (future restarts lose
//! recency, which the operator is told about once) rather than turning
//! every job completion into an error. Durability is best-effort;
//! *integrity* of what was durably written is not.

use crate::error::ServeError;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use udp_asm::LayoutOptions;
use udp_store::crc32;

/// Cap on one record's payload (a registered kernel's source dominates;
/// 32 MB is far past any real program text).
pub const MAX_RECORD: usize = 32 << 20;

const TAG_REGISTER_KERNEL: u8 = 1;
const TAG_SET_QUOTA: u8 = 2;
const TAG_CHARGE: u8 = 3;
const TAG_STRIKE: u8 = 4;
const TAG_QUARANTINE: u8 = 5;
const TAG_RELEASE: u8 = 6;
const TAG_REFILL: u8 = 7;

/// One durable state mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A kernel was registered from the artifact store. Carries the
    /// full provenance — source text, layout, fallback tag — so replay
    /// can rebuild the artifact even if the store was wiped.
    RegisterKernel {
        /// Service-visible kernel name.
        name: String,
        /// Canonical `udp-asm` source text.
        source: String,
        /// Layout the source is assembled under.
        layout: LayoutOptions,
        /// `ReferenceFallback::name()` of the builtin fallback to
        /// re-attach on replay, if any.
        fallback: Option<String>,
    },
    /// A tenant's quota was set or replaced.
    SetQuota {
        /// Tenant name.
        tenant: String,
        /// `TenantQuota::max_queued`.
        max_queued: u64,
        /// `TenantQuota::cycle_budget`.
        cycle_budget: Option<u64>,
    },
    /// Modeled cycles were charged to a tenant.
    Charge {
        /// Tenant name.
        tenant: String,
        /// Cycles charged.
        cycles: u64,
    },
    /// A quarantine strike was recorded against a tenant.
    Strike {
        /// Tenant name.
        tenant: String,
    },
    /// The tenant itself was quarantined.
    Quarantine {
        /// Tenant name.
        tenant: String,
    },
    /// An operator lifted a tenant's quarantine (strikes reset).
    Release {
        /// Tenant name.
        tenant: String,
    },
    /// An operator credited cycles back to a tenant's account.
    Refill {
        /// Tenant name.
        tenant: String,
        /// Cycles credited.
        cycles: u64,
    },
}

fn put_str(v: &mut Vec<u8>, s: &str) {
    v.extend_from_slice(&(s.len() as u32).to_le_bytes());
    v.extend_from_slice(s.as_bytes());
}

/// Encodes a record's payload (no framing).
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut v = Vec::new();
    match rec {
        JournalRecord::RegisterKernel {
            name,
            source,
            layout,
            fallback,
        } => {
            v.push(TAG_REGISTER_KERNEL);
            put_str(&mut v, name);
            put_str(&mut v, source);
            v.extend_from_slice(&(layout.window_words as u64).to_le_bytes());
            v.push(u8::from(layout.share_actions));
            v.push(u8::from(layout.uap_attach));
            v.push(u8::from(layout.self_check));
            match fallback {
                Some(tag) => {
                    v.push(1);
                    put_str(&mut v, tag);
                }
                None => v.push(0),
            }
        }
        JournalRecord::SetQuota {
            tenant,
            max_queued,
            cycle_budget,
        } => {
            v.push(TAG_SET_QUOTA);
            put_str(&mut v, tenant);
            v.extend_from_slice(&max_queued.to_le_bytes());
            match cycle_budget {
                Some(b) => {
                    v.push(1);
                    v.extend_from_slice(&b.to_le_bytes());
                }
                None => v.push(0),
            }
        }
        JournalRecord::Charge { tenant, cycles } => {
            v.push(TAG_CHARGE);
            put_str(&mut v, tenant);
            v.extend_from_slice(&cycles.to_le_bytes());
        }
        JournalRecord::Strike { tenant } => {
            v.push(TAG_STRIKE);
            put_str(&mut v, tenant);
        }
        JournalRecord::Quarantine { tenant } => {
            v.push(TAG_QUARANTINE);
            put_str(&mut v, tenant);
        }
        JournalRecord::Release { tenant } => {
            v.push(TAG_RELEASE);
            put_str(&mut v, tenant);
        }
        JournalRecord::Refill { tenant, cycles } => {
            v.push(TAG_REFILL);
            put_str(&mut v, tenant);
            v.extend_from_slice(&cycles.to_le_bytes());
        }
    }
    v
}

/// A bounds-checked little-endian reader (decode side).
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len())?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Some(u64::from_le_bytes(a))
    }
    fn string(&mut self) -> Option<String> {
        let b = self.take(4)?;
        let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        if len > MAX_RECORD {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Decodes one record payload. `None` means the bytes are not a valid
/// record (replay treats that as the torn tail).
pub fn decode_record(buf: &[u8]) -> Option<JournalRecord> {
    let mut r = Rd { buf, pos: 0 };
    let rec = match r.u8()? {
        TAG_REGISTER_KERNEL => {
            let name = r.string()?;
            let source = r.string()?;
            let window_words = r.u64()? as usize;
            let share_actions = r.u8()? != 0;
            let uap_attach = r.u8()? != 0;
            let self_check = r.u8()? != 0;
            let fallback = match r.u8()? {
                0 => None,
                1 => Some(r.string()?),
                _ => return None,
            };
            JournalRecord::RegisterKernel {
                name,
                source,
                layout: LayoutOptions {
                    window_words,
                    share_actions,
                    uap_attach,
                    self_check,
                },
                fallback,
            }
        }
        TAG_SET_QUOTA => JournalRecord::SetQuota {
            tenant: r.string()?,
            max_queued: r.u64()?,
            cycle_budget: r.opt_u64()?,
        },
        TAG_CHARGE => JournalRecord::Charge {
            tenant: r.string()?,
            cycles: r.u64()?,
        },
        TAG_STRIKE => JournalRecord::Strike {
            tenant: r.string()?,
        },
        TAG_QUARANTINE => JournalRecord::Quarantine {
            tenant: r.string()?,
        },
        TAG_RELEASE => JournalRecord::Release {
            tenant: r.string()?,
        },
        TAG_REFILL => JournalRecord::Refill {
            tenant: r.string()?,
            cycles: r.u64()?,
        },
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some(rec)
}

/// The result of replaying a journal file.
#[derive(Debug)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte offset of the end of the last intact record — the length
    /// the caller truncates the file to before resuming appends.
    pub valid_bytes: u64,
    /// Why the tail (if any) was discarded: the expected artifact of a
    /// crash mid-append.
    pub torn: Option<String>,
}

/// Replays a journal file. A missing file is an empty journal (cold
/// start); a torn tail is reported, not errored — only I/O failures
/// are. Never panics on hostile bytes.
pub fn replay(path: &Path) -> Result<Replay, ServeError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                records: Vec::new(),
                valid_bytes: 0,
                torn: None,
            })
        }
        Err(e) => {
            return Err(ServeError::Store {
                detail: format!("read journal {}: {e}", path.display()),
            })
        }
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn = None;
    while pos < bytes.len() {
        let remain = bytes.len() - pos;
        if remain < 8 {
            torn = Some(format!("{remain}-byte partial record header"));
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_RECORD {
            torn = Some(format!("implausible record length {len}"));
            break;
        }
        if remain - 8 < len {
            torn = Some(format!(
                "partial record payload ({} of {len} bytes)",
                remain - 8
            ));
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            torn = Some("record checksum mismatch".to_string());
            break;
        }
        let Some(rec) = decode_record(payload) else {
            torn = Some("undecodable record".to_string());
            break;
        };
        records.push(rec);
        pos += 8 + len;
    }
    Ok(Replay {
        records,
        valid_bytes: pos as u64,
        torn,
    })
}

/// Appends framed records to a journal file. Append failures mark the
/// writer dead (reported once on stderr) instead of erroring every
/// caller — see the module docs for why.
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    sync: bool,
    dead: bool,
}

impl JournalWriter {
    /// Opens `path` for appending (creating it if needed), truncating
    /// it to `valid_bytes` first — discarding the torn tail [`replay`]
    /// reported.
    pub fn open(
        path: impl AsRef<Path>,
        valid_bytes: u64,
        sync: bool,
    ) -> Result<JournalWriter, ServeError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ServeError::Store {
                detail: format!("open journal {}: {e}", path.display()),
            })?;
        let len = file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| ServeError::Store {
                detail: format!("stat journal {}: {e}", path.display()),
            })?;
        if len > valid_bytes {
            file.set_len(valid_bytes).map_err(|e| ServeError::Store {
                detail: format!("truncate journal {}: {e}", path.display()),
            })?;
        }
        Ok(JournalWriter {
            file,
            path,
            sync,
            dead: false,
        })
    }

    /// True once an append has failed; the journal is no longer being
    /// extended (state recency is lost, integrity is not).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Appends one framed record, best-effort.
    pub fn append(&mut self, rec: &JournalRecord) {
        if self.dead {
            return;
        }
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let wrote = self.file.write_all(&frame).and_then(|()| {
            if self.sync {
                self.file.sync_data()
            } else {
                Ok(())
            }
        });
        if let Err(e) = wrote {
            self.dead = true;
            eprintln!(
                "udp-serve: journal {} failed ({e}); state changes are no longer durable",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::RegisterKernel {
                name: "csv".into(),
                source: "state s0 consume\n".into(),
                layout: LayoutOptions::default(),
                fallback: Some("csv-framing".into()),
            },
            JournalRecord::RegisterKernel {
                name: "bare".into(),
                source: "x".into(),
                layout: LayoutOptions::with_banks(4),
                fallback: None,
            },
            JournalRecord::SetQuota {
                tenant: "alice".into(),
                max_queued: 8,
                cycle_budget: Some(1_000_000),
            },
            JournalRecord::SetQuota {
                tenant: "bob".into(),
                max_queued: 64,
                cycle_budget: None,
            },
            JournalRecord::Charge {
                tenant: "alice".into(),
                cycles: 12_345,
            },
            JournalRecord::Strike {
                tenant: "mallory".into(),
            },
            JournalRecord::Quarantine {
                tenant: "mallory".into(),
            },
            JournalRecord::Release {
                tenant: "mallory".into(),
            },
            JournalRecord::Refill {
                tenant: "alice".into(),
                cycles: 500,
            },
        ]
    }

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "udp-journal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn every_record_round_trips() {
        for rec in sample_records() {
            let enc = encode_record(&rec);
            assert_eq!(decode_record(&enc), Some(rec.clone()), "{rec:?}");
            // Truncation at every cut is refused, not panicked on.
            for cut in 0..enc.len() {
                assert_eq!(decode_record(&enc[..cut]), None, "cut {cut} of {rec:?}");
            }
            // Trailing garbage is refused too.
            let mut long = enc.clone();
            long.push(0);
            assert_eq!(decode_record(&long), None);
        }
    }

    #[test]
    fn write_then_replay_is_identity() {
        let path = temp_journal("identity");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path, 0, false).unwrap();
            for rec in sample_records() {
                w.append(&rec);
            }
            assert!(!w.is_dead());
        }
        let rep = replay(&path).unwrap();
        assert_eq!(rep.records, sample_records());
        assert_eq!(rep.torn, None);
        assert_eq!(
            rep.valid_bytes,
            std::fs::metadata(&path).unwrap().len(),
            "clean journal replays to its full length"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_are_detected_and_truncated_at_reopen() {
        let path = temp_journal("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path, 0, false).unwrap();
            for rec in sample_records() {
                w.append(&rec);
            }
        }
        let full = std::fs::read(&path).unwrap();
        let clean = replay(&path).unwrap();
        assert_eq!(clean.torn, None);

        // Cut the file at every byte: replay must never panic, never
        // lose an intact prefix record, and must flag any real cut.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let rep = replay(&path).unwrap();
            assert!(rep.records.len() <= clean.records.len());
            assert_eq!(
                rep.records[..],
                clean.records[..rep.records.len()],
                "prefix property at cut {cut}"
            );
            assert!(rep.valid_bytes <= cut as u64);
            if (cut as u64) != rep.valid_bytes {
                assert!(rep.torn.is_some(), "cut {cut} left silent garbage");
            }
            // Reopening truncates the torn tail away.
            drop(JournalWriter::open(&path, rep.valid_bytes, false).unwrap());
            assert_eq!(std::fs::metadata(&path).unwrap().len(), rep.valid_bytes);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_record_drops_the_suffix_not_the_prefix() {
        let path = temp_journal("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path, 0, false).unwrap();
            for rec in sample_records() {
                w.append(&rec);
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert!(rep.torn.is_some());
        assert!(rep.records.len() < sample_records().len());
        assert_eq!(rep.records[..], sample_records()[..rep.records.len()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_a_cold_start() {
        let rep = replay(Path::new("/nonexistent/udp-journal")).unwrap();
        assert!(rep.records.is_empty());
        assert_eq!(rep.valid_bytes, 0);
        assert_eq!(rep.torn, None);
    }
}

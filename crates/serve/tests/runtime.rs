//! Service-runtime contracts (DESIGN.md §10): typed admission control,
//! quota enforcement, deadline shedding, per-tenant quarantine, and the
//! exactly-once delivery guarantee through drain and abort shutdowns.

use std::sync::Arc;
use std::time::Duration;
use udp_serve::{
    ChaosSpec, JobOutcome, JobSpec, OverloadScope, ServeConfig, ServeError, ServeRuntime, Shutdown,
    TenantQuota,
};
use udp_sim::SimError;

fn small_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 4,
        max_wave: 4,
        parallel: false,
        default_quota: TenantQuota {
            max_queued: 2,
            cycle_budget: None,
        },
        ..ServeConfig::default()
    }
}

fn csv_job(tenant: &str, payload: &[u8]) -> JobSpec {
    JobSpec::new(tenant, "csv", payload.to_vec())
}

#[test]
fn jobs_complete_with_kernel_output() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    let t = handle.submit(csv_job("alice", b"a,b\n")).unwrap();
    let out = t.wait().unwrap();
    assert_eq!(out.output, b"a\x1fb\x1f\x1e");
    assert_eq!(out.outcome, JobOutcome::Clean);
    assert!(out.cycles > 0);
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.accepted, 1);
}

#[test]
fn unknown_kernel_and_post_shutdown_submissions_are_typed() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    match handle.submit(csv_job("alice", b"x").kernel("nope")) {
        Err(ServeError::UnknownKernel { name }) => assert_eq!(name, "nope"),
        other => panic!("expected UnknownKernel, got {other:?}"),
    }
    handle.begin_shutdown(Shutdown::Drain);
    match handle.submit(csv_job("alice", b"x,y\n")) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

trait SpecExt {
    fn kernel(self, k: &str) -> JobSpec;
}

impl SpecExt for JobSpec {
    fn kernel(mut self, k: &str) -> JobSpec {
        self.kernel = k.to_string();
        self
    }
}

#[test]
fn bounded_queues_shed_with_typed_overload() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    handle.pause();
    // Tenant bound (2) fires first for a single tenant.
    let _a = handle.submit(csv_job("greedy", b"1\n")).unwrap();
    let _b = handle.submit(csv_job("greedy", b"2\n")).unwrap();
    match handle.submit(csv_job("greedy", b"3\n")) {
        Err(ServeError::Overloaded {
            scope: OverloadScope::Tenant,
            queued: 2,
            capacity: 2,
        }) => {}
        other => panic!("expected tenant Overloaded, got {other:?}"),
    }
    // Fill the global queue (capacity 4) with other tenants.
    let _c = handle.submit(csv_job("t1", b"4\n")).unwrap();
    let _d = handle.submit(csv_job("t2", b"5\n")).unwrap();
    match handle.submit(csv_job("t3", b"6\n")) {
        Err(ServeError::Overloaded {
            scope: OverloadScope::Queue,
            queued: 4,
            capacity: 4,
        }) => {}
        other => panic!("expected queue Overloaded, got {other:?}"),
    }
    handle.resume();
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.shed_overload, 2);
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.completed, 4);
}

#[test]
fn cycle_quota_exhausts_and_refills() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    // The csv kernel is certified, so admission reserves the certified
    // worst case up front: a budget covering exactly one job admits the
    // first submission and refuses the second by forecast.
    let cert = handle.kernel_cert("csv").expect("csv kernel is certified");
    let bound = cert.cycle_bound(4).expect("complete certificate");
    let budget = bound + 1;
    handle.set_quota(
        "metered",
        TenantQuota {
            max_queued: 8,
            cycle_budget: Some(budget),
        },
    );
    handle
        .submit(csv_job("metered", b"a,b\n"))
        .unwrap()
        .wait()
        .unwrap();
    let used = match handle.submit(csv_job("metered", b"c,d\n")) {
        Err(ServeError::QuotaExhausted { used, budget: b }) if b == budget => used,
        other => panic!("expected QuotaExhausted, got {other:?}"),
    };
    // Actual usage is charged, and it respects the certified bound.
    assert!(used >= 1);
    assert!(used <= bound);
    // An operator refill restores service.
    handle.refill_quota("metered", used);
    handle
        .submit(csv_job("metered", b"c,d\n"))
        .unwrap()
        .wait()
        .unwrap();
    rt.shutdown(Shutdown::Drain);
}

#[test]
fn expired_deadlines_shed_and_outputs_are_never_delivered_late() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    handle.pause();
    let doomed = handle
        .submit(csv_job("d", b"x,y\n").with_deadline(Duration::from_millis(1)))
        .unwrap();
    let healthy = handle
        .submit(csv_job("d", b"x,y\n").with_deadline(Duration::from_secs(60)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    handle.resume();
    match doomed.wait() {
        Err(ServeError::DeadlineExceeded { waited_ms }) => assert!(waited_ms >= 1),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(healthy.wait().unwrap().output, b"x\x1fy\x1f\x1e");
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn deadline_shedding_is_not_a_tenant_strike() {
    let rt = ServeRuntime::start_with_builtin_kernels(ServeConfig {
        quarantine_strikes: 1,
        ..small_config()
    })
    .unwrap();
    let handle = rt.handle();
    handle.pause();
    let doomed = handle
        .submit(csv_job("hurried", b"x,y\n").with_deadline(Duration::from_millis(1)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    handle.resume();
    assert!(matches!(
        doomed.wait(),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    // The tenant keeps full service: a missed deadline is the queue's
    // fault, not a poison kernel.
    let out = handle.submit(csv_job("hurried", b"x,y\n")).unwrap().wait();
    assert_eq!(out.unwrap().output, b"x\x1fy\x1f\x1e");
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.tenants_quarantined, 0);
}

#[test]
fn poison_tenant_quarantines_alone() {
    let rt = ServeRuntime::start_with_builtin_kernels(ServeConfig {
        quarantine_strikes: 1,
        ..small_config()
    })
    .unwrap();
    let handle = rt.handle();
    // A fallback-less copy of the kernel: persistent chaos has no
    // second rung, so the ladder ends in quarantine.
    let (image, _) = udp_serve::csv_kernel().unwrap();
    handle.register_kernel("csv-raw", image, None).unwrap();
    handle.pause();
    let clean = handle.submit(csv_job("innocent", b"k,v\n")).unwrap();
    let long = udp_workloads::lineitem_csv(1024, 7);
    let mut poison = JobSpec::new("poison", "csv-raw", long);
    poison.chaos = Some(ChaosSpec {
        fault_at: Some(300),
        panic_at: None,
        transient: false,
    });
    let poison_ticket = handle.submit(poison).unwrap();
    handle.resume();

    match poison_ticket.wait() {
        Err(ServeError::JobQuarantined { fault }) => assert_eq!(fault, "chaos-injected"),
        other => panic!("expected JobQuarantined, got {other:?}"),
    }
    assert_eq!(clean.wait().unwrap().output, b"k\x1fv\x1f\x1e");
    // The offender is out...
    match handle.submit(csv_job("poison", b"x,y\n")) {
        Err(ServeError::TenantQuarantined { strikes: 1 }) => {}
        other => panic!("expected TenantQuarantined, got {other:?}"),
    }
    // ...until an operator releases it.
    handle.release_quarantine("poison");
    let out = handle.submit(csv_job("poison", b"x,y\n")).unwrap().wait();
    assert_eq!(out.unwrap().output, b"x\x1fy\x1f\x1e");
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.quarantined_jobs, 1);
    assert_eq!(stats.tenants_quarantined, 0, "released");
}

#[test]
fn transient_chaos_recovers_on_the_retry_rung() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    let long = udp_workloads::lineitem_csv(1024, 9);
    let mut spec = JobSpec::new("flaky", "csv", long);
    spec.chaos = Some(ChaosSpec {
        fault_at: Some(300),
        panic_at: None,
        transient: true,
    });
    match rt.handle().submit(spec).unwrap().wait() {
        Ok(out) => assert!(matches!(out.outcome, JobOutcome::Recovered { .. })),
        other => panic!("expected a recovered output, got {other:?}"),
    }
    // The tenant is unscathed.
    assert!(handle.submit(csv_job("flaky", b"x,y\n")).is_ok());
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.tenants_quarantined, 0);
}

#[test]
fn drain_completes_queued_jobs_and_abort_sheds_them() {
    // Drain: queued jobs still execute.
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    handle.pause();
    let t1 = handle.submit(csv_job("a", b"1,2\n")).unwrap();
    let t2 = handle.submit(csv_job("b", b"3,4\n")).unwrap();
    handle.begin_shutdown(Shutdown::Drain);
    assert_eq!(t1.wait().unwrap().output, b"1\x1f2\x1f\x1e");
    assert_eq!(t2.wait().unwrap().output, b"3\x1f4\x1f\x1e");
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, 2);

    // Abort: queued jobs complete with ShuttingDown — typed, never
    // hung, exactly once.
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    handle.pause();
    let t1 = handle.submit(csv_job("a", b"1,2\n")).unwrap();
    let t2 = handle.submit(csv_job("b", b"3,4\n")).unwrap();
    let stats = rt.shutdown(Shutdown::Abort);
    assert!(matches!(t1.wait(), Err(ServeError::ShuttingDown)));
    assert!(matches!(t2.wait(), Err(ServeError::ShuttingDown)));
    assert_eq!(stats.completed, 0);
}

#[test]
fn dropped_tickets_are_counted_not_fatal() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    handle.pause();
    drop(handle.submit(csv_job("gone", b"1,2\n")).unwrap());
    let kept = handle.submit(csv_job("here", b"3,4\n")).unwrap();
    handle.resume();
    assert_eq!(kept.wait().unwrap().output, b"3\x1f4\x1f\x1e");
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.results_dropped, 1);
    assert_eq!(stats.completed, 2, "the abandoned job still executed");
}

#[test]
fn invalid_supervisor_template_fails_startup() {
    let cfg = ServeConfig {
        supervisor: udp_sim::SupervisorOptions {
            backoff_base_ms: 10,
            backoff_cap_ms: 1,
            ..udp_sim::SupervisorOptions::default()
        },
        ..ServeConfig::default()
    };
    match ServeRuntime::start(cfg).map(|_| ()) {
        Err(ServeError::Sim(SimError::SupervisorConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 1,
        })) => {}
        other => panic!("expected SupervisorConfig rejection, got {other:?}"),
    }
}

#[test]
fn kernel_registration_refuses_non_executable_images() {
    let rt = ServeRuntime::start(ServeConfig::default()).unwrap();
    let handle = rt.handle();
    let (image, _) = udp_serve::csv_kernel().unwrap();
    // A size-model-only layout is refused at registration — a service
    // never loads what the simulator would reject at dispatch.
    let mut broken = (*image).clone();
    broken.executable = false;
    match handle.register_kernel("bad", Arc::new(broken), None) {
        Err(ServeError::Sim(SimError::NotExecutable)) => {}
        other => panic!("expected Sim(NotExecutable), got {other:?}"),
    }
    handle.register_kernel("good", image, None).unwrap();
    rt.shutdown(Shutdown::Abort);
}

#[test]
fn stats_account_for_bytes_and_cycles() {
    let rt = ServeRuntime::start_with_builtin_kernels(small_config()).unwrap();
    let handle = rt.handle();
    let out = handle
        .submit(csv_job("t", b"a,b\n"))
        .unwrap()
        .wait()
        .unwrap();
    let stats = handle.stats();
    assert_eq!(stats.bytes_in, 4);
    assert_eq!(stats.cycles, out.cycles);
    assert!(stats.waves >= 1);
    rt.shutdown(Shutdown::Drain);
}

//! End-to-end Unix-socket transport tests (DESIGN.md §10.4): the
//! length-prefixed frame protocol, typed remote errors, protocol
//! violation handling, and remote-initiated drain shutdown.
#![cfg(unix)]

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;
use udp_serve::{
    JobOutcome, JobSpec, Request, ServeClient, ServeConfig, ServeRuntime, Shutdown, SocketConfig,
    SocketServer,
};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("udp-serve-test-{}-{tag}.sock", std::process::id()))
}

fn start_server(tag: &str) -> (ServeRuntime, SocketServer, PathBuf) {
    let rt = ServeRuntime::start_with_builtin_kernels(ServeConfig {
        parallel: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let path = sock_path(tag);
    let server = SocketServer::bind(
        &path,
        rt.handle(),
        SocketConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            ..SocketConfig::default()
        },
    )
    .unwrap();
    (rt, server, path)
}

const TOKEN: &[u8] = b"pre-shared-test-token";

fn start_authed_server(tag: &str) -> (ServeRuntime, SocketServer, PathBuf) {
    let rt = ServeRuntime::start_with_builtin_kernels(ServeConfig {
        parallel: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let path = sock_path(tag);
    let server = SocketServer::bind(
        &path,
        rt.handle(),
        SocketConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            auth_token: Some(TOKEN.to_vec()),
        },
    )
    .unwrap();
    (rt, server, path)
}

#[test]
fn auth_handshake_gates_every_request() {
    let (rt, server, path) = start_authed_server("auth");

    // The right token admits the connection; work flows normally.
    let mut client = ServeClient::connect_with_token(&path, CLIENT_TIMEOUT, TOKEN).unwrap();
    let out = client
        .submit(JobSpec::new("alice", "csv", b"a,b\n".to_vec()))
        .unwrap()
        .unwrap();
    assert_eq!(out.output, b"a\x1fb\x1f\x1e");

    // A wrong token gets the typed Unauthorized error.
    assert!(matches!(
        ServeClient::connect_with_token(&path, CLIENT_TIMEOUT, b"wrong"),
        Err(udp_serve::ServeError::Unauthorized)
    ));

    // Skipping the handshake entirely: the first real request is
    // answered Unauthorized (code 13) and the connection is closed.
    let mut bare = ServeClient::connect(&path, CLIENT_TIMEOUT).unwrap();
    let remote = bare.call(&Request::Ping).unwrap().unwrap_err();
    assert_eq!(remote.code, udp_serve::ServeError::Unauthorized.code());
    assert!(
        bare.call(&Request::Ping).is_err(),
        "connection must be closed after an unauthenticated request"
    );

    server.stop();
    rt.shutdown(Shutdown::Drain);
}

#[test]
fn short_and_malformed_auth_frames_are_refused() {
    let (rt, server, path) = start_authed_server("auth-short");

    // An AUTH frame whose token length field overruns the frame.
    let mut vandal = UnixStream::connect(&path).unwrap();
    let body = [0x04u8, 10, 0, b'x']; // OP_AUTH, len=10, 1 byte present
    vandal
        .write_all(&(body.len() as u32).to_le_bytes())
        .unwrap();
    vandal.write_all(&body).unwrap();
    vandal.flush().unwrap();
    drop(vandal);

    // An empty-token AUTH against a non-empty server token.
    assert!(matches!(
        ServeClient::connect_with_token(&path, CLIENT_TIMEOUT, b""),
        Err(udp_serve::ServeError::Unauthorized)
    ));

    // The server is still healthy for honest clients.
    let mut client = ServeClient::connect_with_token(&path, CLIENT_TIMEOUT, TOKEN).unwrap();
    client.call(&Request::Ping).unwrap().unwrap();

    server.stop();
    rt.shutdown(Shutdown::Drain);
}

#[test]
fn submit_ping_and_remote_errors_round_trip() {
    let (rt, server, path) = start_server("rt");
    let mut client = ServeClient::connect(&path, CLIENT_TIMEOUT).unwrap();
    client.call(&Request::Ping).unwrap().unwrap();

    let out = client
        .submit(JobSpec::new("remote", "csv", b"a,b\n".to_vec()))
        .unwrap()
        .unwrap();
    assert_eq!(out.output, b"a\x1fb\x1f\x1e");
    assert_eq!(out.outcome, JobOutcome::Clean);

    // An unknown kernel comes back as a typed RemoteError, and the
    // connection stays usable afterwards.
    let remote = client
        .submit(JobSpec::new("remote", "missing", b"x".to_vec()))
        .unwrap()
        .unwrap_err();
    assert!(
        remote.message.contains("missing"),
        "error names the kernel: {}",
        remote.message
    );
    client.call(&Request::Ping).unwrap().unwrap();

    server.stop();
    rt.shutdown(Shutdown::Drain);
}

#[test]
fn concurrent_clients_are_served_independently() {
    let (rt, server, path) = start_server("cc");
    let mut threads = Vec::new();
    for i in 0..4u32 {
        let path = path.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(&path, CLIENT_TIMEOUT).unwrap();
            let payload = format!("k{i},v{i}\n").into_bytes();
            let out = client
                .submit(JobSpec::new(format!("t{i}"), "csv", payload))
                .unwrap()
                .unwrap();
            let expect = format!("k{i}\x1fv{i}\x1f\x1e").into_bytes();
            assert_eq!(out.output, expect);
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    server.stop();
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, 4);
}

#[test]
fn garbage_frames_do_not_take_down_the_server() {
    let (rt, server, path) = start_server("gf");

    // A hostile frame length is refused before any allocation.
    let mut vandal = UnixStream::connect(&path).unwrap();
    vandal.write_all(&u32::MAX.to_le_bytes()).unwrap();
    vandal.flush().unwrap();
    drop(vandal);

    // A well-formed length wrapping an unknown opcode.
    let mut vandal = UnixStream::connect(&path).unwrap();
    vandal.write_all(&3u32.to_le_bytes()).unwrap();
    vandal.write_all(&[0xFF, 0x00, 0x00]).unwrap();
    vandal.flush().unwrap();
    drop(vandal);

    // A client that disconnects mid-frame.
    let mut vandal = UnixStream::connect(&path).unwrap();
    vandal.write_all(&8u32.to_le_bytes()).unwrap();
    vandal.write_all(&[1, 2, 3]).unwrap(); // 3 of 8 promised bytes
    drop(vandal);

    // Honest clients are unaffected.
    let mut client = ServeClient::connect(&path, CLIENT_TIMEOUT).unwrap();
    let out = client
        .submit(JobSpec::new("honest", "csv", b"p,q\n".to_vec()))
        .unwrap()
        .unwrap();
    assert_eq!(out.output, b"p\x1fq\x1f\x1e");

    server.stop();
    rt.shutdown(Shutdown::Drain);
}

#[test]
fn remote_shutdown_drains_the_runtime() {
    let (rt, server, path) = start_server("sd");
    let mut client = ServeClient::connect(&path, CLIENT_TIMEOUT).unwrap();
    client
        .submit(JobSpec::new("last", "csv", b"z,w\n".to_vec()))
        .unwrap()
        .unwrap();
    client.call(&Request::Shutdown).unwrap().unwrap();
    // The runtime is draining: local submissions are now refused.
    assert!(matches!(
        rt.handle()
            .submit(JobSpec::new("late", "csv", b"a\n".to_vec())),
        Err(udp_serve::ServeError::ShuttingDown)
    ));
    server.stop();
    let stats = rt.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, 1);
}

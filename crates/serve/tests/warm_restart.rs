//! Warm-restart property (DESIGN.md §11.3): a service restarted from
//! its write-ahead journal is indistinguishable — bit-identical
//! outputs, cycles, and admission decisions — from one that never
//! stopped, on both execution backends.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use udp_serve::{
    csv_kernel_artifact, ChaosSpec, JobOutcome, JobSpec, ServeConfig, ServeError, ServeHandle,
    ServeRuntime, Shutdown, TenantQuota,
};
use udp_sim::ExecBackend;
use udp_store::ArtifactStore;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "udp-warm-restart-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(compiled: bool, parallel: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        max_wave: 64,
        parallel,
        default_quota: TenantQuota {
            max_queued: 8,
            cycle_budget: None,
        },
        quarantine_strikes: 1,
        backend: Some(if compiled {
            ExecBackend::Compiled
        } else {
            ExecBackend::Interpreter
        }),
        journal_sync: false, // this test churns services; tmpfs-speed appends
        ..ServeConfig::default()
    }
}

/// Registers the two kernels every service in this test speaks: `csv`
/// (with its reference fallback) and `csv-raw` (fallback-less, so
/// persistent chaos ends in quarantine).
fn register_kernels(handle: &ServeHandle, store: &ArtifactStore) {
    let (artifact, fallback) = csv_kernel_artifact(store).unwrap();
    handle
        .register_artifact("csv", &artifact, Some(fallback))
        .unwrap();
    handle
        .register_artifact("csv-raw", &artifact, None)
        .unwrap();
}

/// Drives one deterministic service history: clean jobs for `alice`,
/// a poison job that quarantines `mallory`, then a quota clamp on
/// `alice`. Identical histories must leave identical durable state.
fn run_history(handle: &ServeHandle, payloads: &[Vec<u8>], poison_seed: u64) {
    for p in payloads {
        let out = handle
            .submit(JobSpec::new("alice", "csv", p.clone()))
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(out.outcome, JobOutcome::Clean);
    }
    let mut poison = JobSpec::new(
        "mallory",
        "csv-raw",
        udp_workloads::lineitem_csv(1024, poison_seed),
    );
    poison.chaos = Some(ChaosSpec {
        fault_at: Some(350),
        panic_at: None,
        transient: false,
    });
    match handle.submit(poison).unwrap().wait() {
        Err(ServeError::JobQuarantined { .. }) => {}
        other => panic!("expected JobQuarantined, got {other:?}"),
    }
    // Clamp alice's budget below her already-charged cycles: every
    // subsequent submission must be refused with her exact usage.
    handle.set_quota(
        "alice",
        TenantQuota {
            max_queued: 8,
            cycle_budget: Some(1),
        },
    );
}

/// The phase-2 probe outcomes we compare across services, as plain
/// values (no timestamps, no stats counters — admission behavior only).
#[derive(Debug, PartialEq, Eq)]
struct Probe {
    alice_refusal: Result<(), ServeError>,
    mallory_refusal: Result<(), ServeError>,
    bob_output: Vec<u8>,
    bob_cycles: u64,
    bob_outcome: JobOutcome,
    alice_after_refill: Result<(Vec<u8>, u64), ServeError>,
}

fn probe(handle: &ServeHandle, probe_payload: &[u8]) -> Probe {
    let alice_refusal = handle
        .submit(JobSpec::new("alice", "csv", probe_payload.to_vec()))
        .map(|_| panic!("alice must be refused by quota"));
    let mallory_refusal = handle
        .submit(JobSpec::new("mallory", "csv-raw", probe_payload.to_vec()))
        .map(|_| panic!("mallory must stay quarantined"));
    let bob = handle
        .submit(JobSpec::new("bob", "csv", probe_payload.to_vec()))
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .unwrap();
    // Refill alice's spent-cycle account and lift the clamp: both are
    // journaled operator actions, and both services must agree that
    // she is admitted again afterwards.
    handle.refill_quota("alice", u64::MAX / 2);
    handle.set_quota(
        "alice",
        TenantQuota {
            max_queued: 8,
            cycle_budget: None,
        },
    );
    let alice_after_refill = handle
        .submit(JobSpec::new("alice", "csv", probe_payload.to_vec()))
        .and_then(|t| t.wait_timeout(Duration::from_secs(30)))
        .map(|o| (o.output, o.cycles));
    Probe {
        alice_refusal,
        mallory_refusal,
        bob_output: bob.output,
        bob_cycles: bob.cycles,
        bob_outcome: bob.outcome,
        alice_after_refill,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two services run the same history. One drains, stops, and is
    /// restarted from its journal; the other keeps running. Their
    /// subsequent admission decisions, refusal details (exact cycles
    /// used, strikes), and job results must be bit-identical.
    #[test]
    fn restarted_service_is_bit_identical_to_uninterrupted(
        fields in proptest::collection::vec((0u8..100, 0u8..100), 1..4),
        poison_seed in 0u64..1000,
        compiled in proptest::bool::ANY,
        parallel in proptest::bool::ANY,
    ) {
        let payloads: Vec<Vec<u8>> = fields
            .iter()
            .map(|(a, b)| format!("{a},{b}\n").into_bytes())
            .collect();
        let probe_payload = b"p,q\n".to_vec();

        let root = temp_dir("case");
        let store = ArtifactStore::open_with(root.join("store"), false).unwrap();

        // Service A: journaled, runs the history, drains, restarts.
        let rt_a = ServeRuntime::start_journaled(
            config(compiled, parallel),
            root.join("a.journal"),
            &store,
        )
        .unwrap();
        register_kernels(&rt_a.handle(), &store);
        run_history(&rt_a.handle(), &payloads, poison_seed);
        let stats_a = rt_a.shutdown(Shutdown::Drain);
        prop_assert_eq!(stats_a.tenants_quarantined, 1);

        let rt_a2 = ServeRuntime::start_journaled(
            config(compiled, parallel),
            root.join("a.journal"),
            &store,
        )
        .unwrap();
        prop_assert_eq!(rt_a2.handle().stats().kernels_dropped, 0);

        // Service C: same history, never stops.
        let rt_c = ServeRuntime::start_journaled(
            config(compiled, parallel),
            root.join("c.journal"),
            &store,
        )
        .unwrap();
        register_kernels(&rt_c.handle(), &store);
        run_history(&rt_c.handle(), &payloads, poison_seed);

        let got_a = probe(&rt_a2.handle(), &probe_payload);
        let got_c = probe(&rt_c.handle(), &probe_payload);
        prop_assert_eq!(&got_a, &got_c);

        // The refusals are the *typed* ones, with state intact.
        prop_assert!(matches!(
            got_a.alice_refusal,
            Err(ServeError::QuotaExhausted { used: _, budget: 1 })
        ));
        prop_assert!(matches!(
            got_a.mallory_refusal,
            Err(ServeError::TenantQuarantined { strikes: 1 })
        ));
        prop_assert_eq!(got_a.bob_outcome, JobOutcome::Clean);
        prop_assert_eq!(&got_a.bob_output, b"p\x1fq\x1f\x1e");
        prop_assert!(got_a.alice_after_refill.is_ok());

        rt_a2.shutdown(Shutdown::Drain);
        rt_c.shutdown(Shutdown::Drain);
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! Multi-tenant isolation property (DESIGN.md §10.6): clean tenants
//! sharing a wave with a transient-chaos tenant — and a runtime with a
//! quarantine-bound tenant on a fallback-less kernel — get outputs and
//! cycle counts bit-identical to running alone, on both backends.

use proptest::prelude::*;
use std::time::Duration;
use udp_serve::{
    ChaosSpec, JobOutcome, JobSpec, ServeConfig, ServeError, ServeRuntime, Shutdown, TenantQuota,
};
use udp_sim::ExecBackend;

fn config(compiled: bool, parallel: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        max_wave: 64,
        parallel,
        default_quota: TenantQuota {
            max_queued: 8,
            cycle_budget: None,
        },
        quarantine_strikes: 1,
        backend: Some(if compiled {
            ExecBackend::Compiled
        } else {
            ExecBackend::Interpreter
        }),
        ..ServeConfig::default()
    }
}

/// Runs `payload` alone on a fresh runtime and returns (output, cycles).
fn solo_run(payload: &[u8], compiled: bool, parallel: bool) -> (Vec<u8>, u64) {
    let rt = ServeRuntime::start_with_builtin_kernels(config(compiled, parallel)).unwrap();
    let out = rt
        .handle()
        .submit(JobSpec::new("solo", "csv", payload.to_vec()))
        .unwrap()
        .wait()
        .unwrap();
    rt.shutdown(Shutdown::Drain);
    (out.output, out.cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One batch: N clean tenants (tiny rows, finish well before the
    /// chaos injection point) share a csv wave with a chaos tenant
    /// whose long chunk faults transiently mid-run; a poison tenant on
    /// a fallback-less kernel quarantines in its own wave. Clean
    /// tenants must neither observe the turbulence nor pay for it.
    #[test]
    fn clean_tenants_are_bit_identical_to_solo_runs(
        fields in proptest::collection::vec((0u8..100, 0u8..100), 2..5),
        fault_at in 300u64..=400,
        transient_seed in 0u64..1000,
        poison_seed in 0u64..1000,
        compiled in proptest::bool::ANY,
        parallel in proptest::bool::ANY,
    ) {
        let clean_payloads: Vec<Vec<u8>> = fields
            .iter()
            .map(|(a, b)| format!("{a},{b}\n").into_bytes())
            .collect();
        let solo: Vec<(Vec<u8>, u64)> = clean_payloads
            .iter()
            .map(|p| solo_run(p, compiled, parallel))
            .collect();

        let rt = ServeRuntime::start_with_builtin_kernels(config(compiled, parallel)).unwrap();
        let handle = rt.handle();
        // The poison kernel: same csv image, no fallback rung, so
        // persistent chaos ends in quarantine instead of recovery.
        let (image, _) = udp_serve::csv_kernel().unwrap();
        handle.register_kernel("csv-raw", image, None).unwrap();

        handle.pause();
        let clean_tickets: Vec<_> = clean_payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                handle
                    .submit(JobSpec::new(format!("clean{i}"), "csv", p.clone()))
                    .unwrap()
            })
            .collect();
        // Transient chaos: a long chunk that faults once at `fault_at`
        // cycles (above every clean sibling's total) and recovers on
        // the retry rung.
        let mut flaky = JobSpec::new(
            "flaky",
            "csv",
            udp_workloads::lineitem_csv(1024, transient_seed),
        );
        flaky.chaos = Some(ChaosSpec {
            fault_at: Some(fault_at),
            panic_at: None,
            transient: true,
        });
        let flaky_ticket = handle.submit(flaky).unwrap();
        // Persistent chaos on the fallback-less kernel: quarantine.
        let mut poison = JobSpec::new(
            "poison",
            "csv-raw",
            udp_workloads::lineitem_csv(1024, poison_seed),
        );
        poison.chaos = Some(ChaosSpec {
            fault_at: Some(fault_at),
            panic_at: None,
            transient: false,
        });
        let poison_ticket = handle.submit(poison).unwrap();
        handle.resume();

        // Clean tenants: byte- and cycle-identical to their solo runs.
        for (i, (ticket, (solo_out, solo_cycles))) in
            clean_tickets.into_iter().zip(&solo).enumerate()
        {
            let out = ticket
                .wait_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("clean{i} failed: {e}"));
            prop_assert_eq!(out.outcome, JobOutcome::Clean, "clean{} outcome", i);
            prop_assert_eq!(&out.output, solo_out, "clean{} output", i);
            prop_assert_eq!(out.cycles, *solo_cycles, "clean{} cycles", i);
        }
        // The flaky tenant recovered; no quarantine for transience.
        match flaky_ticket.wait_timeout(Duration::from_secs(30)) {
            Ok(out) => prop_assert!(
                matches!(out.outcome, JobOutcome::Recovered { .. }),
                "flaky outcome: {:?}",
                out.outcome
            ),
            Err(e) => panic!("flaky failed: {e}"),
        }
        // The poison tenant quarantined — alone.
        match poison_ticket.wait_timeout(Duration::from_secs(30)) {
            Err(ServeError::JobQuarantined { fault }) => {
                prop_assert_eq!(fault, "chaos-injected");
            }
            other => panic!("expected JobQuarantined, got {other:?}"),
        }
        prop_assert!(matches!(
            handle.submit(JobSpec::new("poison", "csv-raw", b"a,b\n".to_vec())),
            Err(ServeError::TenantQuarantined { .. })
        ));
        // Clean and flaky tenants retain full service afterwards.
        for name in ["clean0", "flaky"] {
            let out = handle
                .submit(JobSpec::new(name, "csv", b"q,r\n".to_vec()))
                .unwrap()
                .wait_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("{name} lost service: {e}"));
            prop_assert_eq!(&out.output, b"q\x1fr\x1f\x1e");
        }
        let stats = rt.shutdown(Shutdown::Drain);
        prop_assert_eq!(stats.tenants_quarantined, 1);
        prop_assert_eq!(stats.quarantined_jobs, 1);
    }
}

//! Dictionary and dictionary-RLE encoding on the UDP (§5.4).
//!
//! "UDP program performs encoding, using a defined dictionary" (§4.1):
//! the host builds the dictionary (as Parquet does) and stages an
//! open-addressing hash table plus the entry strings into each lane's
//! window. The program then scans newline-separated tokens, folds an
//! FNV-1a hash byte-by-byte through the symbol latch (R13), and probes
//! the staged table with **flagged dispatch** — multi-way dispatch on a
//! computed flag in R0 steering the probe loop (§3.2.3), with the
//! `Hash` and `LoopCmpM` customized actions doing the heavy lifting.
//!
//! Output: one little-endian `u32` code per token (dictionary mode), or
//! `(code, run_length)` `u32` pairs (dictionary-RLE mode; the final run
//! rests in lane memory — [`finish_dict_rle`] retrieves it).

use udp_asm::{ProgramBuilder, Target};
use udp_codecs::dict::dict_hash;
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Window-relative byte offset of the staged hash table (the program
/// itself stays under 4 KB; entry strings follow the table).
pub const TABLE_OFFSET: u32 = 4096;
/// Scratch: previous code + 1 (RLE mode).
pub const SCRATCH_PREV: u16 = 4088;
/// Scratch: current run length (RLE mode).
pub const SCRATCH_COUNT: u16 = 4092;

const FNV_INIT: u32 = 0x811C_9DC5;
const FNV_PRIME: u32 = 0x0100_0193;

/// Staged memory segments + registers for a prebuilt dictionary.
#[derive(Debug, Clone)]
pub struct DictStaging {
    /// Memory segments for [`udp_sim::Staging`].
    pub segments: Vec<(u32, Vec<u8>)>,
    /// Register presets.
    pub regs: Vec<(Reg, u32)>,
    /// Hash index width (table has `2^k` slots).
    pub k: u32,
}

/// Builds the staging image for `dictionary` (code = index).
///
/// # Panics
///
/// Panics if the entries overflow the staging areas or a value contains
/// the `\n` separator.
pub fn stage_dictionary(dictionary: &[Vec<u8>]) -> DictStaging {
    // k ≤ 11 keeps the 2^k × 8-byte table bounded at 16 KB.
    let k = (usize::BITS - dictionary.len().next_power_of_two().leading_zeros() + 1).clamp(4, 11);
    let slots = 1usize << k;
    let entry_offset = TABLE_OFFSET + (slots * 8) as u32;
    let mut table = vec![0u8; slots * 8];
    let mut entries: Vec<u8> = Vec::new();
    for (code, v) in dictionary.iter().enumerate() {
        assert!(!v.contains(&b'\n'), "dictionary value contains separator");
        let addr = entry_offset + entries.len() as u32;
        entries.extend_from_slice(v);
        entries.push(b'\n');
        let mut slot = (dict_hash(v) >> (32 - k)) as usize;
        loop {
            let off = slot * 8;
            if u32::from_le_bytes([table[off], table[off + 1], table[off + 2], table[off + 3]]) == 0
            {
                table[off..off + 4].copy_from_slice(&(code as u32 + 1).to_le_bytes());
                table[off + 4..off + 8].copy_from_slice(&addr.to_le_bytes());
                break;
            }
            slot = (slot + 1) & (slots - 1);
        }
    }
    assert!(
        dictionary.len() * 2 <= slots,
        "dictionary overflows the staged table"
    );
    assert!(
        (entry_offset as usize + entries.len()) < 64 * 1024,
        "entries overflow the staging window"
    );
    DictStaging {
        segments: vec![(TABLE_OFFSET, table), (entry_offset, entries)],
        regs: vec![
            (Reg::new(1), FNV_INIT),
            (Reg::new(2), FNV_PRIME),
            (Reg::new(4), 0),
        ],
        k,
    }
}

// Register map (all 16 in use — see the module docs of udp_isa::reg):
//   r0 flag  r1 fnv-hash   r2 fnv-prime  r3 code+1   r4 token-start
//   r5 slot  r6 entry-addr r7 tmp        r8 token-len r9 entry-ptr
//   r10 cmp  r11 match     r12 zero      r13 symbol   r14 loop-limit
//   r15 stream index

fn scan_actions() -> Vec<Action> {
    // One FNV-1a step per byte via the hardware hash unit (§3.2.5).
    vec![Action::imm(Opcode::FnvB, Reg::new(1), Reg::R13, 0)]
}

fn newline_actions(k: u32) -> Vec<Action> {
    vec![
        // token length r8 = (idx - 1) - r4; compare limit r14 = len + 1.
        Action::imm(Opcode::InIdx, Reg::new(7), Reg::R0, 0u16.wrapping_sub(1)),
        Action::reg(Opcode::Sub, Reg::new(8), Reg::new(7), Reg::new(4)),
        Action::imm(Opcode::AddI, Reg::R14, Reg::new(8), 1),
        Action::imm(Opcode::Hash, Reg::new(5), Reg::new(1), k as u16),
        Action::imm(Opcode::MovI, Reg::R0, Reg::R0, 1),
    ]
}

fn probe_actions(k: u32) -> Vec<Action> {
    let mask = ((1u32 << k) - 1) as u16;
    vec![
        Action::imm(Opcode::ShlI, Reg::new(7), Reg::new(5), 3),
        Action::imm(Opcode::AddI, Reg::new(6), Reg::new(7), TABLE_OFFSET as u16),
        Action::imm(Opcode::LoadW, Reg::new(3), Reg::new(6), 0),
        Action::imm(Opcode::LoadW, Reg::new(9), Reg::new(6), 4),
        Action::imm(Opcode::AddI, Reg::new(5), Reg::new(5), 1),
        Action::imm(Opcode::AndI, Reg::new(5), Reg::new(5), mask),
        Action::reg(Opcode::LoopCmpM, Reg::new(10), Reg::new(9), Reg::new(4)),
        Action::reg(Opcode::SEq, Reg::new(11), Reg::new(10), Reg::R14),
        Action::imm(Opcode::SEqI, Reg::new(7), Reg::new(3), 0),
        // flag = empty ? 2 : (match ? 0 : 1)
        Action::imm(Opcode::MovI, Reg::R0, Reg::R0, 1),
        Action::reg(Opcode::Sub, Reg::R0, Reg::R0, Reg::new(11)),
        Action::imm(Opcode::MovI, Reg::new(6), Reg::R0, 2),
        Action::reg(Opcode::Sel, Reg::R0, Reg::new(7), Reg::new(6)),
    ]
}

fn reset_actions() -> Vec<Action> {
    vec![
        Action::imm(
            Opcode::MovI,
            Reg::new(1),
            Reg::R0,
            (FNV_INIT & 0xFFFF) as u16,
        ),
        Action::imm(Opcode::MovIH, Reg::new(1), Reg::R0, (FNV_INIT >> 16) as u16),
        Action::imm(Opcode::InIdx, Reg::new(4), Reg::R0, 0),
    ]
}

/// Compiles the plain dictionary encoder for a table of `2^k` slots.
pub fn dict_to_udp(k: u32) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let scan = b.add_consuming_state();
    let probe = b.add_flagged_state();
    b.set_entry(scan);

    for sym in 0u16..256 {
        if sym == u16::from(b'\n') {
            b.labeled_arc(scan, sym, Target::State(probe), newline_actions(k));
        } else {
            b.labeled_arc(scan, sym, Target::State(scan), scan_actions());
        }
    }

    // flag 1: probe the next slot.
    b.labeled_arc(probe, 1, Target::State(probe), probe_actions(k));
    // flag 0: hit — emit the code and resume scanning.
    let mut emit = vec![
        Action::imm(Opcode::SubI, Reg::new(7), Reg::new(3), 1),
        Action::imm(Opcode::EmitW, Reg::R0, Reg::new(7), 0),
    ];
    emit.extend(reset_actions());
    b.labeled_arc(probe, 0, Target::State(scan), emit);
    // flag 2: miss — not in the staged dictionary.
    b.labeled_arc(
        probe,
        2,
        Target::Halt,
        vec![Action::imm(Opcode::Halt, Reg::R0, Reg::R0, 99)],
    );
    b
}

/// Compiles the dictionary-RLE encoder (§5.4's second kernel).
pub fn dict_rle_to_udp(k: u32) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let scan = b.add_consuming_state();
    let probe = b.add_flagged_state();
    let rle = b.add_flagged_state();
    b.set_entry(scan);

    for sym in 0u16..256 {
        if sym == u16::from(b'\n') {
            b.labeled_arc(scan, sym, Target::State(probe), newline_actions(k));
        } else {
            b.labeled_arc(scan, sym, Target::State(scan), scan_actions());
        }
    }
    b.labeled_arc(probe, 1, Target::State(probe), probe_actions(k));
    b.labeled_arc(
        probe,
        2,
        Target::Halt,
        vec![Action::imm(Opcode::Halt, Reg::R0, Reg::R0, 99)],
    );
    // flag 0: hit — classify against the previous code:
    //   r0 = same ? 1 : (first-token ? 2 : 0)
    b.labeled_arc(
        probe,
        0,
        Target::State(rle),
        vec![
            Action::imm(Opcode::LoadW, Reg::new(7), Reg::new(12), SCRATCH_PREV),
            Action::imm(Opcode::SEqI, Reg::new(11), Reg::new(7), 0),
            Action::reg(Opcode::SEq, Reg::new(7), Reg::new(3), Reg::new(7)),
            Action::reg(Opcode::Add, Reg::R0, Reg::new(7), Reg::new(11)),
            Action::reg(Opcode::Add, Reg::R0, Reg::R0, Reg::new(11)),
        ],
    );
    // rle flag 1: same code — bump the run counter.
    let mut bump = vec![
        Action::imm(Opcode::LoadW, Reg::new(7), Reg::new(12), SCRATCH_COUNT),
        Action::imm(Opcode::AddI, Reg::new(7), Reg::new(7), 1),
        Action::imm(Opcode::StoreW, Reg::new(12), Reg::new(7), SCRATCH_COUNT),
    ];
    bump.extend(reset_actions());
    b.labeled_arc(rle, 1, Target::State(scan), bump);
    // rle flag 0: run break — emit (prev code, count), start a new run.
    let mut flush = vec![
        Action::imm(Opcode::LoadW, Reg::new(7), Reg::new(12), SCRATCH_PREV),
        Action::imm(Opcode::SubI, Reg::new(7), Reg::new(7), 1),
        Action::imm(Opcode::EmitW, Reg::R0, Reg::new(7), 0),
        Action::imm(Opcode::LoadW, Reg::new(7), Reg::new(12), SCRATCH_COUNT),
        Action::imm(Opcode::EmitW, Reg::R0, Reg::new(7), 0),
    ];
    flush.extend(start_run_actions());
    b.labeled_arc(rle, 0, Target::State(scan), flush);
    // rle flag 2: first token — just start the run.
    b.labeled_arc(rle, 2, Target::State(scan), start_run_actions());
    b
}

fn start_run_actions() -> Vec<Action> {
    let mut v = vec![
        Action::imm(Opcode::StoreW, Reg::new(12), Reg::new(3), SCRATCH_PREV),
        Action::imm(Opcode::MovI, Reg::new(7), Reg::R0, 1),
        Action::imm(Opcode::StoreW, Reg::new(12), Reg::new(7), SCRATCH_COUNT),
    ];
    v.extend(reset_actions());
    v
}

/// Reads the trailing unflushed run after a dictionary-RLE run.
pub fn finish_dict_rle(mem: &udp_sim::LocalMemory) -> Option<(u32, u32)> {
    let prev = mem.peek_word(u32::from(SCRATCH_PREV) / 4);
    let count = mem.peek_word(u32::from(SCRATCH_COUNT) / 4);
    (prev != 0).then_some((prev - 1, count))
}

/// Decodes the dictionary program's output (`u32` codes, LE).
pub fn decode_codes(out: &[u8]) -> Vec<u32> {
    out.chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Joins column values with the `\n` separator the programs expect.
pub fn join_tokens<V: AsRef<[u8]>>(values: &[V]) -> Vec<u8> {
    let mut v = Vec::new();
    for t in values {
        v.extend_from_slice(t.as_ref());
        v.push(b'\n');
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_codecs::{rle_decode, DictionaryEncoder, Run};
    use udp_sim::engine::Staging;
    use udp_sim::{Lane, LaneConfig, LaneStatus};

    fn staging_of(d: &DictStaging) -> Staging {
        Staging {
            segments: d.segments.clone(),
            regs: d.regs.clone(),
        }
    }

    fn run_dict(values: &[&str]) -> (Vec<u32>, Vec<u32>) {
        let mut enc = DictionaryEncoder::default();
        let expect = enc.encode_column(values);
        let staging = stage_dictionary(enc.dictionary());
        let img = dict_to_udp(staging.k)
            .assemble(&LayoutOptions::with_banks(4))
            .unwrap();
        let input = join_tokens(values);
        let (rep, _) =
            Lane::run_program_capture(&img, &input, &staging_of(&staging), &LaneConfig::default());
        assert_eq!(rep.status, LaneStatus::InputExhausted, "{:?}", rep.status);
        (decode_codes(&rep.output), expect)
    }

    #[test]
    fn codes_match_cpu_encoder() {
        let vals = ["NY", "LA", "NY", "SF", "LA", "NY", "SF"];
        let (got, expect) = run_dict(&vals);
        assert_eq!(got, expect);
    }

    #[test]
    fn single_value_column() {
        let vals = ["xyz"; 20];
        let (got, expect) = run_dict(&vals);
        assert_eq!(got, expect);
    }

    #[test]
    fn collisions_probe_linearly() {
        // Enough distinct values to force probe chains in a small table.
        let vals: Vec<String> = (0..40).map(|i| format!("value-{i}")).collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        let mut seq = Vec::new();
        for i in 0..200 {
            seq.push(refs[(i * 7) % refs.len()]);
        }
        let (got, expect) = run_dict(&seq);
        assert_eq!(got, expect);
    }

    #[test]
    fn miss_halts_with_code_99() {
        let mut enc = DictionaryEncoder::default();
        enc.encode_column(&["a", "b"]);
        let staging = stage_dictionary(enc.dictionary());
        let img = dict_to_udp(staging.k)
            .assemble(&LayoutOptions::with_banks(4))
            .unwrap();
        let (rep, _) = Lane::run_program_capture(
            &img,
            &join_tokens(&["a", "zzz"]),
            &staging_of(&staging),
            &LaneConfig::default(),
        );
        assert_eq!(rep.status, LaneStatus::Halted(99));
    }

    #[test]
    fn dict_rle_matches_cpu_encoder() {
        let vals = ["x", "x", "x", "y", "y", "x", "z", "z", "z", "z"];
        let mut enc = DictionaryEncoder::default();
        let codes = enc.encode_column(&vals);
        let expect = udp_codecs::rle_encode(&codes);

        let staging = stage_dictionary(enc.dictionary());
        let img = dict_rle_to_udp(staging.k)
            .assemble(&LayoutOptions::with_banks(4))
            .unwrap();
        let (rep, mem) = Lane::run_program_capture(
            &img,
            &join_tokens(&vals),
            &staging_of(&staging),
            &LaneConfig::default(),
        );
        assert_eq!(rep.status, LaneStatus::InputExhausted);
        let flat = decode_codes(&rep.output);
        let mut runs: Vec<Run<u32>> = flat
            .chunks_exact(2)
            .map(|p| Run {
                value: p[0],
                length: p[1],
            })
            .collect();
        let (v, l) = finish_dict_rle(&mem).expect("trailing run");
        runs.push(Run {
            value: v,
            length: l,
        });
        assert_eq!(runs, expect);
        assert_eq!(rle_decode(&runs), codes);
    }

    #[test]
    fn crimes_attribute_matches_cpu() {
        let data = udp_workloads::crimes_csv(30_000, 21);
        let rows = udp_codecs::CsvParser::new().parse(&data);
        let col: Vec<Vec<u8>> = rows.iter().skip(1).map(|r| r[6].clone()).collect();
        let mut enc = DictionaryEncoder::default();
        let expect = enc.encode_column(&col);
        let staging = stage_dictionary(enc.dictionary());
        let img = dict_to_udp(staging.k)
            .assemble(&LayoutOptions::with_banks(4))
            .unwrap();
        let (rep, _) = Lane::run_program_capture(
            &img,
            &join_tokens(&col),
            &staging_of(&staging),
            &LaneConfig::default(),
        );
        assert_eq!(decode_codes(&rep.output), expect);
    }
}

//! CSV parsing on the UDP (§5.1).
//!
//! The program implements the libcsv finite-state machine with full
//! 256-way labeled dispatch — "dispatch processes an arbitrary regular
//! character or delimiter each cycle" — and extracts field bytes with
//! the `LoopIn` loop-copy action. Output framing: each field's decoded
//! bytes followed by [`crate::FIELD_SEP`], each record ended by
//! [`crate::RECORD_SEP`].
//!
//! Scope: RFC 4180-conforming input with `\n` record terminators and
//! quotes only at field starts (all `udp-workloads` generators comply;
//! the CPU baseline accepts a superset).

use crate::{FIELD_SEP, RECORD_SEP};
use udp_asm::{ProgramBuilder, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Builds the UDP CSV parser for comma-delimited, double-quoted input.
pub fn csv_to_udp() -> ProgramBuilder {
    csv_to_udp_with(b',', b'"')
}

/// Builds the parser for arbitrary delimiter/quote bytes.
pub fn csv_to_udp_with(delim: u8, quote: u8) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let record = b.add_consuming_state(); // unquoted scanning
    let quoted = b.add_consuming_state(); // inside quotes
    let quote_q = b.add_consuming_state(); // just saw a quote inside quotes
    b.set_entry(record);

    let r_start = Reg::new(1); // field content start (byte index)
    let r_len = Reg::new(2);
    let r_tmp = Reg::new(3);

    // Emit field [r_start, R15 - 1 - strip) then a separator, and reset
    // r_start to R15.
    let emit_field = |strip: u16, sep: u8| -> Vec<Action> {
        vec![
            Action::imm(Opcode::InIdx, r_tmp, Reg::R0, 0u16.wrapping_sub(1 + strip)),
            Action::reg(Opcode::Sub, r_len, r_tmp, r_start),
            Action::reg(Opcode::LoopIn, Reg::R0, r_start, r_len),
            Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(sep)),
            Action::imm(Opcode::InIdx, r_start, Reg::R0, 0),
        ]
    };

    // record state -------------------------------------------------
    for sym in 0u16..256 {
        let byte = sym as u8;
        if byte == delim {
            b.labeled_arc(record, sym, Target::State(record), emit_field(0, FIELD_SEP));
        } else if byte == b'\n' {
            let mut acts = emit_field(0, FIELD_SEP);
            acts.push(Action::imm(
                Opcode::EmitB,
                Reg::R0,
                Reg::new(12),
                u16::from(RECORD_SEP),
            ));
            b.labeled_arc(record, sym, Target::State(record), acts);
        } else if byte == quote {
            // Opening quote: content starts after it.
            b.labeled_arc(
                record,
                sym,
                Target::State(quoted),
                vec![Action::imm(Opcode::InIdx, r_start, Reg::R0, 0)],
            );
        } else {
            b.labeled_arc(record, sym, Target::State(record), vec![]);
        }
    }

    // quoted state --------------------------------------------------
    for sym in 0u16..256 {
        let byte = sym as u8;
        if byte == quote {
            b.labeled_arc(quoted, sym, Target::State(quote_q), vec![]);
        } else {
            b.labeled_arc(quoted, sym, Target::State(quoted), vec![]);
        }
    }

    // quote_q state: the byte after a quote inside a quoted field ----
    for sym in 0u16..256 {
        let byte = sym as u8;
        if byte == quote {
            // Escaped quote: flush [r_start, idx-2), emit one quote,
            // restart the segment after the second quote.
            b.labeled_arc(
                quote_q,
                sym,
                Target::State(quoted),
                vec![
                    Action::imm(Opcode::InIdx, r_tmp, Reg::R0, 0u16.wrapping_sub(2)),
                    Action::reg(Opcode::Sub, r_len, r_tmp, r_start),
                    Action::reg(Opcode::LoopIn, Reg::R0, r_start, r_len),
                    Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(quote)),
                    Action::imm(Opcode::InIdx, r_start, Reg::R0, 0),
                ],
            );
        } else if byte == delim {
            // Closing quote then delimiter: field = [r_start, idx-2).
            b.labeled_arc(
                quote_q,
                sym,
                Target::State(record),
                emit_field(1, FIELD_SEP),
            );
        } else if byte == b'\n' {
            let mut acts = emit_field(1, FIELD_SEP);
            acts.push(Action::imm(
                Opcode::EmitB,
                Reg::R0,
                Reg::new(12),
                u16::from(RECORD_SEP),
            ));
            b.labeled_arc(quote_q, sym, Target::State(record), acts);
        } else {
            // Stray byte after a closing quote: keep scanning unquoted
            // (libcsv tolerance).
            b.labeled_arc(quote_q, sym, Target::State(record), vec![]);
        }
    }
    b
}

/// Renders the CPU parser's output in the UDP framing, for equivalence
/// checks: fields separated by [`FIELD_SEP`], records by [`RECORD_SEP`].
pub fn baseline_framing(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    udp_codecs::CsvParser::new().parse_events(input, |e| match e {
        udp_codecs::CsvEvent::Field(f) => {
            out.extend_from_slice(&f);
            out.push(FIELD_SEP);
        }
        udp_codecs::CsvEvent::EndRecord => out.push(RECORD_SEP),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_sim::{Lane, LaneConfig};

    fn run(input: &[u8]) -> Vec<u8> {
        let img = csv_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        Lane::run_program(&img, input, &LaneConfig::default()).output
    }

    #[test]
    fn simple_rows_match_baseline() {
        let input = b"a,bb,ccc\nx,y,z\n";
        assert_eq!(run(input), baseline_framing(input));
    }

    #[test]
    fn quoted_fields_match_baseline() {
        let input = b"\"a,b\",plain\n\"line1\nline2\",q\n";
        assert_eq!(run(input), baseline_framing(input));
    }

    #[test]
    fn escaped_quotes_match_baseline() {
        let input = b"\"he said \"\"hi\"\"\",y\n";
        assert_eq!(run(input), baseline_framing(input));
    }

    #[test]
    fn empty_fields_match_baseline() {
        let input = b"a,,c\n,,\n";
        assert_eq!(run(input), baseline_framing(input));
    }

    #[test]
    fn regular_bytes_cost_one_cycle() {
        let img = csv_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let input = b"abcdefgh\n";
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        assert_eq!(rep.fallback_misses, 0, "full labeled dispatch never misses");
        // 9 dispatches + newline actions (6).
        assert_eq!(rep.dispatches, 9);
    }

    #[test]
    fn crimes_workload_parses_identically() {
        let data = udp_workloads::crimes_csv(20_000, 11);
        assert_eq!(run(&data), baseline_framing(&data));
    }

    #[test]
    fn food_inspection_quoting_parses_identically() {
        let data = udp_workloads::food_inspection_csv(20_000, 12);
        assert_eq!(run(&data), baseline_framing(&data));
    }
}

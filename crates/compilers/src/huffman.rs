//! Huffman coding on the UDP (§5.2), in all four variable-size-symbol
//! designs of §3.2.2:
//!
//! * **SsF** (fixed 8-bit, the UAP design): the decode tree is unrolled
//!   into byte-residual states — fastest, but the program explodes
//!   (Figure 8's 508 KB bar).
//! * **SsT** (size per transition): strides are exact (`mindepth` of the
//!   node) and width changes ride the transitions at zero cycle cost;
//!   the encoding overhead is charged as 1.25× words in the size model.
//! * **SsReg** (size register): same strides, but width changes are
//!   explicit `SetSym` actions costing a cycle each.
//! * **SsRef** (register + refill, the UDP design): one global stride
//!   `W = min(8, max code length)`; over-consumed bits are put back by
//!   refill pass states.
//!
//! Decoding with SsRef requires the bit stream to be zero-padded to a
//! multiple of `W` plus lookahead ([`pad_for_stride`]); spurious trailing
//! symbols are truncated by the caller, which knows the symbol count
//! ([`truncate_decoded`]).

use std::collections::HashMap;
use udp_asm::{Arc, ProgramBuilder, StateId, Target};
use udp_codecs::huffman::{HuffmanNode, HuffmanTree};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// The four §3.2.2 designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolMode {
    /// UAP fixed 8-bit symbols (unrolled).
    Fixed8,
    /// Per-transition width (hardware-folded `SetSymT`).
    PerTransition,
    /// Width via explicit `SetSym` actions.
    Register,
    /// Global stride + refill transitions (the UDP design).
    RegisterRefill,
}

/// Per-transition width encoding overhead for the SsT size model
/// (extra bits in every transition word, §3.2.2 challenge 1).
pub const SST_SIZE_FACTOR: f64 = 1.25;

fn emit_byte(sym: u8) -> Action {
    Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(sym))
}

/// Tree-shape metrics: (min, max) leaf depth below each node.
fn depths(tree: &HuffmanTree) -> Vec<(u8, u8)> {
    let n = tree.nodes().len();
    let mut memo = vec![(0u8, 0u8); n];
    fn go(
        tree: &HuffmanTree,
        memo: &mut Vec<(u8, u8)>,
        done: &mut Vec<bool>,
        i: usize,
    ) -> (u8, u8) {
        if done[i] {
            return memo[i];
        }
        let r = match tree.nodes()[i] {
            HuffmanNode::Leaf(_) => (0, 0),
            HuffmanNode::Internal(z, o) => {
                // Single-symbol trees have one missing child.
                let kids: Vec<(u8, u8)> = [z, o]
                    .into_iter()
                    .filter(|&k| k != u32::MAX)
                    .map(|k| go(tree, memo, done, k as usize))
                    .collect();
                let min = kids.iter().map(|k| k.0).min().unwrap_or(0);
                let max = kids.iter().map(|k| k.1).max().unwrap_or(0);
                (min + 1, max + 1)
            }
        };
        memo[i] = r;
        done[i] = true;
        r
    }
    let mut done = vec![false; n];
    for i in 0..n {
        go(tree, &mut memo, &mut done, i);
    }
    memo
}

/// Walks `width` bits of value `v` (MSB-first) from node `from`,
/// stopping at the first leaf: returns `(Leaf(sym, depth) | Node(id))`.
enum Walk {
    Leaf {
        sym: u8,
        depth: u8,
    },
    Node(u32),
    /// An invalid code prefix (only possible in single-symbol trees).
    Dead,
}

fn walk(tree: &HuffmanTree, from: u32, v: u32, width: u8) -> Walk {
    let mut cur = from;
    for k in 0..width {
        let bit = (v >> (width - 1 - k)) & 1;
        let HuffmanNode::Internal(z, o) = tree.nodes()[cur as usize] else {
            unreachable!("walk starts at internal nodes only");
        };
        cur = if bit == 0 { z } else { o };
        if cur == u32::MAX {
            return Walk::Dead;
        }
        if let HuffmanNode::Leaf(sym) = tree.nodes()[cur as usize] {
            return Walk::Leaf { sym, depth: k + 1 };
        }
    }
    Walk::Node(cur)
}

/// Compiles a Huffman decoder. The program `EmitB`s each decoded byte.
///
/// # Panics
///
/// Panics on an empty tree.
pub fn huffman_decode_to_udp(tree: &HuffmanTree, mode: SymbolMode) -> ProgramBuilder {
    assert!(tree.root() != u32::MAX, "empty Huffman tree");
    match mode {
        SymbolMode::Fixed8 => decode_fixed8(tree),
        SymbolMode::RegisterRefill => decode_refill(tree),
        SymbolMode::Register => decode_strided(tree, false),
        SymbolMode::PerTransition => decode_strided(tree, true),
    }
}

/// SsRef: global stride + refill pass states.
fn decode_refill(tree: &HuffmanTree) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let d = depths(tree);
    let width = d[tree.root() as usize].1.clamp(1, 8);
    b.set_symbol_bits(width);

    // Special case: single-symbol tree (1-bit codes at the root).
    if let HuffmanNode::Leaf(_) = tree.nodes()[tree.root() as usize] {
        unreachable!("root is internal for >=2 symbols; single-symbol trees have depth-1 roots");
    }

    let mut states: HashMap<u32, StateId> = HashMap::new();
    let mut passes: HashMap<(u8, u8), StateId> = HashMap::new();
    let mut work = vec![tree.root()];
    let root_sid = b.add_consuming_state();
    states.insert(tree.root(), root_sid);
    b.set_entry(root_sid);

    while let Some(node) = work.pop() {
        let sid = states[&node];
        for v in 0..(1u32 << width) {
            match walk(tree, node, v, width) {
                Walk::Leaf { sym, depth } => {
                    let refill = width - depth;
                    let pass = *passes.entry((sym, refill)).or_insert_with(|| {
                        b.add_pass_state(
                            refill,
                            Arc {
                                target: Target::State(root_sid),
                                actions: vec![emit_byte(sym)],
                            },
                        )
                    });
                    b.labeled_arc(sid, v as u16, Target::State(pass), vec![]);
                }
                Walk::Node(m) => {
                    let tgt = *states.entry(m).or_insert_with(|| {
                        work.push(m);
                        b.add_consuming_state()
                    });
                    b.labeled_arc(sid, v as u16, Target::State(tgt), vec![]);
                }
                Walk::Dead => {}
            }
        }
    }
    b
}

/// SsT / SsReg: exact per-node strides; width changes via SetSym(T).
fn decode_strided(tree: &HuffmanTree, folded: bool) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let d = depths(tree);
    let stride = |n: u32| d[n as usize].0.clamp(1, 8);
    let root = tree.root();
    b.set_symbol_bits(stride(root));

    let setsym_op = if folded {
        Opcode::SetSymT
    } else {
        Opcode::SetSym
    };
    let mut states: HashMap<u32, StateId> = HashMap::new();
    let root_sid = b.add_consuming_state();
    states.insert(root, root_sid);
    b.set_entry(root_sid);
    let mut work = vec![root];

    while let Some(node) = work.pop() {
        let sid = states[&node];
        let w = stride(node);
        for v in 0..(1u32 << w) {
            match walk(tree, node, v, w) {
                Walk::Leaf { sym, depth } => {
                    debug_assert_eq!(depth, w, "stride = mindepth ⇒ exact leaf hit");
                    let mut acts = vec![emit_byte(sym)];
                    if stride(root) != w {
                        acts.push(Action::imm(
                            setsym_op,
                            Reg::R0,
                            Reg::R0,
                            u16::from(stride(root)),
                        ));
                    }
                    b.labeled_arc(sid, v as u16, Target::State(root_sid), acts);
                }
                Walk::Node(m) => {
                    let tgt = *states.entry(m).or_insert_with(|| {
                        work.push(m);
                        b.add_consuming_state()
                    });
                    let mut acts = vec![];
                    if stride(m) != w {
                        acts.push(Action::imm(
                            setsym_op,
                            Reg::R0,
                            Reg::R0,
                            u16::from(stride(m)),
                        ));
                    }
                    b.labeled_arc(sid, v as u16, Target::State(tgt), acts);
                }
                Walk::Dead => {}
            }
        }
    }
    b
}

/// SsF: byte-residual unrolling (the UAP rendition).
fn decode_fixed8(tree: &HuffmanTree) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    b.set_symbol_bits(8);
    let root = tree.root();
    let mut states: HashMap<u32, StateId> = HashMap::new();
    let root_sid = b.add_consuming_state();
    states.insert(root, root_sid);
    b.set_entry(root_sid);
    let mut work = vec![root];

    while let Some(node) = work.pop() {
        let sid = states[&node];
        for v in 0..256u32 {
            // Walk all 8 bits, emitting every leaf passed.
            let mut cur = node;
            let mut acts: Vec<Action> = Vec::new();
            let mut dead = false;
            for k in 0..8 {
                let bit = (v >> (7 - k)) & 1;
                let HuffmanNode::Internal(z, o) = tree.nodes()[cur as usize] else {
                    unreachable!()
                };
                cur = if bit == 0 { z } else { o };
                if cur == u32::MAX {
                    dead = true;
                    break;
                }
                if let HuffmanNode::Leaf(sym) = tree.nodes()[cur as usize] {
                    acts.push(emit_byte(sym));
                    cur = root;
                }
            }
            if dead {
                continue;
            }
            let tgt = *states.entry(cur).or_insert_with(|| {
                work.push(cur);
                b.add_consuming_state()
            });
            b.labeled_arc(sid, v as u16, Target::State(tgt), acts);
        }
    }
    b
}

/// Compiles a Huffman encoder: dispatches input bytes and `EmitBits`
/// their codes (≤ 30 bits, split across two actions past 15).
///
/// # Panics
///
/// Panics if any code exceeds 30 bits.
pub fn huffman_encode_to_udp(tree: &HuffmanTree) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let s = b.add_consuming_state();
    b.set_entry(s);
    let r1 = Reg::new(1);
    for sym in 0..=255u8 {
        let c = tree.code(sym);
        if c.len == 0 {
            continue; // absent symbol: dispatch miss = NoTransition
        }
        assert!(c.len <= 30, "code longer than 30 bits");
        let mut acts = Vec::new();
        if c.len <= 15 {
            acts.push(Action::imm(Opcode::MovI, r1, Reg::R0, c.bits as u16));
            acts.push(Action::imm2(Opcode::EmitBits, Reg::R0, r1, c.len, 0));
        } else {
            let hi_len = c.len - 15;
            acts.push(Action::imm(
                Opcode::MovI,
                r1,
                Reg::R0,
                (c.bits >> 15) as u16,
            ));
            acts.push(Action::imm2(Opcode::EmitBits, Reg::R0, r1, hi_len, 0));
            acts.push(Action::imm(
                Opcode::MovI,
                r1,
                Reg::R0,
                (c.bits & 0x7FFF) as u16,
            ));
            acts.push(Action::imm2(Opcode::EmitBits, Reg::R0, r1, 15, 0));
        }
        b.labeled_arc(s, u16::from(sym), Target::State(s), acts);
    }
    b
}

/// Zero-pads an encoded stream so every SsRef dispatch has `stride` bits
/// available. Returns the padded bytes.
pub fn pad_for_stride(bits: &[u8], nbits: u64, stride: u8) -> Vec<u8> {
    let need_bits = nbits + u64::from(stride);
    let need_bytes = need_bits.div_ceil(8) as usize;
    let mut v = bits.to_vec();
    v.resize(need_bytes.max(bits.len()), 0);
    v
}

/// Truncates decoder output to the expected symbol count (padding can
/// produce spurious trailing symbols).
pub fn truncate_decoded(mut out: Vec<u8>, expected: usize) -> Vec<u8> {
    out.truncate(expected);
    out
}

/// The global SsRef stride for a tree.
pub fn ssref_stride(tree: &HuffmanTree) -> u8 {
    depths(tree)[tree.root() as usize].1.clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_sim::{Lane, LaneConfig};

    fn decode_with(mode: SymbolMode, data: &[u8], banks: usize) -> (Vec<u8>, u64) {
        let tree = HuffmanTree::from_data(data);
        let (bits, nbits) = tree.encode(data);
        let input = match mode {
            SymbolMode::RegisterRefill => pad_for_stride(&bits, nbits, ssref_stride(&tree)),
            _ => bits.clone(),
        };
        let img = huffman_decode_to_udp(&tree, mode)
            .assemble(&LayoutOptions::with_banks(banks))
            .unwrap();
        let rep = Lane::run_program(&img, &input, &LaneConfig::default());
        (truncate_decoded(rep.output, data.len()), rep.cycles)
    }

    const SAMPLE: &[u8] = b"abracadabra alakazam, the quick brown fox jumps over the lazy dog";

    #[test]
    fn ssref_decodes() {
        let (out, _) = decode_with(SymbolMode::RegisterRefill, SAMPLE, 4);
        assert_eq!(out, SAMPLE);
    }

    #[test]
    fn ssreg_decodes() {
        let (out, _) = decode_with(SymbolMode::Register, SAMPLE, 4);
        assert_eq!(out, SAMPLE);
    }

    #[test]
    fn sst_decodes() {
        let (out, _) = decode_with(SymbolMode::PerTransition, SAMPLE, 4);
        assert_eq!(out, SAMPLE);
    }

    #[test]
    fn ssf_decodes_small_tree() {
        // A small alphabet keeps the SsF unrolling assembleable.
        let data = b"aaabbbcccddaabbccbbaaaddccbbaa".repeat(4);
        let (out, _) = decode_with(SymbolMode::Fixed8, &data, 16);
        assert_eq!(out, data);
    }

    #[test]
    fn sst_is_not_slower_than_ssreg() {
        let (_, sst) = decode_with(SymbolMode::PerTransition, SAMPLE, 4);
        let (_, ssreg) = decode_with(SymbolMode::Register, SAMPLE, 4);
        assert!(sst <= ssreg, "SsT {sst} vs SsReg {ssreg}");
    }

    #[test]
    fn ssf_code_size_dwarfs_ssref() {
        let data = b"the quick brown fox jumps over the lazy dog 0123456789".repeat(3);
        let tree = HuffmanTree::from_data(&data);
        let ssf = huffman_decode_to_udp(&tree, SymbolMode::Fixed8);
        let ssref = huffman_decode_to_udp(&tree, SymbolMode::RegisterRefill);
        let opts = LayoutOptions {
            window_words: 64 * 4096,
            share_actions: true,
            uap_attach: true, // size model only: SsF action fan-out is huge
            ..LayoutOptions::default()
        };
        let a = ssf.assemble(&opts).unwrap().stats;
        let c = ssref.assemble(&LayoutOptions::with_banks(8)).unwrap().stats;
        assert!(
            a.code_bytes() > 4 * c.code_bytes(),
            "SsF {} vs SsRef {}",
            a.code_bytes(),
            c.code_bytes()
        );
    }

    #[test]
    fn encoder_matches_baseline_bits() {
        let tree = HuffmanTree::from_data(SAMPLE);
        let (expect_bits, nbits) = tree.encode(SAMPLE);
        let img = huffman_encode_to_udp(&tree)
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let rep = Lane::run_program(&img, SAMPLE, &LaneConfig::default());
        assert_eq!(rep.output.len() as u64, nbits.div_ceil(8));
        assert_eq!(rep.output, expect_bits);
    }

    #[test]
    fn encoder_rejects_unknown_symbols() {
        let tree = HuffmanTree::from_data(b"aaabbb");
        let img = huffman_encode_to_udp(&tree)
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let rep = Lane::run_program(&img, b"aaz", &LaneConfig::default());
        assert_eq!(rep.status, udp_sim::LaneStatus::NoTransition);
    }

    #[test]
    fn round_trip_through_udp_encoder_and_decoder() {
        let data = udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 4000, 5);
        let tree = HuffmanTree::from_data(&data);
        let enc_img = huffman_encode_to_udp(&tree)
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let enc = Lane::run_program(&enc_img, &data, &LaneConfig::default());
        let (_, nbits) = tree.encode(&data);
        let padded = pad_for_stride(&enc.output, nbits, ssref_stride(&tree));
        let dec_img = huffman_decode_to_udp(&tree, SymbolMode::RegisterRefill)
            .assemble(&LayoutOptions::with_banks(8))
            .unwrap();
        let dec = Lane::run_program(&dec_img, &padded, &LaneConfig::default());
        assert_eq!(truncate_decoded(dec.output, data.len()), data);
    }
}

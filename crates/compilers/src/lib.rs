//! # udp-compilers — domain translators to UDP programs
//!
//! The UDP software stack (paper §4.3, Figure 12) has "a number of
//! domain-specific translators and a shared backend". The backend is
//! `udp-asm`; this crate is the translators, one per kernel family:
//!
//! | module | paper kernel | UDP features exercised |
//! |--------|--------------|------------------------|
//! | [`automata`] | pattern matching (DFA / ADFA / NFA, §5.3) | multi-way dispatch, majority/default fallback, refill for failure links, epsilon forks |
//! | [`csv`] | CSV parsing (§5.1) | multi-way dispatch, loop-copy field extraction |
//! | [`huffman`] | Huffman coding (§5.2) | variable-size symbols in all four designs of §3.2.2 (SsF / SsT / SsReg / SsRef) |
//! | [`histogram`] | histogramming (§5.5) | 4-bit nibble dispatch over IEEE-754 words, `BumpW` bin update |
//! | [`dict`] | dictionary & dictionary-RLE (§5.4) | flagged (scalar-register) dispatch, `Hash`, `LoopCmpM` probing |
//! | [`snappy`] | Snappy (de)compression (§5.6) | flagged dispatch, `Hash`, `LoopCmp`, `LoopIn`/`LoopBack` |
//! | [`trigger`] | signal triggering (§5.7) | full-fanout labeled dispatch, `Report` |
//!
//! Every translator produces a [`udp_asm::ProgramBuilder`]; callers
//! assemble with their chosen [`udp_asm::LayoutOptions`] and run the
//! image on `udp-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod automata;
pub mod bitpack;
pub mod corpus;
pub mod counting;
pub mod csv;
pub mod dict;
pub mod histogram;
pub mod huffman;
pub mod json;
pub mod rle;
pub mod snappy;
pub mod trigger;
pub mod xml;

/// Field separator byte in UDP CSV output (ASCII unit separator).
pub const FIELD_SEP: u8 = 0x1F;
/// Record separator byte in UDP CSV output (ASCII record separator).
pub const RECORD_SEP: u8 = 0x1E;

//! JSON tokenization on the UDP — the Table 1 parsing claim beyond CSV.
//!
//! One 256-way dispatch classifies every byte (structural characters,
//! whitespace, string/number/literal starts); strings and numbers are
//! extracted with segmented `LoopIn` copies exactly like the CSV field
//! copier, and escape sequences flush the pending segment and emit the
//! decoded byte (`\uXXXX` stays raw — the compat mode of
//! `udp_codecs::json`).
//!
//! Output framing (= [`udp_codecs::json::compat_framing`]): structural
//! bytes verbatim, `S`/`N` + content + `0x1F` for strings and numbers,
//! `T`/`F`/`Z` for `true`/`false`/`null`. Lexical errors (bad escapes,
//! bare words) end the lane with `NoTransition`.
//!
//! Input must end at a token boundary (NDJSON's trailing newline
//! suffices); a number running into end-of-input is not flushed.

use udp_asm::{ProgramBuilder, StateId, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Content terminator in the output framing.
pub const CONTENT_SEP: u8 = 0x1F;

const WS: [u8; 4] = [b' ', b'\t', b'\n', b'\r'];
const STRUCTURAL: [u8; 6] = [b'{', b'}', b'[', b']', b':', b','];

fn emit(b: u8) -> Action {
    Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(b))
}

fn mark_start(offset: i16) -> Action {
    Action::imm(Opcode::InIdx, Reg::new(1), Reg::R0, offset as u16)
}

/// Flush `[r1, idx - 1 - strip)` to the output.
fn flush_segment(strip: u16) -> Vec<Action> {
    vec![
        Action::imm(
            Opcode::InIdx,
            Reg::new(3),
            Reg::R0,
            0u16.wrapping_sub(1 + strip),
        ),
        Action::reg(Opcode::Sub, Reg::new(2), Reg::new(3), Reg::new(1)),
        Action::reg(Opcode::LoopIn, Reg::R0, Reg::new(1), Reg::new(2)),
    ]
}

/// Builds the UDP JSON tokenizer.
pub fn json_to_udp() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let top = b.add_consuming_state();
    let in_string = b.add_consuming_state();
    let esc = b.add_consuming_state();
    let in_number = b.add_consuming_state();
    b.set_entry(top);

    // Literal chains: remaining letters after the first, then the tag.
    let literal_chain = |b: &mut ProgramBuilder, rest: &[u8], tag: u8, top: StateId| -> StateId {
        let first = b.add_consuming_state();
        let mut cur = first;
        for (i, &byte) in rest.iter().enumerate() {
            let lastc = i + 1 == rest.len();
            if lastc {
                b.labeled_arc(cur, u16::from(byte), Target::State(top), vec![emit(tag)]);
            } else {
                let next = b.add_consuming_state();
                b.labeled_arc(cur, u16::from(byte), Target::State(next), vec![]);
                cur = next;
            }
        }
        first
    };
    let lit_true = literal_chain(&mut b, b"rue", b'T', top);
    let lit_false = literal_chain(&mut b, b"alse", b'F', top);
    let lit_null = literal_chain(&mut b, b"ull", b'Z', top);

    // ---- top ------------------------------------------------------
    for &s in &STRUCTURAL {
        b.labeled_arc(top, u16::from(s), Target::State(top), vec![emit(s)]);
    }
    for &s in &WS {
        b.labeled_arc(top, u16::from(s), Target::State(top), vec![]);
    }
    b.labeled_arc(
        top,
        u16::from(b'"'),
        Target::State(in_string),
        vec![emit(b'S'), mark_start(0)],
    );
    for d in b'0'..=b'9' {
        b.labeled_arc(
            top,
            u16::from(d),
            Target::State(in_number),
            vec![emit(b'N'), mark_start(-1)],
        );
    }
    b.labeled_arc(
        top,
        u16::from(b'-'),
        Target::State(in_number),
        vec![emit(b'N'), mark_start(-1)],
    );
    b.labeled_arc(top, u16::from(b't'), Target::State(lit_true), vec![]);
    b.labeled_arc(top, u16::from(b'f'), Target::State(lit_false), vec![]);
    b.labeled_arc(top, u16::from(b'n'), Target::State(lit_null), vec![]);
    // Any other byte: dispatch miss → NoTransition (lexical error).

    // ---- in_string -------------------------------------------------
    for sym in 0u16..256 {
        let byte = sym as u8;
        if byte == b'"' {
            let mut acts = flush_segment(0);
            acts.push(emit(CONTENT_SEP));
            b.labeled_arc(in_string, sym, Target::State(top), acts);
        } else if byte == b'\\' {
            b.labeled_arc(in_string, sym, Target::State(esc), flush_segment(0));
        } else {
            b.labeled_arc(in_string, sym, Target::State(in_string), vec![]);
        }
    }

    // ---- esc --------------------------------------------------------
    for (escape, decoded) in [
        (b'"', b'"'),
        (b'\\', b'\\'),
        (b'/', b'/'),
        (b'n', b'\n'),
        (b't', b'\t'),
        (b'r', b'\r'),
        (b'b', 0x08),
        (b'f', 0x0C),
    ] {
        b.labeled_arc(
            esc,
            u16::from(escape),
            Target::State(in_string),
            vec![emit(decoded), mark_start(0)],
        );
    }
    // \uXXXX: keep raw — restart the segment at the backslash so the
    // escape and its four hex digits are copied verbatim.
    b.labeled_arc(
        esc,
        u16::from(b'u'),
        Target::State(in_string),
        vec![mark_start(-2)],
    );
    // Bad escapes: miss → NoTransition.

    // ---- in_number --------------------------------------------------
    let number_bytes: Vec<u8> = (b'0'..=b'9')
        .chain([b'+', b'-', b'.', b'e', b'E'])
        .collect();
    for &d in &number_bytes {
        b.labeled_arc(in_number, u16::from(d), Target::State(in_number), vec![]);
    }
    let flush_number = || {
        let mut acts = flush_segment(0);
        acts.push(emit(CONTENT_SEP));
        acts
    };
    for &s in &STRUCTURAL {
        if s == b'-' {
            continue;
        }
        let mut acts = flush_number();
        acts.push(emit(s));
        b.labeled_arc(in_number, u16::from(s), Target::State(top), acts);
    }
    for &s in &WS {
        b.labeled_arc(in_number, u16::from(s), Target::State(top), flush_number());
    }
    {
        let mut acts = flush_number();
        acts.push(emit(b'S'));
        acts.push(mark_start(0));
        b.labeled_arc(in_number, u16::from(b'"'), Target::State(in_string), acts);
    }
    for (byte, chain) in [(b't', lit_true), (b'f', lit_false), (b'n', lit_null)] {
        b.labeled_arc(
            in_number,
            u16::from(byte),
            Target::State(chain),
            flush_number(),
        );
    }

    b
}

/// The CPU-side reference framing for equivalence tests.
///
/// # Panics
///
/// Panics if `input` is not lexically valid JSON (compat mode).
// Allowlisted from the crate's `expect_used` gate: the panic is this
// reference helper's documented contract for invalid test inputs.
#[allow(clippy::expect_used)]
pub fn baseline_framing(input: &[u8]) -> Vec<u8> {
    let toks = udp_codecs::json::JsonTokenizer::compat()
        .tokenize(input)
        .expect("valid JSON input");
    udp_codecs::json::compat_framing(&toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_sim::{Lane, LaneConfig, LaneStatus};

    fn run(input: &[u8]) -> (Vec<u8>, LaneStatus) {
        let img = json_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        (rep.output, rep.status)
    }

    #[test]
    fn simple_object_matches_baseline() {
        let input = br#"{"k":"v","n":[1,2.5],"ok":false,"x":null} "#;
        let (out, status) = run(input);
        assert_eq!(status, LaneStatus::InputExhausted);
        assert_eq!(out, baseline_framing(input));
    }

    #[test]
    fn escapes_match_compat_baseline() {
        let input = b"\"a\\n b\\\" c\\\\ d\\u0041 e\\t\" ";
        let (out, _) = run(input);
        assert_eq!(out, baseline_framing(input));
    }

    #[test]
    fn numbers_with_exponents() {
        let input = b"[-1.5e3,0.25,42,7e-2] ";
        let (out, _) = run(input);
        assert_eq!(out, baseline_framing(input));
    }

    #[test]
    fn literals_and_whitespace() {
        let input = b" true \n false\tnull ";
        let (out, _) = run(input);
        assert_eq!(out, b"TFZ");
        assert_eq!(out, baseline_framing(input));
    }

    #[test]
    fn lexical_error_stops_the_lane() {
        let (_, status) = run(b"{\"a\": @}");
        assert_eq!(status, LaneStatus::NoTransition);
        let (_, status) = run(b"\"bad \\q escape\"");
        assert_eq!(status, LaneStatus::NoTransition);
        let (_, status) = run(b"trve ");
        assert_eq!(status, LaneStatus::NoTransition);
    }

    #[test]
    fn ndjson_workload_matches_baseline() {
        let data = udp_workloads::ndjson_events(30_000, 9);
        let (out, status) = run(&data);
        assert_eq!(status, LaneStatus::InputExhausted);
        assert_eq!(out, baseline_framing(&data));
    }

    #[test]
    fn string_bytes_cost_one_cycle() {
        let img = json_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let input = br#""abcdefghijklmnop" "#;
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        assert_eq!(rep.fallback_misses, 0);
        // 19 dispatches + open (2) + close (4) actions.
        assert!(rep.cycles <= 19 + 8, "{}", rep.cycles);
    }
}

//! Bit-pack encoding/decoding on the UDP (the DAX-Pack family of
//! Table 1).
//!
//! * **Encode**: dispatch each input byte (a dictionary code ≤ 255) and
//!   `EmitBits` its low `width` bits — one dispatch + one action per
//!   code.
//! * **Decode**: set the symbol-size register to `width` and dispatch
//!   each packed field directly — the variable-size-symbol machinery
//!   doing its day job — emitting the value byte per field.

use udp_asm::{ProgramBuilder, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Builds the packer for byte-sized codes at `width` bits (1–8).
///
/// # Panics
///
/// Panics unless `1 <= width <= 8`.
pub fn bitpack_encode_to_udp(width: u8) -> ProgramBuilder {
    assert!((1..=8).contains(&width));
    let mut b = ProgramBuilder::new();
    let s = b.add_consuming_state();
    b.set_entry(s);
    let max = if width == 8 { 255u16 } else { (1 << width) - 1 };
    for sym in 0..=max {
        b.labeled_arc(
            s,
            sym,
            Target::State(s),
            // The dispatched code sits in the symbol latch (R13).
            vec![Action::imm2(Opcode::EmitBits, Reg::R0, Reg::R13, width, 0)],
        );
    }
    // Codes above the width: dispatch miss → NoTransition.
    b
}

/// Builds the unpacker: `width`-bit dispatch, one output byte per field.
pub fn bitpack_decode_to_udp(width: u8) -> ProgramBuilder {
    assert!((1..=8).contains(&width));
    let mut b = ProgramBuilder::new();
    b.set_symbol_bits(width);
    let s = b.add_consuming_state();
    b.set_entry(s);
    let max = if width == 8 { 255u16 } else { (1 << width) - 1 };
    for sym in 0..=max {
        b.labeled_arc(
            s,
            sym,
            Target::State(s),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R13, 0)],
        );
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use udp_asm::LayoutOptions;
    use udp_codecs::{bitpack_decode, bitpack_encode, bits_needed};
    use udp_sim::{Lane, LaneConfig, LaneStatus};

    fn run(pb: &ProgramBuilder, input: &[u8]) -> (Vec<u8>, LaneStatus) {
        let img = pb.assemble(&LayoutOptions::with_banks(1)).unwrap();
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        (rep.output, rep.status)
    }

    #[test]
    fn udp_packer_matches_cpu_packer() {
        let codes: Vec<u32> = vec![5, 2, 7, 0, 3, 6, 1];
        let w = bits_needed(&codes); // 3
        let bytes: Vec<u8> = codes.iter().map(|&c| c as u8).collect();
        let (out, _) = run(&bitpack_encode_to_udp(w), &bytes);
        assert_eq!(out, bitpack_encode(&codes, w));
    }

    #[test]
    fn udp_unpacker_matches_cpu_unpacker() {
        let codes: Vec<u32> = (0..60).map(|i| (i * 7) % 16).collect();
        let packed = bitpack_encode(&codes, 4);
        let (out, _) = run(&bitpack_decode_to_udp(4), &packed);
        let got: Vec<u32> = out.iter().map(|&b| u32::from(b)).collect();
        // Zero padding may decode into trailing spurious fields.
        assert_eq!(&got[..codes.len()], &codes[..]);
        assert_eq!(bitpack_decode(&packed, 4, codes.len()).unwrap(), codes);
    }

    #[test]
    fn oversized_code_is_a_dispatch_miss() {
        let (_, status) = run(&bitpack_encode_to_udp(3), &[9]);
        assert_eq!(status, LaneStatus::NoTransition);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_udp_round_trip(codes in proptest::collection::vec(0u32..64, 1..200)) {
            let w = bits_needed(&codes).max(2);
            let bytes: Vec<u8> = codes.iter().map(|&c| c as u8).collect();
            let (packed, _) = run(&bitpack_encode_to_udp(w), &bytes);
            let (unpacked, _) = run(&bitpack_decode_to_udp(w), &packed);
            prop_assert_eq!(&unpacked[..codes.len()], &bytes[..]);
        }
    }
}

//! Run-length decoding on the UDP (the Oracle DAX-RLE family of
//! Table 1). Input: `(value u32, count u32)` little-endian pairs (the
//! dictionary-RLE program's output format); output: the expanded byte
//! stream. The expansion itself is a single 1-byte-distance `LoopBack`
//! — the overlap-replicating copy primitive decompressors use.

use udp_asm::{ProgramBuilder, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

fn a(op: Opcode, dst: u8, src: u8, imm: u16) -> Action {
    Action::imm(op, Reg::new(dst), Reg::new(src), imm)
}

fn r(op: Opcode, dst: u8, rref: u8, src: u8) -> Action {
    Action::reg(op, Reg::new(dst), Reg::new(rref), Reg::new(src))
}

/// Builds the RLE expander. Values must fit a byte (dictionary codes);
/// zero-length runs are tolerated and emit nothing.
pub fn rle_decode_to_udp() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let main = b.add_flagged_state();
    b.set_entry(main);

    // flag 0 → read one (value, count) pair and expand it.
    b.labeled_arc(
        main,
        0,
        Target::State(main),
        vec![
            // value: 4 LE bytes (only the low byte is meaningful).
            a(Opcode::ReadBits, 1, 0, 8),
            a(Opcode::ReadBits, 10, 0, 8),
            a(Opcode::ReadBits, 10, 0, 8),
            a(Opcode::ReadBits, 10, 0, 8),
            // count: 4 LE bytes.
            a(Opcode::ReadBits, 2, 0, 8),
            a(Opcode::ReadBits, 10, 0, 8),
            a(Opcode::ShlI, 10, 10, 8),
            r(Opcode::Or, 2, 2, 10),
            a(Opcode::ReadBits, 10, 0, 8),
            a(Opcode::ShlI, 10, 10, 16),
            r(Opcode::Or, 2, 2, 10),
            a(Opcode::ReadBits, 10, 0, 8),
            a(Opcode::ShlI, 10, 10, 24),
            r(Opcode::Or, 2, 2, 10),
            // Emit the first byte, then replicate count-1 more.
            Action::imm2(Opcode::SkipIfZ, Reg::R0, Reg::new(2), 5, 0),
            a(Opcode::EmitB, 0, 1, 0),
            a(Opcode::SubI, 3, 2, 1),
            a(Opcode::MovI, 10, 0, 1),
            Action::imm2(Opcode::SkipIfZ, Reg::R0, Reg::new(3), 1, 0),
            r(Opcode::LoopBack, 0, 10, 3),
            // Loop while input remains.
            a(Opcode::AtEof, 0, 0, 0),
        ],
    );
    // flag 1 → done.
    b.labeled_arc(main, 1, Target::Halt, vec![]);
    b
}

/// Serializes runs in the program's input format.
pub fn encode_runs(runs: &[(u8, u32)]) -> Vec<u8> {
    let mut v = Vec::with_capacity(runs.len() * 8);
    for &(value, count) in runs {
        v.extend_from_slice(&u32::from(value).to_le_bytes());
        v.extend_from_slice(&count.to_le_bytes());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use udp_asm::LayoutOptions;
    use udp_isa::Reg;
    use udp_sim::engine::Staging;
    use udp_sim::{Lane, LaneConfig, LaneStatus};

    fn run(runs: &[(u8, u32)]) -> Vec<u8> {
        let img = rle_decode_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let input = encode_runs(runs);
        let staging = Staging {
            segments: vec![],
            regs: vec![(Reg::new(0), u32::from(input.is_empty()))],
        };
        let (rep, _) = Lane::run_program_capture(&img, &input, &staging, &LaneConfig::default());
        assert_eq!(rep.status, LaneStatus::Halted(0), "{:?}", rep.status);
        rep.output
    }

    #[test]
    fn expands_runs() {
        assert_eq!(run(&[(b'a', 3), (b'b', 1), (b'c', 4)]), b"aaabcccc");
    }

    #[test]
    fn zero_length_runs_emit_nothing() {
        assert_eq!(run(&[(b'x', 0), (b'y', 2)]), b"yy");
    }

    #[test]
    fn empty_input_halts_cleanly() {
        assert_eq!(run(&[]), b"");
    }

    #[test]
    fn long_runs_use_the_loopback_datapath() {
        let img = rle_decode_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let input = encode_runs(&[(b'z', 8000)]);
        let rep = Lane::run_program(&img, &input, &LaneConfig::default());
        assert_eq!(rep.output.len(), 8000);
        // 8 bytes/cycle replication: far fewer cycles than bytes out.
        assert!(rep.cycles < 1200, "{}", rep.cycles);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matches_cpu_rle_decode(runs in proptest::collection::vec((any::<u8>(), 0u32..50), 0..40)) {
            let expect: Vec<u8> = runs
                .iter()
                .flat_map(|&(v, n)| std::iter::repeat_n(v, n as usize))
                .collect();
            prop_assert_eq!(run(&runs), expect);
        }
    }
}

//! Pattern matching translators: DFA, ADFA, and NFA to UDP programs.
//!
//! * DFA states become consuming states whose 256-way rows are
//!   compressed with the *majority* fallback: the most common target
//!   goes in the fallback slot, exceptions stay labeled (paper §3.2.1).
//! * ADFA (Aho–Corasick) failure links become fallback arcs through a
//!   shared *refill* pass state that puts the whole symbol back, so the
//!   fail target re-reads it — default-transition ("delta") storage at
//!   a 2-cycle fail-hop cost.
//! * NFA byte-states become consuming states; multi-successor epsilon
//!   closures become fork states executed by `udp_sim::engine::run_nfa`
//!   in multi-activation mode.

use std::collections::HashMap;
use udp_asm::{Arc, ProgramBuilder, StateId, Target};
use udp_automata::dfa::DEAD;
use udp_automata::{Adfa, Dfa, Nfa};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

fn report(id: u16) -> Action {
    Action::imm(Opcode::Report, Reg::R0, Reg::R0, id)
}

/// Compiles a scanning DFA into a UDP program that `Report`s every
/// `(pattern, end_position)` match, exactly like [`Dfa::find_all`]
/// (matches at position 0 excepted — the lane reports on transitions).
pub fn dfa_to_udp(dfa: &Dfa) -> ProgramBuilder {
    dfa_to_udp_opts(dfa, true)
}

/// [`dfa_to_udp`] without the majority-fallback compression: every live
/// transition stored labeled. Bigger code, but no +1-cycle signature
/// misses — the ablation counterpart.
pub fn dfa_to_udp_full(dfa: &Dfa) -> ProgramBuilder {
    dfa_to_udp_opts(dfa, false)
}

fn dfa_to_udp_opts(dfa: &Dfa, compress: bool) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let states: Vec<StateId> = (0..dfa.len()).map(|_| b.add_consuming_state()).collect();
    b.set_entry(states[dfa.start() as usize]);

    for (s, &sid) in states.iter().enumerate() {
        let row = dfa.row(s as u32);
        // Majority target (ignoring DEAD).
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &t in row {
            if t != DEAD {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let majority = counts.iter().max_by_key(|(_, &c)| c).map(|(&t, &c)| (t, c));
        // Use a fallback only when it actually compresses.
        let fallback_majority = majority.filter(|&(_, c)| compress && c >= 8);
        let actions_into =
            |t: u32| -> Vec<Action> { dfa.accepts(t).iter().map(|&id| report(id)).collect() };
        if let Some((maj, _)) = fallback_majority {
            b.fallback_arc(sid, Target::State(states[maj as usize]), actions_into(maj));
            for (byte, &t) in row.iter().enumerate() {
                if t == maj {
                    continue;
                }
                if t == DEAD {
                    b.labeled_arc(sid, byte as u16, Target::Halt, vec![]);
                } else {
                    b.labeled_arc(
                        sid,
                        byte as u16,
                        Target::State(states[t as usize]),
                        actions_into(t),
                    );
                }
            }
        } else {
            for (byte, &t) in row.iter().enumerate() {
                if t != DEAD {
                    b.labeled_arc(
                        sid,
                        byte as u16,
                        Target::State(states[t as usize]),
                        actions_into(t),
                    );
                }
            }
        }
    }
    b
}

/// Compiles a D²FA into a UDP program: stored edges become labeled
/// transitions; deferment pointers become fallback arcs through shared
/// refill pass states (re-reading the byte at the deferred state), the
/// same mechanism ADFA failure links use.
pub fn d2fa_to_udp(d2fa: &udp_automata::D2fa) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let states: Vec<StateId> = (0..d2fa.len()).map(|_| b.add_consuming_state()).collect();
    b.set_entry(states[d2fa.start() as usize]);

    let mut refill_to: HashMap<u32, StateId> = HashMap::new();
    for (s, &sid) in states.iter().enumerate() {
        let st = d2fa.state(s as u32);
        let mut edges: Vec<(u8, u32)> = st.edges.iter().map(|(&b2, &t)| (b2, t)).collect();
        edges.sort_unstable();
        for (byte, t) in edges {
            let acts = d2fa.state(t).accepts.iter().map(|&id| report(id)).collect();
            b.labeled_arc(
                sid,
                u16::from(byte),
                Target::State(states[t as usize]),
                acts,
            );
        }
        if let Some(d) = st.defer {
            let helper = *refill_to.entry(d).or_insert_with(|| {
                b.add_pass_state(
                    8,
                    Arc {
                        target: Target::State(states[d as usize]),
                        actions: vec![],
                    },
                )
            });
            b.fallback_arc(sid, Target::State(helper), vec![]);
        }
    }
    b
}

/// Compiles an Aho–Corasick automaton into a UDP program using
/// default-transition (failure-link) storage.
pub fn adfa_to_udp(adfa: &Adfa) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let states: Vec<StateId> = (0..adfa.len()).map(|_| b.add_consuming_state()).collect();
    b.set_entry(states[0]);

    // One shared refill-pass helper per distinct fail target.
    let mut refill_to: HashMap<u32, StateId> = HashMap::new();

    for (u, &sid) in states.iter().enumerate() {
        let node = adfa.node(u as u32);
        let mut gotos: Vec<(u8, u32)> = node.goto.iter().map(|(&b2, &v)| (b2, v)).collect();
        gotos.sort_unstable();
        for (byte, v) in gotos {
            let acts = adfa.node(v).outputs.iter().map(|&id| report(id)).collect();
            b.labeled_arc(
                sid,
                u16::from(byte),
                Target::State(states[v as usize]),
                acts,
            );
        }
        if u == 0 {
            // Root consumes and stays on a miss.
            b.fallback_arc(sid, Target::State(states[0]), vec![]);
        } else {
            let fail = adfa.node(u as u32).fail;
            let helper = *refill_to.entry(fail).or_insert_with(|| {
                b.add_pass_state(
                    8,
                    Arc {
                        target: Target::State(states[fail as usize]),
                        actions: vec![],
                    },
                )
            });
            b.fallback_arc(sid, Target::State(helper), vec![]);
        }
    }
    b
}

/// Compiles a (scanner) NFA into a UDP multi-activation program for
/// [`udp_sim::engine::run_nfa`].
pub fn nfa_to_udp(nfa: &Nfa) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();

    // Match states: NFA states carrying a byte edge.
    let mut match_state: HashMap<u32, StateId> = HashMap::new();
    for (i, st) in nfa.states.iter().enumerate() {
        if st.byte.is_some() {
            match_state.insert(i as u32, b.add_consuming_state());
        }
    }

    // Bundle of an NFA state: its epsilon closure's byte-states and
    // accept ids.
    let bundle = |s: u32| -> (Vec<u32>, Vec<u16>) {
        let mut set = vec![s];
        nfa.closure(&mut set);
        let mut bytes: Vec<u32> = set
            .iter()
            .copied()
            .filter(|&q| nfa.states[q as usize].byte.is_some())
            .collect();
        bytes.sort_unstable();
        let mut ids: Vec<u16> = set
            .iter()
            .filter_map(|&q| nfa.states[q as usize].accept)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        (bytes, ids)
    };

    // Representative target for a bundle: the single match state, a
    // shared fork, or Halt when the activation dies.
    let mut forks: HashMap<Vec<u32>, StateId> = HashMap::new();
    let mut target_of = |b: &mut ProgramBuilder, bytes: &[u32]| -> Target {
        match bytes.len() {
            0 => Target::Halt,
            1 => Target::State(match_state[&bytes[0]]),
            _ => {
                let key = bytes.to_vec();
                if let Some(&f) = forks.get(&key) {
                    return Target::State(f);
                }
                let arcs: Vec<Arc> = bytes
                    .iter()
                    .map(|q| Arc {
                        target: Target::State(match_state[q]),
                        actions: vec![],
                    })
                    .collect();
                let f = b.add_fork_state(arcs);
                forks.insert(key, f);
                Target::State(f)
            }
        }
    };

    for (i, st) in nfa.states.iter().enumerate() {
        let Some((ref class, t)) = st.byte else {
            continue;
        };
        let sid = match_state[&(i as u32)];
        let (bytes, ids) = bundle(t);
        let acts: Vec<Action> = ids.iter().map(|&id| report(id)).collect();
        let tgt = target_of(&mut b, &bytes);
        if class.len() > 128 {
            // Majority form: fallback carries the transition; the
            // complement dies explicitly.
            b.fallback_arc(sid, tgt, acts.clone());
            for byte in class.negate().iter() {
                b.labeled_arc(sid, u16::from(byte), Target::Halt, vec![]);
            }
        } else {
            for byte in class.iter() {
                b.labeled_arc(sid, u16::from(byte), tgt, acts.clone());
            }
        }
    }

    // Entry: the start closure's bundle.
    let (bytes, _) = bundle(nfa.start);
    match bytes.len() {
        0 => {
            // Degenerate: no byte edges at all; a lone dead state.
            let s = b.add_consuming_state();
            b.set_entry(s);
        }
        1 => b.set_entry(match_state[&bytes[0]]),
        _ => {
            let tgt = target_of(&mut b, &bytes);
            let Target::State(f) = tgt else {
                unreachable!()
            };
            b.set_entry(f);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_automata::Regex;
    use udp_sim::engine::run_nfa;
    use udp_sim::{Lane, LaneConfig};

    fn scanner_dfa(patterns: &[&str]) -> Dfa {
        let asts: Vec<Regex> = patterns.iter().map(|p| Regex::parse(p).unwrap()).collect();
        Dfa::determinize(&Nfa::scanner(&asts)).minimize()
    }

    fn sorted(mut v: Vec<(u16, u32)>) -> Vec<(u16, u32)> {
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn dfa_program_reports_matches() {
        let dfa = scanner_dfa(&["ab+c", "ca"]);
        let img = dfa_to_udp(&dfa)
            .assemble(&LayoutOptions::with_banks(4))
            .unwrap();
        let input = b"zabbcxcay";
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        let expect: Vec<(u16, u32)> = dfa
            .find_all(input)
            .into_iter()
            .filter(|&(_, e)| e > 0)
            .map(|(id, e)| (id, e as u32))
            .collect();
        assert_eq!(sorted(rep.reports), sorted(expect));
    }

    #[test]
    fn dfa_program_uses_fallback_compression() {
        let dfa = scanner_dfa(&["needle"]);
        let pb = dfa_to_udp(&dfa);
        let img = pb.assemble(&LayoutOptions::with_banks(4)).unwrap();
        // Far fewer transition words than states × 256.
        assert!(
            img.stats.n_transition_words < dfa.len() * 64,
            "{} words for {} states",
            img.stats.n_transition_words,
            dfa.len()
        );
    }

    #[test]
    fn adfa_program_matches_reference() {
        let pats: Vec<&[u8]> = vec![b"he", b"she", b"his", b"hers"];
        let adfa = Adfa::build(&pats);
        let img = adfa_to_udp(&adfa)
            .assemble(&LayoutOptions::with_banks(4))
            .unwrap();
        let input = b"ushers and hisses, she said";
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        let expect: Vec<(u16, u32)> = adfa
            .find_all(input)
            .into_iter()
            .map(|(id, e)| (id, e as u32))
            .collect();
        assert_eq!(sorted(rep.reports), sorted(expect));
    }

    #[test]
    fn adfa_fail_hops_cost_extra_cycles() {
        let pats: Vec<&[u8]> = vec![b"aab"];
        let adfa = Adfa::build(&pats);
        let img = adfa_to_udp(&adfa)
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        // "aaa" repeatedly fails from depth 2 back to depth 1+refill.
        let rep = Lane::run_program(&img, b"aaaaaa", &LaneConfig::default());
        assert!(rep.cycles > 6, "fail hops must add cycles: {}", rep.cycles);
        assert!(rep.reports.is_empty());
    }

    #[test]
    fn d2fa_program_matches_dfa_program() {
        let dfa = scanner_dfa(&["needle", "haystack", "hay"]);
        let d2 = udp_automata::D2fa::from_dfa(&dfa);
        let input = b"find the needle in the haystack of hay";

        let dfa_img = dfa_to_udp(&dfa)
            .assemble(&LayoutOptions::with_banks(8))
            .unwrap();
        let d2_img = d2fa_to_udp(&d2)
            .assemble(&LayoutOptions::with_banks(8))
            .unwrap();
        let a = Lane::run_program(&dfa_img, input, &LaneConfig::default());
        let c = Lane::run_program(&d2_img, input, &LaneConfig::default());
        assert_eq!(sorted(a.reports), sorted(c.reports));
        // Deferment trades cycles for memory against the fully-labeled
        // table (the UDP's own majority fallback is the tighter encoding
        // of the same idea, so compare against the uncompressed form).
        let full_img = dfa_to_udp_full(&dfa)
            .assemble(&LayoutOptions::with_banks(32))
            .unwrap();
        assert!(
            d2_img.stats.n_transition_words < full_img.stats.n_transition_words / 4,
            "D2FA {} vs full DFA {} words",
            d2_img.stats.n_transition_words,
            full_img.stats.n_transition_words
        );
        assert!(c.cycles >= a.cycles);
    }

    #[test]
    fn nfa_program_matches_nfa_simulation() {
        let asts = vec![
            Regex::parse("ab+c").unwrap(),
            Regex::parse("b(x|y)d").unwrap(),
        ];
        let nfa = Nfa::scanner(&asts);
        let img = nfa_to_udp(&nfa)
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let input = b"qabbbc bxd byd";
        let rep = run_nfa(&img, input, &LaneConfig::default());
        let expect: Vec<(u16, u32)> = nfa
            .find_all(input)
            .into_iter()
            .filter(|&(_, e)| e > 0)
            .map(|(id, e)| (id, e as u32))
            .collect();
        assert_eq!(sorted(rep.reports), sorted(expect));
    }

    #[test]
    fn nfa_is_smaller_but_slower_than_dfa() {
        // The classic blow-up: unanchored "a.{6}b" forces the DFA to
        // remember 6 bits of history while the NFA stays linear-size.
        let asts = vec![Regex::parse("a.{6}b").unwrap()];
        let nfa = Nfa::scanner(&asts);
        let dfa = Dfa::determinize(&nfa).minimize();
        assert!(dfa.len() > 4 * nfa.len());

        let nfa_img = nfa_to_udp(&nfa)
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let dfa_img = dfa_to_udp(&dfa)
            .assemble(&LayoutOptions::with_banks(32))
            .unwrap();
        assert!(nfa_img.stats.span_words < dfa_img.stats.span_words);

        // Lots of 'a's keep many NFA activations alive.
        let input = b"aaaaaaaabaaaaaaab aaaab";
        let n = run_nfa(&nfa_img, input, &LaneConfig::default());
        let d = Lane::run_program(&dfa_img, input, &LaneConfig::default());
        assert!(n.cycles > d.cycles, "NFA {} vs DFA {}", n.cycles, d.cycles);
        // And they agree on the matches.
        assert_eq!(sorted(n.reports), sorted(d.reports.into_iter().collect()));
    }
}

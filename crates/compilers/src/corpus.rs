//! The backend corpus: one assembled-and-named [`ProgramBuilder`] per
//! translator configuration, swept over the parameters each translator
//! exposes.
//!
//! This is the shared program set behind three invariants:
//!
//! * the `udp-verify` *soundness* suite (every corpus program verifies
//!   with zero errors),
//! * the assembler→`emit_asm`→`parse_asm` round-trip test,
//! * the `verify` bench binary's per-check summary.
//!
//! Keeping the sweep in one place means a new translator (or a new
//! parameter) is picked up by all three the moment it is added here.

// Allowlisted from the crate's `expect_used` gate: every `expect` here
// guards a compile-time constant (corpus regexes, fixed trees); a
// failure is a bug in this file, not a runtime input.
#![allow(clippy::expect_used)]

use crate::automata::{adfa_to_udp, d2fa_to_udp, dfa_to_udp, dfa_to_udp_full, nfa_to_udp};
use crate::bitpack::{bitpack_decode_to_udp, bitpack_encode_to_udp};
use crate::counting::{counted_to_udp, CountedPattern};
use crate::csv::{csv_to_udp, csv_to_udp_with};
use crate::dict::{dict_rle_to_udp, dict_to_udp};
use crate::histogram::histogram_to_udp;
use crate::huffman::{huffman_decode_to_udp, huffman_encode_to_udp, SymbolMode};
use crate::json::json_to_udp;
use crate::rle::rle_decode_to_udp;
use crate::snappy::{snappy_compress_to_udp, snappy_decompress_to_udp};
use crate::trigger::trigger_to_udp;
use crate::xml::xml_to_udp;
use udp_asm::{AsmError, LayoutOptions, ProgramBuilder, ProgramImage};
use udp_automata::{Adfa, ByteSet, D2fa, Dfa, Nfa, Regex};
use udp_codecs::huffman::HuffmanTree;
use udp_codecs::{Histogram, TriggerFsm};

/// Text the Huffman entries build their code tree from — skewed enough
/// to produce a multi-level tree with both short and long codes.
const HUFFMAN_SAMPLE: &[u8] =
    b"aaaaaaaaaaaaaaaabbbbbbbbccccddeeffgghh the quick brown fox jumps over the lazy dog";

/// Regexes the DFA-family entries are determinized from.
const REGEXES: &[&str] = &["abc", "a(b|c)d", "xy*z", "[0-9][0-9]"];

fn regex_dfa() -> Dfa {
    let asts: Vec<Regex> = REGEXES
        .iter()
        .map(|p| Regex::parse(p).expect("corpus regexes parse"))
        .collect();
    Dfa::determinize(&Nfa::scanner(&asts)).minimize()
}

/// Every translator output in the corpus, `(name, builder)` pairs.
/// Names are stable, lowercase, and unique — they key bench output and
/// test diagnostics.
///
/// # Panics
///
/// Panics only if a corpus ingredient (a regex, a counted pattern)
/// fails to build, which is a bug in the corpus itself.
pub fn corpus() -> Vec<(String, ProgramBuilder)> {
    let mut out: Vec<(String, ProgramBuilder)> = Vec::new();
    let mut add = |name: &str, pb: ProgramBuilder| out.push((name.to_string(), pb));

    // Parsing kernels (§5.1).
    add("csv", csv_to_udp());
    add("csv-semicolon", csv_to_udp_with(b';', b'\''));
    add("json", json_to_udp());
    add("xml", xml_to_udp());

    // Coding kernels (§5.2, §5.4, §5.6).
    add("rle-decode", rle_decode_to_udp());
    for width in [1u8, 4, 8] {
        add(
            &format!("bitpack-enc-w{width}"),
            bitpack_encode_to_udp(width),
        );
        add(
            &format!("bitpack-dec-w{width}"),
            bitpack_decode_to_udp(width),
        );
    }
    for k in [4u32, 8, 11] {
        add(&format!("dict-k{k}"), dict_to_udp(k));
    }
    add("dict-rle-k8", dict_rle_to_udp(8));
    add("snappy-comp", snappy_compress_to_udp());
    add("snappy-decomp", snappy_decompress_to_udp());

    let tree = HuffmanTree::from_data(HUFFMAN_SAMPLE);
    add("huffman-encode", huffman_encode_to_udp(&tree));
    for (tag, mode) in [
        ("sst", SymbolMode::PerTransition),
        ("ssreg", SymbolMode::Register),
        ("ssref", SymbolMode::RegisterRefill),
    ] {
        add(
            &format!("huffman-decode-{tag}"),
            huffman_decode_to_udp(&tree, mode),
        );
    }
    // The SsF unrolling explodes with alphabet size; a small-alphabet
    // tree keeps it inside the 255-slot direct attach range.
    let small_tree = HuffmanTree::from_data(&b"aaabbbcccddaabbccbbaaaddccbbaa".repeat(4));
    add(
        "huffman-decode-ssf",
        huffman_decode_to_udp(&small_tree, SymbolMode::Fixed8),
    );

    // Histogramming (§5.5).
    add(
        "histogram-u4",
        histogram_to_udp(&Histogram::uniform(0.0, 100.0, 4)).0,
    );
    add(
        "histogram-u10",
        histogram_to_udp(&Histogram::uniform(-87.9, -87.5, 10)).0,
    );

    // Pattern matching (§5.3).
    add("adfa", adfa_to_udp(&Adfa::build(&["foo", "bar", "barium"])));
    let dfa = regex_dfa();
    add("dfa", dfa_to_udp(&dfa));
    add("dfa-full", dfa_to_udp_full(&dfa));
    add("d2fa", d2fa_to_udp(&D2fa::from_dfa(&dfa)));
    add(
        "nfa",
        nfa_to_udp(&Nfa::scanner(&[
            Regex::parse("ab*c").expect("corpus regexes parse")
        ])),
    );
    add(
        "counted",
        counted_to_udp(
            &CountedPattern {
                prefix: b"id".to_vec(),
                class: ByteSet::range(b'0', b'9'),
                min: 2,
                max: 5,
                suffix: b";".to_vec(),
            }
            .validated(),
        ),
    );

    // Signal triggering (§5.7).
    add("trigger-p3", trigger_to_udp(&TriggerFsm::new(64, 192, 3)));

    out
}

/// Assembles a builder into the smallest power-of-two bank window that
/// fits, mirroring the bench harnesses' sizing. Returns the last error
/// when even `max_banks` banks do not fit.
pub fn assemble_smallest(pb: &ProgramBuilder, max_banks: usize) -> Result<ProgramImage, AsmError> {
    let mut banks = 1;
    loop {
        match pb.assemble(&LayoutOptions::with_banks(banks)) {
            Ok(img) => return Ok(img),
            Err(_) if banks < max_banks => banks *= 2,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_names_are_unique_and_programs_assemble() {
        let entries = corpus();
        assert!(entries.len() >= 20, "sweep shrank to {}", entries.len());
        let names: HashSet<_> = entries.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names.len(), entries.len(), "duplicate corpus names");
        for (name, pb) in &entries {
            let img = assemble_smallest(pb, 64)
                .unwrap_or_else(|e| panic!("{name} does not assemble: {e}"));
            assert!(img.executable, "{name} must assemble executably");
        }
    }
}

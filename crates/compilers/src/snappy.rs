//! Snappy compression and decompression on the UDP (§5.6).
//!
//! The decompressor is a pure multi-way-dispatch machine: one 256-way
//! dispatch classifies each tag byte, and shared action blocks derive
//! lengths/offsets from the symbol latch (R13) and move bytes with
//! `LoopIn` / `LoopBack` — "multi-way dispatch to deal with complex
//! pattern detection and encoding choice" (§5.6).
//!
//! The compressor is a flagged-dispatch loop: each iteration consumes a
//! byte, `PeekW`s the 4-byte window, `Hash`-probes the in-window hash
//! table, and steers on a computed flag (0 = literal step, 1 = match
//! found, 2 = end of input). Match extension uses `LoopCmp`; literals
//! flush through a chunking sub-loop. Emitted streams are raw-Snappy
//! body bytes — the host prepends the uncompressed-length varint
//! ([`frame_compressed`]), as block framing is host-side in real
//! deployments.
//!
//! Input blocks must be ≤ 64 KB (2-byte copy offsets), the paper's
//! block granularity (Figure 11a sweeps 1–64 KB).

use udp_asm::{ProgramBuilder, StateId, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Default window-relative byte offset of the compressor's hash table
/// (the program itself is well under 4 KB).
pub const HTAB_OFFSET: u32 = 4 * 1024;
/// Default hash index width (table = `2^K` × 4 bytes).
pub const HASH_BITS: u32 = 11;
/// Maximum compressible block (2-byte copy offsets).
pub const MAX_BLOCK: usize = 64 * 1024 - 1;

const R0: Reg = Reg::R0;

fn a(op: Opcode, dst: u8, src: u8, imm: u16) -> Action {
    Action::imm(op, Reg::new(dst), Reg::new(src), imm)
}

fn r(op: Opcode, dst: u8, rref: u8, src: u8) -> Action {
    Action::reg(op, Reg::new(dst), Reg::new(rref), Reg::new(src))
}

/// Builds the Snappy **decompressor**. Feed it a framed stream (varint
/// header included — the varint state skips it); the output is the
/// uncompressed data.
pub fn snappy_decompress_to_udp() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let varint = b.add_consuming_state();
    let tag = b.add_consuming_state();
    b.set_entry(varint);

    // Varint: continuation bytes loop, final byte enters tag dispatch.
    for sym in 0u16..256 {
        let t = if sym < 128 { tag } else { varint };
        b.labeled_arc(varint, sym, Target::State(t), vec![]);
    }

    // Shared literal-copy tail: r1 = length; copies from the cursor and
    // advances past it.
    let lit_tail = |acts: &mut Vec<Action>| {
        acts.push(a(Opcode::InIdx, 2, 0, 0));
        acts.push(r(Opcode::LoopIn, 0, 2, 1));
        acts.push(a(Opcode::SkipB, 0, 1, 0));
    };

    for sym in 0u16..256 {
        let t = sym as u8;
        let mut acts: Vec<Action> = Vec::new();
        match t & 0b11 {
            0b00 => {
                let len6 = t >> 2;
                match len6 {
                    0..=59 => {
                        // len = (tag >> 2) + 1, from the symbol latch.
                        acts.push(a(Opcode::ShrI, 1, 13, 2));
                        acts.push(a(Opcode::AddI, 1, 1, 1));
                        lit_tail(&mut acts);
                    }
                    60 => {
                        acts.push(a(Opcode::ReadBits, 1, 0, 8));
                        acts.push(a(Opcode::AddI, 1, 1, 1));
                        lit_tail(&mut acts);
                    }
                    61 => {
                        acts.push(a(Opcode::ReadBits, 1, 0, 8));
                        acts.push(a(Opcode::ReadBits, 3, 0, 8));
                        acts.push(a(Opcode::ShlI, 3, 3, 8));
                        acts.push(r(Opcode::Or, 1, 1, 3));
                        acts.push(a(Opcode::AddI, 1, 1, 1));
                        lit_tail(&mut acts);
                    }
                    62 | 63 => {
                        let extra = if len6 == 62 { 3 } else { 4 };
                        acts.push(a(Opcode::ReadBits, 1, 0, 8));
                        for k in 1..extra {
                            acts.push(a(Opcode::ReadBits, 3, 0, 8));
                            acts.push(a(Opcode::ShlI, 3, 3, 8 * k));
                            acts.push(r(Opcode::Or, 1, 1, 3));
                        }
                        acts.push(a(Opcode::AddI, 1, 1, 1));
                        lit_tail(&mut acts);
                    }
                    _ => unreachable!(),
                }
            }
            0b01 => {
                // len = 4 + ((tag>>2)&7); offset = ((tag>>5)<<8) | next.
                acts.push(a(Opcode::ShrI, 1, 13, 2));
                acts.push(a(Opcode::AndI, 1, 1, 7));
                acts.push(a(Opcode::AddI, 1, 1, 4));
                acts.push(a(Opcode::ShrI, 2, 13, 5));
                acts.push(a(Opcode::ShlI, 2, 2, 8));
                acts.push(a(Opcode::ReadBits, 3, 0, 8));
                acts.push(r(Opcode::Or, 2, 2, 3));
                acts.push(r(Opcode::LoopBack, 0, 2, 1));
            }
            0b10 | 0b11 => {
                let extra = if t & 0b11 == 0b10 { 2 } else { 4 };
                acts.push(a(Opcode::ShrI, 1, 13, 2));
                acts.push(a(Opcode::AddI, 1, 1, 1));
                acts.push(a(Opcode::ReadBits, 2, 0, 8));
                for k in 1..extra {
                    acts.push(a(Opcode::ReadBits, 3, 0, 8));
                    acts.push(a(Opcode::ShlI, 3, 3, 8 * k));
                    acts.push(r(Opcode::Or, 2, 2, 3));
                }
                acts.push(r(Opcode::LoopBack, 0, 2, 1));
            }
            _ => unreachable!(),
        }
        b.labeled_arc(tag, sym, Target::State(tag), acts);
    }
    b
}

// Compressor register map:
//   r0 flag    r1 window(4B)  r2 input-len (preset)  r3 tmp/lit-len
//   r4 lit-start r5 hash slot r6 table addr  r7 position
//   r8 match len r9 cand/offset r10 tmp r11 found r12 zero
//   r13 symbol  r14 loop cap   r15 stream index

/// Appends a literal-flush chain: entry expects `r3` = literal length,
/// `r4` = literal start, `r0` = (r3 > 60). On exit (`cont`), runs
/// `tail` actions.
fn literal_flush(b: &mut ProgramBuilder, cont: Target, tail: Vec<Action>) -> StateId {
    let lf = b.add_flagged_state();
    // flag 1: emit a full 60-byte chunk and loop.
    b.labeled_arc(
        lf,
        1,
        Target::State(lf),
        vec![
            a(Opcode::EmitB, 0, 12, u16::from(59u8 << 2)),
            a(Opcode::MovI, 10, 0, 60),
            r(Opcode::LoopIn, 0, 4, 10),
            a(Opcode::AddI, 4, 4, 60),
            a(Opcode::SubI, 3, 3, 60),
            a(Opcode::SLtUI, 10, 3, 61),
            a(Opcode::MovI, 0, 0, 1),
            r(Opcode::Sub, 0, 0, 10),
        ],
    );
    // flag 0: emit the remainder (if any) then the tail.
    let mut acts = vec![
        Action::imm2(Opcode::SkipIfZ, R0, Reg::new(3), 4, 0),
        a(Opcode::SubI, 10, 3, 1),
        a(Opcode::ShlI, 10, 10, 2),
        a(Opcode::EmitB, 0, 10, 0),
        r(Opcode::LoopIn, 0, 4, 3),
    ];
    acts.extend(tail);
    b.labeled_arc(lf, 0, cont, acts);
    lf
}

/// Sets `r0 = (r3 > 60)` — the literal-flush entry flag.
fn flush_entry_flag(acts: &mut Vec<Action>) {
    acts.push(a(Opcode::SLtUI, 10, 3, 61));
    acts.push(a(Opcode::MovI, 0, 0, 1));
    acts.push(r(Opcode::Sub, 0, 0, 10));
}

/// Builds the Snappy **compressor** with the default hash-table
/// geometry. See [`snappy_compress_to_udp_with`].
pub fn snappy_compress_to_udp() -> ProgramBuilder {
    snappy_compress_to_udp_with(HASH_BITS, HTAB_OFFSET)
}

/// Builds the Snappy **compressor** for blocks of at most
/// [`MAX_BLOCK`] bytes, with a `2^hash_bits`-slot hash table at
/// `htab_offset`. Bigger tables need bigger lane windows — the
/// local-vs-restricted addressing trade of Figure 11. Staging: `r2` =
/// input length; the engine zeroes the table area. Output: the raw
/// body — frame it with [`frame_compressed`].
pub fn snappy_compress_to_udp_with(hash_bits: u32, htab_offset: u32) -> ProgramBuilder {
    assert!((8..=14).contains(&hash_bits));
    let mut b = ProgramBuilder::new();
    let main = b.add_flagged_state();
    b.set_entry(main);
    let k = hash_bits as u16;

    // flag 2 → flush trailing literals and halt.
    let mut eof_entry = vec![a(Opcode::InIdx, 10, 0, 0), r(Opcode::Sub, 3, 10, 4)];
    flush_entry_flag(&mut eof_entry);
    let lf_eof = literal_flush(&mut b, Target::Halt, vec![a(Opcode::Halt, 0, 0, 0)]);
    b.labeled_arc(main, 2, Target::State(lf_eof), eof_entry);

    // flag 1 → match: extend, flush literals, emit the copy, skip ahead.
    let mut match_entry = vec![
        r(Opcode::Sub, 14, 2, 7),
        a(Opcode::MovI, 10, 0, 64),
        r(Opcode::Min, 14, 14, 10),
        a(Opcode::SubI, 10, 9, 1), // cand
        r(Opcode::LoopCmp, 8, 10, 7),
        r(Opcode::Sub, 9, 7, 10), // offset
        r(Opcode::Sub, 3, 7, 4),  // literal length
    ];
    flush_entry_flag(&mut match_entry);
    let copy_tail = vec![
        a(Opcode::SubI, 10, 8, 1),
        a(Opcode::ShlI, 10, 10, 2),
        a(Opcode::OrI, 10, 10, 2),
        a(Opcode::EmitB, 0, 10, 0),
        a(Opcode::EmitB, 0, 9, 0),
        a(Opcode::ShrI, 10, 9, 8),
        a(Opcode::EmitB, 0, 10, 0),
        a(Opcode::SubI, 10, 8, 1),
        a(Opcode::SkipB, 0, 10, 0),
        a(Opcode::InIdx, 4, 0, 0),
        a(Opcode::AtEof, 10, 0, 0),
        a(Opcode::ShlI, 10, 10, 1),
        r(Opcode::Mov, 0, 0, 10),
    ];
    let lf_match = literal_flush(&mut b, Target::State(main), copy_tail);
    b.labeled_arc(main, 1, Target::State(lf_match), match_entry);

    // flag 0 → scan step: consume one byte, hash-probe, classify.
    b.labeled_arc(
        main,
        0,
        Target::State(main),
        vec![
            a(Opcode::InIdx, 7, 0, 0),
            a(Opcode::ReadBits, 3, 0, 8),
            r(Opcode::PeekW, 1, 7, 12),
            a(Opcode::Hash, 5, 1, k),
            a(Opcode::ShlI, 6, 5, 2),
            a(Opcode::AddI, 6, 6, htab_offset as u16),
            a(Opcode::LoadW, 9, 6, 0),
            a(Opcode::AddI, 10, 7, 1),
            a(Opcode::StoreW, 6, 10, 0),
            r(Opcode::Sub, 14, 2, 7),
            a(Opcode::MovI, 10, 0, 4),
            r(Opcode::Min, 14, 14, 10),
            a(Opcode::SubI, 10, 9, 1),
            r(Opcode::LoopCmp, 11, 10, 7),
            a(Opcode::SEqI, 11, 11, 4),
            a(Opcode::SEqI, 3, 9, 0),
            a(Opcode::MovI, 10, 0, 0),
            r(Opcode::Sel, 11, 3, 10),
            a(Opcode::AtEof, 10, 0, 0),
            a(Opcode::ShlI, 10, 10, 1),
            r(Opcode::Mov, 0, 0, 10),
            a(Opcode::MovI, 3, 0, 1),
            r(Opcode::Sel, 0, 11, 3),
        ],
    );
    b
}

/// Prepends the uncompressed-length varint to a compressor body.
pub fn frame_compressed(uncompressed_len: usize, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 5);
    let mut v = uncompressed_len as u64;
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_codecs::{snappy_compress, snappy_decompress};
    use udp_isa::Reg;
    use udp_sim::engine::Staging;
    use udp_sim::{Lane, LaneConfig, LaneStatus};

    fn udp_decompress(stream: &[u8]) -> Vec<u8> {
        let img = snappy_decompress_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let rep = Lane::run_program(&img, stream, &LaneConfig::default());
        assert!(
            matches!(rep.status, LaneStatus::InputExhausted),
            "{:?}",
            rep.status
        );
        rep.output
    }

    fn udp_compress(data: &[u8]) -> Vec<u8> {
        assert!(data.len() <= MAX_BLOCK);
        let img = snappy_compress_to_udp()
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let staging = Staging {
            segments: vec![],
            regs: vec![(Reg::new(2), data.len() as u32), (Reg::new(0), 0)],
        };
        let (rep, _) = Lane::run_program_capture(&img, data, &staging, &LaneConfig::default());
        assert!(
            matches!(rep.status, LaneStatus::Halted(0)) || data.is_empty(),
            "{:?}",
            rep.status
        );
        frame_compressed(data.len(), &rep.output)
    }

    #[test]
    fn decompressor_inverts_cpu_compressor() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox again!";
        let stream = snappy_compress(data);
        assert_eq!(udp_decompress(&stream), data);
    }

    #[test]
    fn decompressor_handles_long_literals_and_runs() {
        let mut data: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
            .collect();
        data.extend(std::iter::repeat_n(b'z', 3000));
        let stream = snappy_compress(&data);
        assert_eq!(udp_decompress(&stream), data);
    }

    #[test]
    fn compressor_output_is_valid_snappy() {
        let data = b"abcabcabcabcabc hello hello hello world world".repeat(20);
        let framed = udp_compress(&data);
        assert_eq!(snappy_decompress(&framed).unwrap(), data);
        assert!(
            framed.len() < data.len(),
            "{} vs {}",
            framed.len(),
            data.len()
        );
    }

    #[test]
    fn compressor_handles_incompressible_data() {
        let data: Vec<u8> = (0..2000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        let framed = udp_compress(&data);
        assert_eq!(snappy_decompress(&framed).unwrap(), data);
    }

    #[test]
    fn compressor_handles_tiny_inputs() {
        for data in [&b""[..], b"a", b"ab", b"abcd", b"aaaaaaaaaaaa"] {
            let framed = udp_compress(data);
            assert_eq!(snappy_decompress(&framed).unwrap(), data, "input {data:?}");
        }
    }

    #[test]
    fn udp_round_trip_through_both_programs() {
        let data = udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 8000, 31);
        let framed = udp_compress(&data);
        assert_eq!(udp_decompress(&framed), data);
    }

    #[test]
    fn compressible_data_runs_faster_per_byte() {
        let img = snappy_compress_to_udp()
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let run = |data: &[u8]| {
            let staging = Staging {
                segments: vec![],
                regs: vec![(Reg::new(2), data.len() as u32)],
            };
            let (rep, _) = Lane::run_program_capture(&img, data, &staging, &LaneConfig::default());
            rep.cycles as f64 / data.len() as f64
        };
        let low = udp_workloads::canterbury_like(udp_workloads::Entropy::Low, 10_000, 1);
        let high = udp_workloads::canterbury_like(udp_workloads::Entropy::High, 10_000, 1);
        assert!(
            run(&low) < run(&high),
            "compressible input should take fewer cycles/byte"
        );
    }
}

//! Counting automata on the UDP (the c-NFA column of Table 1).
//!
//! Patterns like `P x{min,max} Q` explode when expanded into plain DFA
//! states — one state per count value. A counting automaton keeps *one*
//! counting state plus a scalar counter, which is exactly what flagged
//! dispatch enables: the counter lives in a register, the count check is
//! an action chain, and the three-way outcome (keep counting / try the
//! suffix / reset) steers a register-sourced dispatch.
//!
//! Determinism restriction (documented): the counted byte class and the
//! suffix's first byte must be disjoint, so the automaton never has to
//! guess where the run ends — the shape of bounded-repetition NIDS rules
//! like `evil[0-9]{4,12}payload`.

use udp_asm::{ProgramBuilder, StateId, Target};
use udp_automata::ByteSet;
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// A `prefix class{min,max} suffix` pattern.
#[derive(Debug, Clone)]
pub struct CountedPattern {
    /// Literal prefix (may be empty).
    pub prefix: Vec<u8>,
    /// The counted byte class.
    pub class: ByteSet,
    /// Minimum repetitions.
    pub min: u32,
    /// Maximum repetitions.
    pub max: u32,
    /// Literal suffix (non-empty; its first byte must not be in `class`).
    pub suffix: Vec<u8>,
}

impl CountedPattern {
    /// Validates the determinism restriction.
    ///
    /// # Panics
    ///
    /// Panics if the suffix is empty, bounds are inverted, or the suffix
    /// start overlaps the counted class.
    pub fn validated(self) -> CountedPattern {
        assert!(!self.suffix.is_empty(), "suffix must be non-empty");
        assert!(self.min <= self.max && self.max >= 1, "bad bounds");
        assert!(
            !self.class.contains(self.suffix[0]),
            "suffix start must leave the counted class"
        );
        assert!(!self.prefix.is_empty(), "prefix must be non-empty");
        self
    }

    /// Reference scan: the exact single-pass (restart-after-reject, no
    /// backtracking) counting machine the UDP program implements,
    /// returning each match's end position.
    pub fn find_all(&self, input: &[u8]) -> Vec<usize> {
        #[derive(Clone, Copy)]
        enum S {
            Prefix(usize),
            Count(u32),
            Suffix(usize),
        }
        let mut out = Vec::new();
        let mut s = S::Prefix(0);
        for (i, &b) in input.iter().enumerate() {
            s = match s {
                S::Prefix(k) => {
                    if b == self.prefix[k] {
                        if k + 1 == self.prefix.len() {
                            S::Count(0)
                        } else {
                            S::Prefix(k + 1)
                        }
                    } else {
                        // Single-pass: the mismatched byte is consumed
                        // (the compiled fallback arc), no re-arming.
                        S::Prefix(0)
                    }
                }
                S::Count(c) => {
                    if self.class.contains(b) {
                        S::Count(c.saturating_add(1))
                    } else if b == self.suffix[0] && (self.min..=self.max).contains(&c) {
                        if self.suffix.len() == 1 {
                            out.push(i + 1);
                            S::Prefix(0)
                        } else {
                            S::Suffix(1)
                        }
                    } else {
                        S::Prefix(0)
                    }
                }
                S::Suffix(k) => {
                    if b == self.suffix[k] {
                        if k + 1 == self.suffix.len() {
                            out.push(i + 1);
                            S::Prefix(0)
                        } else {
                            S::Suffix(k + 1)
                        }
                    } else {
                        S::Prefix(0)
                    }
                }
            };
        }
        out
    }

    /// States a plain DFA expansion would need (the blow-up the counter
    /// avoids): prefix + one state per count value + suffix.
    pub fn expanded_state_estimate(&self) -> usize {
        self.prefix.len() + self.max as usize + self.suffix.len() + 1
    }
}

/// Compiles the counting automaton. Matches `Report(0)` at their end
/// position; the program scans the whole input.
pub fn counted_to_udp(p: &CountedPattern) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let r_cnt = Reg::new(1);
    let r_ok = Reg::new(2);
    let r_t = Reg::new(3);

    // Prefix chain (restart-on-mismatch via fallback to start).
    let start = b.add_consuming_state();
    b.set_entry(start);
    let mut chain: Vec<StateId> = vec![start];
    for _ in 1..p.prefix.len() {
        chain.push(b.add_consuming_state());
    }
    let count_state = b.add_consuming_state();
    let check = b.add_flagged_state();
    let mut suffix_chain: Vec<StateId> = Vec::new();
    for _ in 0..p.suffix.len() {
        suffix_chain.push(b.add_consuming_state());
    }

    let reset = vec![Action::imm(Opcode::MovI, r_cnt, Reg::R0, 0)];
    // Prefix arcs.
    for (k, &byte) in p.prefix.iter().enumerate() {
        let next = if k + 1 < p.prefix.len() {
            Target::State(chain[k + 1])
        } else {
            Target::State(count_state)
        };
        let acts = if k + 1 == p.prefix.len() {
            reset.clone()
        } else {
            vec![]
        };
        b.labeled_arc(chain[k], u16::from(byte), next, acts);
        b.fallback_arc(chain[k], Target::State(start), vec![]);
    }
    // Counting state: class bytes bump the counter (bounded by max+1);
    // the suffix's first byte goes to the flagged check; anything else
    // resets.
    for sym in 0u16..256 {
        let byte = sym as u8;
        if p.class.contains(byte) {
            b.labeled_arc(
                count_state,
                sym,
                Target::State(count_state),
                vec![Action::imm(Opcode::AddI, r_cnt, r_cnt, 1)],
            );
        } else if byte == p.suffix[0] {
            // flag = (min <= count <= max) ? 1 : 0
            b.labeled_arc(
                count_state,
                sym,
                Target::State(check),
                vec![
                    Action::imm(Opcode::SLtUI, r_ok, r_cnt, (p.max + 1).min(65535) as u16),
                    Action::imm(Opcode::SLtUI, r_t, r_cnt, p.min.min(65535) as u16),
                    Action::reg(Opcode::Sub, Reg::R0, r_ok, r_t),
                ],
            );
        } else {
            b.labeled_arc(count_state, sym, Target::State(start), reset.clone());
        }
    }

    // Check: count in range → continue the suffix (its first byte is
    // already consumed); else restart.
    let after_first = if p.suffix.len() == 1 {
        Target::Halt // replaced below by report arc
    } else {
        Target::State(suffix_chain[1])
    };
    let report = vec![Action::imm(Opcode::Report, Reg::R0, Reg::R0, 0)];
    if p.suffix.len() == 1 {
        b.labeled_arc(check, 1, Target::State(start), report.clone());
    } else {
        b.labeled_arc(check, 1, after_first, vec![]);
    }
    b.labeled_arc(check, 0, Target::State(start), reset.clone());

    // Remaining suffix bytes.
    for k in 1..p.suffix.len() {
        let last = k + 1 == p.suffix.len();
        let next = if last {
            Target::State(start)
        } else {
            Target::State(suffix_chain[k + 1])
        };
        let acts = if last { report.clone() } else { vec![] };
        b.labeled_arc(suffix_chain[k], u16::from(p.suffix[k]), next, acts);
        b.fallback_arc(suffix_chain[k], Target::State(start), reset.clone());
    }
    if !suffix_chain.is_empty() {
        // suffix_chain[0] is unreachable (first byte handled by check);
        // give it a harmless fallback so the layout stays valid.
        b.fallback_arc(suffix_chain[0], Target::State(start), vec![]);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_sim::{Lane, LaneConfig};

    fn digits() -> ByteSet {
        ByteSet::range(b'0', b'9')
    }

    fn pattern(min: u32, max: u32) -> CountedPattern {
        CountedPattern {
            prefix: b"id=".to_vec(),
            class: digits(),
            min,
            max,
            suffix: b";".to_vec(),
        }
        .validated()
    }

    fn run(p: &CountedPattern, input: &[u8]) -> Vec<usize> {
        let img = counted_to_udp(p)
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        rep.reports.iter().map(|&(_, pos)| pos as usize).collect()
    }

    #[test]
    fn matches_counts_in_range() {
        let p = pattern(2, 4);
        let input = b"id=12; id=1; id=12345; id=999;";
        assert_eq!(run(&p, input), p.find_all(input));
        assert_eq!(p.find_all(input), vec![6, 30]);
    }

    #[test]
    fn prefixless_class_runs() {
        let p = CountedPattern {
            prefix: b"x".to_vec(),
            class: ByteSet::single(b'a'),
            min: 3,
            max: 5,
            suffix: b"!".to_vec(),
        }
        .validated();
        let input = b"xaaa! xaa! xaaaaa! xaaaaaa!";
        assert_eq!(run(&p, input), p.find_all(input));
        assert_eq!(p.find_all(input).len(), 2);
    }

    #[test]
    fn counter_beats_state_expansion() {
        let p = pattern(4, 4000);
        let img = counted_to_udp(&p)
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        assert!(
            img.stats.n_states < 12,
            "counting keeps {} states vs ~{} expanded",
            img.stats.n_states,
            p.expanded_state_estimate()
        );
        assert!(p.expanded_state_estimate() > 4000);
        // And it still matches.
        let mut input = b"id=".to_vec();
        input.extend(std::iter::repeat_n(b'7', 1000));
        input.push(b';');
        assert_eq!(run(&p, &input), vec![input.len()]);
    }

    #[test]
    #[should_panic(expected = "suffix start")]
    fn overlapping_class_is_rejected() {
        let _ = CountedPattern {
            prefix: vec![],
            class: digits(),
            min: 1,
            max: 2,
            suffix: b"5x".to_vec(),
        }
        .validated();
    }

    #[test]
    fn multi_byte_suffix() {
        let p = CountedPattern {
            prefix: b"v".to_vec(),
            class: digits(),
            min: 1,
            max: 3,
            suffix: b"end".to_vec(),
        }
        .validated();
        let input = b"v12end v1234end vend v9end";
        assert_eq!(run(&p, input), p.find_all(input));
        assert_eq!(p.find_all(input).len(), 2);
    }
}

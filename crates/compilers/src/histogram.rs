//! Histogramming on the UDP (§5.5).
//!
//! "The dividers are compiled into an automata scans of 4 bits a time,
//! with acceptance states updating the appropriate bin" (§4.1). The
//! translator builds a nibble-classification trie over the IEEE-754 bit
//! pattern of each value: as soon as a bit prefix pins the value to a
//! single bin, the arc bumps that bin's counter (`BumpW`), skips the
//! value's remaining bits, and returns to the root.
//!
//! The stream carries *big-endian* `f32` words so the most significant
//! nibble arrives first — the byte swap is the DLT engine's job in the
//! real system ([`to_big_endian`] models it).

use udp_asm::{ProgramBuilder, StateId, Target};
use udp_codecs::Histogram;
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Byte offset of the bin-counter table inside each lane window.
pub const BIN_TABLE_OFFSET: u32 = 12 * 1024;

/// Where the compiled program keeps its counters.
#[derive(Debug, Clone, Copy)]
pub struct HistLayout {
    /// Window-relative byte offset of the `u32` counter table.
    pub table_offset: u32,
    /// Counter slots: one per bin plus a trailing outlier slot.
    pub slots: usize,
}

/// Total-order key of a float's raw bits (monotone in float order for
/// all non-NaN values; NaNs land outside every bin).
fn order_key(raw: u32) -> u32 {
    if raw == 0x8000_0000 {
        // -0.0 compares equal to +0.0 in IEEE-754.
        0x8000_0000
    } else if raw & 0x8000_0000 != 0 {
        !raw
    } else {
        raw | 0x8000_0000
    }
}

/// Classifies raw bits: `0` = below all edges, `1..=E-1` = bin index + 1,
/// `E` = at/above the last edge (E = number of edges).
fn class_of(raw: u32, edge_keys: &[u32]) -> usize {
    let k = order_key(raw);
    edge_keys.partition_point(|&e| e <= k)
}

fn slot_of(class: usize, n_edges: usize, n_bins: usize) -> usize {
    if class == 0 || class >= n_edges {
        n_bins // outlier slot
    } else {
        class - 1
    }
}

/// Compiles a [`Histogram`]'s edges into the nibble-scan (4-bit) UDP
/// program — the paper's design point.
pub fn histogram_to_udp(hist: &Histogram) -> (ProgramBuilder, HistLayout) {
    histogram_to_udp_width(hist, 4)
}

/// Compiles the classification trie at dispatch width `w` bits
/// (`w ∈ {2, 4, 8}`): the static-symbol-size study of Figure 8 — wider
/// symbols mean fewer dispatches per value but exponentially larger
/// states.
pub fn histogram_to_udp_width(hist: &Histogram, w: u8) -> (ProgramBuilder, HistLayout) {
    assert!(matches!(w, 2 | 4 | 8), "width must divide 32");
    let edge_keys: Vec<u32> = hist
        .edges()
        .iter()
        .map(|e| order_key(e.to_bits()))
        .collect();
    let n_bins = hist.bins();
    let layout = HistLayout {
        table_offset: BIN_TABLE_OFFSET,
        slots: n_bins + 1,
    };

    let mut b = ProgramBuilder::new();
    b.set_symbol_bits(w);
    let root = b.add_consuming_state();
    b.set_entry(root);

    // Recursive trie construction over (depth, prefix).
    #[allow(clippy::too_many_arguments)]
    fn build(
        b: &mut ProgramBuilder,
        root: StateId,
        edge_keys: &[u32],
        n_bins: usize,
        layout: &HistLayout,
        w: u8,
        state: StateId,
        depth: u8,
        prefix: u32,
    ) {
        let max_depth = 32 / w;
        for sym in 0..(1u32 << w) {
            let p = (prefix << w) | sym;
            let d = depth + 1;
            let shift = 32 - u32::from(w) * u32::from(d);
            let lo = p << shift;
            let hi = lo | ((1u64 << shift) - 1) as u32;
            let same_half = (lo & 0x8000_0000) == (hi & 0x8000_0000);
            let c_lo = class_of(lo, edge_keys);
            let c_hi = class_of(hi, edge_keys);
            if same_half && c_lo == c_hi {
                // Leaf: bump the bin, skip the value's remaining bits.
                let slot = slot_of(c_lo, edge_keys.len(), n_bins);
                let mut acts = vec![Action::imm(
                    Opcode::BumpW,
                    Reg::R0,
                    Reg::new(12),
                    (layout.table_offset + slot as u32 * 4) as u16,
                )];
                let skip = 32 - u16::from(w) * u16::from(d);
                if skip > 0 {
                    acts.push(Action::imm(Opcode::ReadBits, Reg::new(11), Reg::R0, skip));
                }
                b.labeled_arc(state, sym as u16, Target::State(root), acts);
            } else {
                debug_assert!(d < max_depth, "full-depth prefixes are single values");
                let child = b.add_consuming_state();
                b.labeled_arc(state, sym as u16, Target::State(child), vec![]);
                build(b, root, edge_keys, n_bins, layout, w, child, d, p);
            }
        }
    }
    build(&mut b, root, &edge_keys, n_bins, &layout, w, root, 0, 0);
    (b, layout)
}

/// Byte-swaps a little-endian `f32` stream to big-endian (the DLT
/// staging step).
pub fn to_big_endian(le: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(le.len());
    for c in le.chunks_exact(4) {
        out.extend_from_slice(&[c[3], c[2], c[1], c[0]]);
    }
    out
}

/// Reads the counters back from a lane memory.
pub fn read_bins(mem: &udp_sim::LocalMemory, layout: &HistLayout) -> Vec<u64> {
    (0..layout.slots)
        .map(|i| u64::from(mem.peek_word((layout.table_offset + i as u32 * 4) / 4)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_sim::engine::Staging;
    use udp_sim::{Lane, LaneConfig};

    fn run_hist(hist: &Histogram, le_bytes: &[u8], banks: usize) -> (Vec<u64>, u64) {
        let (pb, layout) = histogram_to_udp(hist);
        let img = pb.assemble(&LayoutOptions::with_banks(banks)).unwrap();
        let be = to_big_endian(le_bytes);
        let (rep, mem) =
            Lane::run_program_capture(&img, &be, &Staging::default(), &LaneConfig::default());
        assert_eq!(rep.status, udp_sim::LaneStatus::InputExhausted);
        (read_bins(&mem, &layout), rep.cycles)
    }

    fn check_against_baseline(edges: Vec<f32>, values: &[f32]) {
        let mut base = Histogram::with_edges(edges.clone());
        base.add_all(values);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (bins, _) = run_hist(&Histogram::with_edges(edges), &bytes, 2);
        let mut expect: Vec<u64> = base.counts().to_vec();
        expect.push(base.outliers());
        assert_eq!(bins, expect);
    }

    #[test]
    fn uniform_bins_match_baseline() {
        let vals: Vec<f32> = (0..500)
            .map(|i| (i as f32 * 0.937).rem_euclid(12.0) - 1.0)
            .collect();
        check_against_baseline(Histogram::uniform(0.0, 10.0, 10).edges().to_vec(), &vals);
    }

    #[test]
    fn negative_values_and_outliers() {
        check_against_baseline(
            vec![-5.0, -1.0, 0.0, 2.5, 7.0],
            &[
                -10.0,
                -5.0,
                -2.0,
                -0.5,
                0.0,
                1.0,
                2.5,
                6.9,
                7.0,
                100.0,
                f32::NAN,
                -0.0,
            ],
        );
    }

    #[test]
    fn latitude_workload_matches_baseline() {
        let le = udp_workloads::latitude_stream(2000, 8);
        let vals: Vec<f32> = le
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let hist = Histogram::uniform(41.6, 42.0, 10);
        let mut base = Histogram::uniform(41.6, 42.0, 10);
        base.add_all(&vals);
        let (bins, _) = run_hist(&hist, &le, 2);
        let mut expect: Vec<u64> = base.counts().to_vec();
        expect.push(base.outliers());
        assert_eq!(bins, expect);
    }

    #[test]
    fn percentile_bins_compile_too() {
        let le = udp_workloads::fare_stream(1000, 9);
        let vals: Vec<f32> = le
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let hist = Histogram::percentile(&vals, 4);
        let mut base = Histogram::with_edges(hist.edges().to_vec());
        base.add_all(&vals);
        let (bins, _) = run_hist(&hist, &le, 2);
        let mut expect: Vec<u64> = base.counts().to_vec();
        expect.push(base.outliers());
        assert_eq!(bins, expect);
    }

    #[test]
    fn rate_is_a_few_cycles_per_value() {
        let le = udp_workloads::fare_stream(2000, 10);
        let hist = Histogram::uniform(0.0, 100.0, 4);
        let (_, cycles) = run_hist(&hist, &le, 2);
        let per_value = cycles as f64 / 2000.0;
        // ≤ 8 nibble dispatches + bump + skip.
        assert!(per_value < 12.0, "cycles/value = {per_value}");
        assert!(per_value > 2.0);
    }
}

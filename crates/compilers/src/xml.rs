//! XML tokenization on the UDP — completing Table 1's parsing column
//! (CSV §5.1, JSON, XML).
//!
//! Eleven consuming states cover the element/attribute/text subset of
//! `udp_codecs::xml`; names, attribute values, and text runs are
//! extracted with the same `LoopIn` segment copies as the CSV and JSON
//! tokenizers. Entities stay raw (the compat mode). Malformed markup
//! ends the lane with `NoTransition`.

use udp_asm::{ProgramBuilder, StateId, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Content terminator in the output framing.
pub const CONTENT_SEP: u8 = 0x1F;

const WS: [u8; 4] = [b' ', b'\t', b'\n', b'\r'];

fn emit(b: u8) -> Action {
    Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(b))
}

fn mark_start(offset: i16) -> Action {
    Action::imm(Opcode::InIdx, Reg::new(1), Reg::R0, offset as u16)
}

fn flush_segment() -> Vec<Action> {
    vec![
        Action::imm(Opcode::InIdx, Reg::new(3), Reg::R0, 0u16.wrapping_sub(1)),
        Action::reg(Opcode::Sub, Reg::new(2), Reg::new(3), Reg::new(1)),
        Action::reg(Opcode::LoopIn, Reg::R0, Reg::new(1), Reg::new(2)),
        emit(CONTENT_SEP),
    ]
}

fn name_start_bytes() -> Vec<u8> {
    (b'a'..=b'z').chain(b'A'..=b'Z').chain([b'_']).collect()
}

fn name_bytes() -> Vec<u8> {
    let mut v = name_start_bytes();
    v.extend(b'0'..=b'9');
    v.extend([b'-', b':', b'.']);
    v
}

/// Builds the UDP XML tokenizer.
pub fn xml_to_udp() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let content = b.add_consuming_state();
    let text = b.add_consuming_state();
    let tag_start = b.add_consuming_state();
    let close0 = b.add_consuming_state();
    let close_name = b.add_consuming_state();
    let open_name = b.add_consuming_state();
    let attr_space = b.add_consuming_state();
    let attr_name = b.add_consuming_state();
    let attr_eq = b.add_consuming_state();
    let val_dq = b.add_consuming_state();
    let val_sq = b.add_consuming_state();
    let expect_gt = b.add_consuming_state();
    b.set_entry(content);

    let name_chars = name_bytes();

    // ---- content ----------------------------------------------------
    for sym in 0u16..256 {
        let byte = sym as u8;
        if byte == b'<' {
            b.labeled_arc(content, sym, Target::State(tag_start), vec![]);
        } else if WS.contains(&byte) {
            b.labeled_arc(content, sym, Target::State(content), vec![]);
        } else {
            b.labeled_arc(
                content,
                sym,
                Target::State(text),
                vec![emit(b'X'), mark_start(-1)],
            );
        }
    }

    // ---- text ---------------------------------------------------------
    for sym in 0u16..256 {
        if sym as u8 == b'<' {
            b.labeled_arc(text, sym, Target::State(tag_start), flush_segment());
        } else {
            b.labeled_arc(text, sym, Target::State(text), vec![]);
        }
    }

    // ---- tag_start / close0 --------------------------------------------
    b.labeled_arc(tag_start, u16::from(b'/'), Target::State(close0), vec![]);
    for &s in &name_start_bytes() {
        b.labeled_arc(
            tag_start,
            u16::from(s),
            Target::State(open_name),
            vec![emit(b'O'), mark_start(-1)],
        );
        b.labeled_arc(
            close0,
            u16::from(s),
            Target::State(close_name),
            vec![emit(b'C'), mark_start(-1)],
        );
    }

    // ---- open_name ------------------------------------------------------
    let name_continue = |b2: &mut ProgramBuilder, state: StateId| {
        for &s in &name_chars {
            b2.labeled_arc(state, u16::from(s), Target::State(state), vec![]);
        }
    };
    name_continue(&mut b, open_name);
    for &s in &WS {
        b.labeled_arc(
            open_name,
            u16::from(s),
            Target::State(attr_space),
            flush_segment(),
        );
    }
    {
        let mut acts = flush_segment();
        acts.push(emit(b'>'));
        b.labeled_arc(open_name, u16::from(b'>'), Target::State(content), acts);
    }
    b.labeled_arc(
        open_name,
        u16::from(b'/'),
        Target::State(expect_gt),
        flush_segment(),
    );

    // ---- attr_space -------------------------------------------------------
    for &s in &WS {
        b.labeled_arc(attr_space, u16::from(s), Target::State(attr_space), vec![]);
    }
    b.labeled_arc(
        attr_space,
        u16::from(b'>'),
        Target::State(content),
        vec![emit(b'>')],
    );
    b.labeled_arc(
        attr_space,
        u16::from(b'/'),
        Target::State(expect_gt),
        vec![],
    );
    for &s in &name_start_bytes() {
        b.labeled_arc(
            attr_space,
            u16::from(s),
            Target::State(attr_name),
            vec![emit(b'A'), mark_start(-1)],
        );
    }

    // ---- attr_name ----------------------------------------------------------
    name_continue(&mut b, attr_name);
    b.labeled_arc(
        attr_name,
        u16::from(b'='),
        Target::State(attr_eq),
        flush_segment(),
    );

    // ---- attr_eq --------------------------------------------------------------
    b.labeled_arc(
        attr_eq,
        u16::from(b'"'),
        Target::State(val_dq),
        vec![mark_start(0)],
    );
    b.labeled_arc(
        attr_eq,
        u16::from(b'\''),
        Target::State(val_sq),
        vec![mark_start(0)],
    );

    // ---- attribute values ---------------------------------------------------------
    for (state, quote) in [(val_dq, b'"'), (val_sq, b'\'')] {
        for sym in 0u16..256 {
            if sym as u8 == quote {
                b.labeled_arc(state, sym, Target::State(attr_space), flush_segment());
            } else {
                b.labeled_arc(state, sym, Target::State(state), vec![]);
            }
        }
    }

    // ---- close_name ----------------------------------------------------------------
    name_continue(&mut b, close_name);
    b.labeled_arc(
        close_name,
        u16::from(b'>'),
        Target::State(content),
        flush_segment(),
    );

    // ---- expect_gt ---------------------------------------------------------------------
    b.labeled_arc(
        expect_gt,
        u16::from(b'>'),
        Target::State(content),
        vec![emit(b'E')],
    );
    b
}

/// The CPU-side reference framing for equivalence tests.
///
/// # Panics
///
/// Panics if `input` is not valid subset-XML.
// Allowlisted from the crate's `expect_used` gate: the panic is this
// reference helper's documented contract for invalid test inputs.
#[allow(clippy::expect_used)]
pub fn baseline_framing(input: &[u8]) -> Vec<u8> {
    let toks = udp_codecs::xml::XmlTokenizer::compat()
        .tokenize(input)
        .expect("valid XML input");
    udp_codecs::xml::compat_framing(&toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_sim::{Lane, LaneConfig, LaneStatus};

    fn run(input: &[u8]) -> (Vec<u8>, LaneStatus) {
        let img = xml_to_udp()
            .assemble(&LayoutOptions::with_banks(2))
            .unwrap();
        let rep = Lane::run_program(&img, input, &LaneConfig::default());
        (rep.output, rep.status)
    }

    #[test]
    fn element_matches_baseline() {
        let input = br#"<row id="7" kind='x'>hello</row>"#;
        let (out, status) = run(input);
        assert_eq!(status, LaneStatus::InputExhausted);
        assert_eq!(out, baseline_framing(input));
    }

    #[test]
    fn nesting_and_self_close_match_baseline() {
        let input = b"<a><b/><c n=\"1\">t1</c> tail </a>";
        let (out, _) = run(input);
        assert_eq!(out, baseline_framing(input));
    }

    #[test]
    fn entities_stay_raw_like_compat() {
        let input = b"<v a=\"x&amp;y\">1 &lt; 2</v>";
        let (out, _) = run(input);
        assert_eq!(out, baseline_framing(input));
    }

    #[test]
    fn malformed_markup_stops_the_lane() {
        for bad in [&b"<1tag/>"[..], b"<a foo>", b"<!-- c -->", b"< a>"] {
            let (_, status) = run(bad);
            assert_eq!(status, LaneStatus::NoTransition, "{bad:?}");
        }
    }

    #[test]
    fn xml_workload_matches_baseline() {
        let data = udp_workloads::xml_records(30_000, 5);
        let (out, status) = run(&data);
        assert_eq!(status, LaneStatus::InputExhausted);
        assert_eq!(out, baseline_framing(&data));
    }
}

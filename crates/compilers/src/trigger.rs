//! Signal triggering on the UDP (§5.7).
//!
//! The transition-localization FSM dispatches directly on raw 8-bit
//! samples — one cycle per sample, which is where the paper's constant
//! 1,055 MB/s single-lane rate comes from. Every state has full 256-way
//! labeled fan-out (quantization is free: the sample ranges map straight
//! onto labeled-arc ranges), and the falling-edge arc of the armed state
//! carries a `Report` action.

use udp_asm::{ProgramBuilder, StateId, Target};
use udp_codecs::TriggerFsm;
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;

/// Compiles a [`TriggerFsm`] (pulse-width `pN` detector) to a UDP
/// program. Events are `Report(0)` at the falling-edge sample.
pub fn trigger_to_udp(fsm: &TriggerFsm) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let n_states = fsm.state_count();
    let states: Vec<StateId> = (0..n_states).map(|_| b.add_consuming_state()).collect();
    b.set_entry(states[0]);

    for s in 0..n_states {
        for sym in 0u16..256 {
            let level = fsm.quantize(sym as u8);
            let (next, fire) = fsm.step(s, level);
            let actions = if fire {
                vec![Action::imm(Opcode::Report, Reg::R0, Reg::R0, 0)]
            } else {
                vec![]
            };
            b.labeled_arc(
                states[s as usize],
                sym,
                Target::State(states[next as usize]),
                actions,
            );
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::LayoutOptions;
    use udp_sim::{Lane, LaneConfig};

    #[test]
    fn udp_trigger_matches_reference() {
        let fsm = TriggerFsm::new(64, 192, 3);
        let img = trigger_to_udp(&fsm)
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let (samples, edges) = udp_workloads::pulsed_waveform(5_000, &[3], 25, 1);
        let rep = Lane::run_program(&img, &samples, &LaneConfig::default());
        let got: Vec<usize> = rep.reports.iter().map(|&(_, p)| p as usize - 1).collect();
        assert_eq!(got, edges[0]);
        assert_eq!(got, fsm.run_reference(&samples));
    }

    #[test]
    fn rate_is_one_cycle_per_sample() {
        let fsm = TriggerFsm::new(64, 192, 5);
        let img = trigger_to_udp(&fsm)
            .assemble(&LayoutOptions::with_banks(1))
            .unwrap();
        let (samples, _) = udp_workloads::pulsed_waveform(10_000, &[5], 40, 2);
        let rep = Lane::run_program(&img, &samples, &LaneConfig::default());
        // Constant rate: ~1 cycle/sample plus rare report actions.
        assert!(rep.cycles < samples.len() as u64 + 400, "{}", rep.cycles);
        assert_eq!(rep.fallback_misses, 0);
    }

    #[test]
    fn wide_fsm_spans_multiple_banks() {
        let fsm = TriggerFsm::new(64, 192, 13);
        let pb = trigger_to_udp(&fsm);
        let img = pb.assemble(&LayoutOptions::with_banks(2)).unwrap();
        // p13: 15 states × 257-word footprints ≈ 3855 words; packing may
        // exceed one 4096-word bank, which restricted addressing allows.
        assert!(img.stats.span_words > 3000);
        let (samples, edges) = udp_workloads::pulsed_waveform(3_000, &[13], 40, 3);
        let rep = Lane::run_program(&img, &samples, &LaneConfig::default());
        assert_eq!(rep.reports.len(), edges[0].len());
    }
}

//! Differential oracle for the tier-2 compiled backend (DESIGN.md
//! §2.6.3): every program in the compiler corpus, run through
//! `ExecBackend::Compiled`, must produce a `UdpRunReport` bit-identical
//! to the interpreter's — outputs, cycles, dispatches, memory
//! references, statuses, health, everything `PartialEq` sees.
//!
//! The interpreter is the reference semantics; the compiled path is an
//! optimization of it, never a second semantics. That includes the
//! fault surface: chaos-injected faults and cycle-budget caps must fire
//! at the same cycle with the same typed `FaultKind` on both backends.

use udp_compilers::corpus::{assemble_smallest, corpus};
use udp_isa::mem::BANK_WORDS;
use udp_sim::{ExecBackend, FaultKind, LaneConfig, LaneStatus, Staging, Udp, UdpRunOptions};

/// Deterministic xorshift64* byte stream (no rand dependency).
fn pseudo_bytes(n: usize, mut seed: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let word = seed.wrapping_mul(0x2545F4914F6CDD1D);
        v.extend_from_slice(&word.to_le_bytes());
    }
    v.truncate(n);
    v
}

/// Printable-ish bytes (letters, digits, separators) — random enough to
/// wander, structured enough to keep parser kernels alive longer than
/// raw noise does.
fn texty_bytes(n: usize, seed: u64) -> Vec<u8> {
    const SET: &[u8] = b"abcdefghij0123456789,;\"\n xyz<>{}:";
    pseudo_bytes(n, seed)
        .into_iter()
        .map(|b| SET[b as usize % SET.len()])
        .collect()
}

/// The input chunks every corpus program is differentially tested on.
/// Mixed sizes (empty, tiny, page-ish) exercise the burst loop's entry,
/// exit, and degenerate paths.
fn generic_inputs(name: &str) -> Vec<Vec<u8>> {
    let mut chunks = vec![
        Vec::new(),
        texty_bytes(3, 11),
        pseudo_bytes(1024, 42),
        texty_bytes(4096, 7),
    ];
    if name.starts_with("csv") {
        chunks.push(udp_workloads::crimes_csv(8_000, 21));
    }
    if name == "json" || name == "xml" {
        chunks.push(texty_bytes(8_000, 91));
    }
    chunks
}

fn opts(backend: ExecBackend, banks: usize, lane: LaneConfig) -> UdpRunOptions {
    UdpRunOptions {
        banks_per_lane: banks,
        lane,
        backend,
        ..UdpRunOptions::default()
    }
}

/// Runs the corpus under `lane` on both backends and asserts full
/// report equality; returns the per-program statuses for callers that
/// additionally constrain the fault surface.
fn diff_corpus(lane: &LaneConfig) -> Vec<(String, Vec<LaneStatus>)> {
    let mut statuses = Vec::new();
    for (name, pb) in corpus() {
        let img = assemble_smallest(&pb, 64).unwrap_or_else(|e| panic!("{name}: {e}"));
        let banks = img
            .stats
            .span_words
            .div_ceil(BANK_WORDS)
            .next_power_of_two();
        let chunks = generic_inputs(&name);
        let inputs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let reference = Udp::new().try_run_data_parallel(
            &img,
            &inputs,
            &Staging::default(),
            &opts(ExecBackend::Interpreter, banks, lane.clone()),
        );
        let compiled = Udp::new().try_run_data_parallel(
            &img,
            &inputs,
            &Staging::default(),
            &opts(ExecBackend::Compiled, banks, lane.clone()),
        );
        let (reference, compiled) = match (reference, compiled) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => panic!("{name}: run errors differ or failed: {a:?} vs {b:?}"),
        };
        assert_eq!(
            reference, compiled,
            "{name}: compiled backend diverged from the interpreter"
        );
        statuses.push((
            name,
            reference.lanes.iter().map(|l| l.status.clone()).collect(),
        ));
    }
    statuses
}

#[test]
fn corpus_reports_are_bit_identical_across_backends() {
    let statuses = diff_corpus(&LaneConfig::default());
    assert!(statuses.len() >= 30, "corpus shrank to {}", statuses.len());
}

#[test]
fn chaos_faults_fire_identically_on_both_backends() {
    let lane = LaneConfig {
        chaos_fault_at: Some(50),
        ..LaneConfig::default()
    };
    let statuses = diff_corpus(&lane);
    // Equality is asserted inside diff_corpus; additionally pin that
    // the injection actually fired somewhere (programs that exhaust
    // their input before cycle 50 legitimately never reach it).
    let injected = statuses
        .iter()
        .flat_map(|(_, s)| s)
        .filter(|s| matches!(s, LaneStatus::Fault(FaultKind::ChaosInjected { .. })))
        .count();
    assert!(injected > 0, "chaos threshold never reached — raise inputs");
}

#[test]
fn cycle_budget_caps_fire_identically_on_both_backends() {
    let lane = LaneConfig {
        max_cycles: 64,
        cycles_per_byte: 1,
        min_cycle_budget: 1,
        ..LaneConfig::default()
    };
    let statuses = diff_corpus(&lane);
    let capped = statuses
        .iter()
        .flat_map(|(_, s)| s)
        .filter(|s| matches!(s, LaneStatus::Fault(FaultKind::CycleBudget { .. })))
        .count();
    assert!(capped > 0, "budget cap never reached — tighten the config");
}

#[test]
fn pooled_compiled_runs_match_sequential_interpreter() {
    // Cross the backend matrix with the scheduler matrix: pooled
    // compiled vs sequential interpreter over enough chunks to span
    // multiple waves on a many-lane split.
    let (name, pb) = corpus().into_iter().find(|(n, _)| n == "csv").unwrap();
    let img = assemble_smallest(&pb, 64).unwrap_or_else(|e| panic!("{name}: {e}"));
    let data = udp_workloads::crimes_csv(60_000, 5);
    let chunks: Vec<&[u8]> = data.chunks(997).collect();
    let seq = Udp::new()
        .try_run_data_parallel(
            &img,
            &chunks,
            &Staging::default(),
            &opts(ExecBackend::Interpreter, 1, LaneConfig::default()),
        )
        .unwrap();
    let par = Udp::new()
        .try_run_data_parallel(
            &img,
            &chunks,
            &Staging::default(),
            &UdpRunOptions {
                parallel: true,
                ..opts(ExecBackend::Compiled, 1, LaneConfig::default())
            },
        )
        .unwrap();
    assert_eq!(seq, par);
}

//! Byte-equality between the `udp_codecs::fallback` reference decoders
//! and the UDP kernels they stand in for.
//!
//! The supervisor's fallback rung (DESIGN.md §8) is only sound if the
//! software reference produces exactly the bytes the kernel would have:
//! these tests pin that contract for each registered fallback, on the
//! same workload generators the benches use.

use udp_asm::LayoutOptions;
use udp_codecs::fallback::{CsvFramingFallback, HuffmanSsRefFallback, SnappyFallback};
use udp_codecs::huffman::HuffmanTree;
use udp_codecs::snappy::snappy_compress;
use udp_compilers::huffman::{huffman_decode_to_udp, pad_for_stride, ssref_stride, SymbolMode};
use udp_compilers::snappy::frame_compressed;
use udp_compilers::{FIELD_SEP, RECORD_SEP};
use udp_sim::{Lane, LaneConfig, ReferenceFallback};

fn run_kernel(pb: udp_asm::ProgramBuilder, input: &[u8], banks: usize) -> Vec<u8> {
    let img = pb.assemble(&LayoutOptions::with_banks(banks)).unwrap();
    let rep = Lane::run_program(&img, input, &LaneConfig::default());
    rep.output
}

fn csv_fallback() -> CsvFramingFallback {
    CsvFramingFallback {
        delimiter: b',',
        quote: b'"',
        field_sep: FIELD_SEP,
        record_sep: RECORD_SEP,
    }
}

#[test]
fn csv_fallback_matches_kernel_and_baseline_on_crimes() {
    let data = udp_workloads::crimes_csv(20_000, 21);
    let kernel = run_kernel(udp_compilers::csv::csv_to_udp(), &data, 1);
    let reference = csv_fallback().reference_output(&data).unwrap();
    assert_eq!(reference, kernel);
    assert_eq!(reference, udp_compilers::csv::baseline_framing(&data));
}

#[test]
fn csv_fallback_matches_kernel_on_quoted_workload() {
    let data = udp_workloads::food_inspection_csv(20_000, 22);
    let kernel = run_kernel(udp_compilers::csv::csv_to_udp(), &data, 1);
    assert_eq!(csv_fallback().reference_output(&data).unwrap(), kernel);
}

#[test]
fn csv_fallback_matches_kernel_on_lineitem() {
    // The harness's chaos modes swap this fallback in for the CSV
    // kernel over lineitem chunks; equality here licenses the swap.
    let data = udp_workloads::lineitem_csv(20_000, 23);
    let kernel = run_kernel(udp_compilers::csv::csv_to_udp(), &data, 1);
    assert_eq!(csv_fallback().reference_output(&data).unwrap(), kernel);
}

#[test]
fn snappy_fallback_matches_kernel() {
    let raw = udp_workloads::lineitem_csv(30_000, 24);
    let compressed = snappy_compress(&raw);
    let kernel = run_kernel(
        udp_compilers::snappy::snappy_decompress_to_udp(),
        &compressed,
        16,
    );
    assert_eq!(kernel, raw, "kernel round-trips the workload");
    assert_eq!(SnappyFallback.reference_output(&compressed).unwrap(), raw);
}

#[test]
fn snappy_fallback_matches_kernel_on_udp_compressed_stream() {
    // Also over a stream the UDP *compressor* produced (host-framed).
    let raw = udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 20_000, 25);
    let body = run_kernel(udp_compilers::snappy::snappy_compress_to_udp(), &raw, 16);
    let framed = frame_compressed(raw.len(), &body);
    let kernel = run_kernel(
        udp_compilers::snappy::snappy_decompress_to_udp(),
        &framed,
        16,
    );
    assert_eq!(kernel, raw);
    assert_eq!(SnappyFallback.reference_output(&framed).unwrap(), raw);
}

#[test]
fn huffman_ssref_fallback_matches_kernel_raw_output() {
    for (seed, entropy) in [
        (26, udp_workloads::Entropy::Low),
        (27, udp_workloads::Entropy::Medium),
        (28, udp_workloads::Entropy::High),
    ] {
        let data = udp_workloads::canterbury_like(entropy, 4_000, seed);
        let tree = HuffmanTree::from_data(&data);
        let (bits, nbits) = tree.encode(&data);
        let stride = ssref_stride(&tree);
        let padded = pad_for_stride(&bits, nbits, stride);
        let kernel = run_kernel(
            huffman_decode_to_udp(&tree, SymbolMode::RegisterRefill),
            &padded,
            8,
        );
        let fb = HuffmanSsRefFallback::new(tree, stride);
        // Raw (untruncated) outputs must match bit-for-bit, spurious
        // padding symbols included — that is what the supervisor swaps.
        assert_eq!(fb.reference_output(&padded).unwrap(), kernel);
        assert_eq!(&kernel[..data.len()], &data[..]);
    }
}

//! Text round-trip over every translator backend: builder → `emit_asm`
//! → `parse_asm` → assemble must preserve the program.
//!
//! `parse_asm` materializes pass/fork states after consuming ones, so
//! word placement may differ between the two assemblies; the invariants
//! that must hold are IR shape (state/arc counts, symbol width), layout
//! statistics that don't depend on placement order, and the verifier's
//! verdict on both images.

use udp_asm::{emit_asm, parse_asm};
use udp_compilers::corpus::{assemble_smallest, corpus};
use udp_verify::{verify_image, VerifyOptions};

#[test]
fn every_corpus_program_round_trips_through_text() {
    let entries = corpus();
    assert!(entries.len() >= 20);
    for (name, pb) in &entries {
        let text = emit_asm(pb);
        let reparsed =
            parse_asm(&text).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n{text}"));

        assert_eq!(
            reparsed.state_count(),
            pb.state_count(),
            "{name}: state count drifted through text"
        );
        assert_eq!(
            reparsed.arc_count(),
            pb.arc_count(),
            "{name}: arc count drifted through text"
        );
        assert_eq!(
            reparsed.symbol_bits(),
            pb.symbol_bits(),
            "{name}: symbol width drifted through text"
        );

        let img = assemble_smallest(pb, 64).unwrap_or_else(|e| panic!("{name}: {e}"));
        let img2 =
            assemble_smallest(&reparsed, 64).unwrap_or_else(|e| panic!("{name} reparsed: {e}"));
        assert_eq!(
            img2.stats.n_states, img.stats.n_states,
            "{name}: assembled state count drifted"
        );
        assert_eq!(
            img2.stats.n_transition_words, img.stats.n_transition_words,
            "{name}: transition word count drifted"
        );
        assert_eq!(
            img2.stats.n_action_words, img.stats.n_action_words,
            "{name}: action word count drifted"
        );

        let report = verify_image(&img2, &VerifyOptions::default());
        assert!(
            report.errors() == 0,
            "{name}: reparsed image fails verification:\n{report}"
        );
    }
}

#[test]
fn emitted_text_is_a_normal_form() {
    // emit(parse(emit(pb))) == emit(pb): one hop into text is enough to
    // reach the emitter's canonical spelling.
    for (name, pb) in &corpus() {
        let text = emit_asm(pb);
        let reparsed = parse_asm(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text2 = emit_asm(&reparsed);
        let reparsed2 = parse_asm(&text2).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            emit_asm(&reparsed2),
            text2,
            "{name}: emitter did not reach a fixpoint"
        );
    }
}

//! BO / BI renditions of the ETL kernels (the Figure 5 study).
//!
//! Each function executes the *real* kernel over real bytes while
//! streaming its control flow into the [`CpuModel`]: the compare-and-
//! branch-offset (BO) rendition issues one conditional branch per
//! compare in a `switch`-style ladder; the branch-indirect (BI)
//! rendition computes a table entry and issues one indirect branch whose
//! target varies with the data. Both are the software structures of
//! paper Figure 4a/4b.

use crate::pipeline::{CpuModel, TraceStats};
use udp_codecs::huffman::{HuffmanNode, HuffmanTree};
use udp_codecs::Histogram;

/// Which software branching approach a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Branch with static offset (compare ladder).
    BranchOffset,
    /// Branch indirect through a computed table entry.
    BranchIndirect,
}

/// The kernels of the Figure 5 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKernel {
    /// CSV delimiter/quote scanning (libcsv FSM).
    Csv,
    /// Huffman code-tree decoding.
    HuffmanDecode,
    /// Snappy compression match selection.
    SnappyCompress,
    /// Histogram binary-search binning.
    Histogram,
    /// Multi-pattern DFA scanning.
    PatternMatch,
}

/// One modeled kernel execution.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Which kernel.
    pub kernel: BranchKernel,
    /// Which branching approach.
    pub approach: Approach,
    /// Raw counters.
    pub stats: TraceStats,
    /// Modeled cycles.
    pub cycles: f64,
    /// Fraction of cycles lost to misprediction (Figure 5a).
    pub mispredict_fraction: f64,
}

impl KernelRun {
    fn finish(kernel: BranchKernel, approach: Approach, m: CpuModel) -> KernelRun {
        KernelRun {
            kernel,
            approach,
            stats: m.stats(),
            cycles: m.cycles(),
            mispredict_fraction: m.mispredict_cycle_fraction(),
        }
    }

    /// Modeled processing rate in MB/s at `clock_ghz`.
    pub fn rate_mbps(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0.0 {
            return 0.0;
        }
        self.stats.input_bytes as f64 / self.cycles * clock_ghz * 1000.0
    }
}

/// CSV scanning: classify every byte against quote / delimiter / CR / LF
/// while tracking the libcsv quoted/unquoted state.
pub fn run_csv(approach: Approach, data: &[u8]) -> KernelRun {
    let mut m = CpuModel::westmere();
    let mut quoted = false;
    for &b in data {
        match approach {
            Approach::BranchOffset => {
                // State check, then the compare ladder. PCs are distinct
                // per compare site, as in compiled switch code.
                m.ops(1); // load byte
                m.cond_branch(0x10, quoted);
                if quoted {
                    m.ops(1);
                    m.cond_branch(0x20, b == b'"');
                } else {
                    let tests: [(u64, u8); 4] =
                        [(0x30, b'"'), (0x31, b','), (0x32, b'\n'), (0x33, b'\r')];
                    for (pc, t) in tests {
                        m.ops(1);
                        let hit = b == t;
                        m.cond_branch(pc, hit);
                        if hit {
                            break;
                        }
                    }
                }
            }
            Approach::BranchIndirect => {
                // handler = table[state*256 + b]; jump handler.
                m.ops(3); // load byte, address arithmetic, table load
                let class = match b {
                    b'"' => 1u64,
                    b',' => 2,
                    b'\n' => 3,
                    b'\r' => 4,
                    _ => 0,
                };
                m.ind_branch(0x40, (u64::from(quoted) << 8) | class);
            }
        }
        if b == b'"' {
            quoted = !quoted;
        }
        m.ops(2); // field-pointer bookkeeping
        m.consumed(1);
    }
    KernelRun::finish(BranchKernel::Csv, approach, m)
}

/// Huffman decoding: encode `data` with its own code, then model the
/// bit-by-bit tree walk over the encoded stream.
pub fn run_huffman_decode(approach: Approach, data: &[u8]) -> KernelRun {
    let tree = HuffmanTree::from_data(data);
    let (bits, nbits) = tree.encode(data);
    let mut m = CpuModel::westmere();
    let mut cur = tree.root();
    for i in 0..nbits {
        let byte = bits[(i / 8) as usize];
        let bit = (byte >> (7 - (i % 8))) & 1;
        m.ops(2); // shift + mask
        let HuffmanNode::Internal(z, o) = tree.nodes()[cur as usize] else {
            unreachable!()
        };
        let nxt = if bit == 0 { z } else { o };
        match approach {
            Approach::BranchOffset => {
                // Per-node compare site: pc = node id.
                m.cond_branch(0x1000 + u64::from(cur), bit == 1);
            }
            Approach::BranchIndirect => {
                m.ops(1); // child-pointer load
                m.ind_branch(0x2000, u64::from(nxt));
            }
        }
        cur = nxt;
        if let HuffmanNode::Leaf(_) = tree.nodes()[cur as usize] {
            m.ops(2); // emit + reset
            m.cond_branch(0x3000, true); // loop-back, well predicted
            cur = tree.root();
        }
    }
    m.consumed(bits.len() as u64);
    KernelRun::finish(BranchKernel::HuffmanDecode, approach, m)
}

/// Snappy compression match selection: hash-probe-compare per position,
/// with data-dependent found/not-found branches (the "15× branch
/// mispredicts" row of Table 2).
pub fn run_snappy_compress(approach: Approach, data: &[u8]) -> KernelRun {
    let mut m = CpuModel::westmere();
    if data.len() < 8 {
        m.consumed(data.len() as u64);
        return KernelRun::finish(BranchKernel::SnappyCompress, approach, m);
    }
    let mut table = vec![0u32; 1 << 14];
    let load32 = |i: usize| u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    let hash = |v: u32| (v.wrapping_mul(0x1E35_A7BD) >> 18) as usize;
    let mut i = 1usize;
    let limit = data.len() - 4;
    while i <= limit {
        m.ops(5); // load, hash mul/shift, table index, candidate load
        let h = hash(load32(i));
        let cand = table[h] as usize;
        table[h] = i as u32;
        let found = cand < i && load32(cand) == load32(i);
        match approach {
            Approach::BranchOffset => m.cond_branch(0x100, found),
            Approach::BranchIndirect => {
                m.ops(1);
                m.ind_branch(0x110, u64::from(found));
            }
        }
        if found {
            let mut len = 4;
            while i + len < data.len() && data[cand + len] == data[i + len] {
                len += 1;
                m.ops(1);
                m.cond_branch(0x120, true); // extend loop, mostly taken
            }
            m.cond_branch(0x120, false); // loop exit
            m.ops(6); // emit literal + copy bookkeeping
            m.consumed(len as u64);
            i += len;
        } else {
            m.ops(1); // literal-run bookkeeping
            m.consumed(1);
            i += 1;
        }
    }
    m.consumed(4);
    KernelRun::finish(BranchKernel::SnappyCompress, approach, m)
}

/// Pattern matching: DFA scanning in BO (per-state compare ladder over
/// the state's exception edges, falling through to its default
/// successor) or BI (next-state lookup + indirect jump — Figure 4b)
/// form. `rows` supplies, per state, the exception `(byte, target)`
/// edges and the default target; the walk executes a real multi-pattern
/// scan.
pub fn run_pattern_match(
    approach: Approach,
    rows: &[(Vec<(u8, u32)>, u32)],
    start: u32,
    data: &[u8],
) -> KernelRun {
    let mut m = CpuModel::westmere();
    let mut s = start;
    for &b in data {
        m.ops(1); // load byte
        let (edges, default) = &rows[s as usize];
        let mut next = *default;
        match approach {
            Approach::BranchOffset => {
                for (k, &(eb, t)) in edges.iter().enumerate() {
                    m.ops(1);
                    let hit = eb == b;
                    m.cond_branch(0x4000 + (u64::from(s) << 4) + k as u64, hit);
                    if hit {
                        next = t;
                        break;
                    }
                }
            }
            Approach::BranchIndirect => {
                m.ops(3); // table address arithmetic + load
                next = edges
                    .iter()
                    .find(|&&(eb, _)| eb == b)
                    .map_or(*default, |&(_, t)| t);
                m.ind_branch(0x5000, u64::from(next));
            }
        }
        s = next;
        m.consumed(1);
    }
    KernelRun::finish(BranchKernel::PatternMatch, approach, m)
}

/// Histogram binning: GSL binary search per value; each level's
/// direction is data-dependent (≈50/50 — the worst case for
/// prediction).
pub fn run_histogram(approach: Approach, f32_le_bytes: &[u8], hist: &Histogram) -> KernelRun {
    let mut m = CpuModel::westmere();
    let n = hist.bins();
    for chunk in f32_le_bytes.chunks_exact(4) {
        let v = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        m.ops(2); // load + range check setup
        let in_range = v >= hist.edges()[0] && v < hist.edges()[n];
        m.cond_branch(0x200, in_range);
        if in_range {
            let mut lo = 0usize;
            let mut hi = n;
            let mut depth = 0u64;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                m.ops(2); // index arithmetic + edge load
                let right = v >= hist.edges()[mid];
                match approach {
                    Approach::BranchOffset => m.cond_branch(0x210 + depth, right),
                    Approach::BranchIndirect => {
                        m.ops(1);
                        m.ind_branch(0x220, (depth << 1) | u64::from(right));
                    }
                }
                if right {
                    lo = mid;
                } else {
                    hi = mid;
                }
                depth += 1;
            }
            m.ops(2); // bin increment (load+store)
        }
        m.consumed(4);
    }
    KernelRun::finish(BranchKernel::Histogram, approach, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text() -> Vec<u8> {
        // Deterministic mixed text with delimiters and quotes.
        let mut v = Vec::new();
        for i in 0..3000u32 {
            v.extend_from_slice(format!("f{},\"q{}\",{}\n", i, i % 7, i % 13).as_bytes());
        }
        v
    }

    #[test]
    fn csv_mispredict_fraction_is_substantial() {
        let r = run_csv(Approach::BranchOffset, &text());
        assert!(
            r.mispredict_fraction > 0.2 && r.mispredict_fraction < 0.95,
            "fraction = {}",
            r.mispredict_fraction
        );
    }

    #[test]
    fn huffman_bo_mispredicts_heavily() {
        let data: Vec<u8> = text();
        let r = run_huffman_decode(Approach::BranchOffset, &data);
        assert!(r.mispredict_fraction > 0.3, "{}", r.mispredict_fraction);
    }

    #[test]
    fn histogram_binary_search_is_unpredictable() {
        let bytes: Vec<u8> = (0..4000u32)
            .flat_map(|i| (((i as f32 * 0.618_034).fract()) * 10.0).to_le_bytes())
            .collect();
        let h = Histogram::uniform(0.0, 10.0, 16);
        let r = run_histogram(Approach::BranchOffset, &bytes, &h);
        assert!(r.mispredict_fraction > 0.15, "{}", r.mispredict_fraction);
    }

    #[test]
    fn bo_and_bi_process_identical_input() {
        let data = text();
        let a = run_csv(Approach::BranchOffset, &data);
        let b = run_csv(Approach::BranchIndirect, &data);
        assert_eq!(a.stats.input_bytes, b.stats.input_bytes);
        assert!(a.cycles > 0.0 && b.cycles > 0.0);
    }

    #[test]
    fn snappy_low_entropy_flips_branch_bias() {
        let compressible: Vec<u8> = b"abcdefgh".repeat(2000);
        let r = run_snappy_compress(Approach::BranchOffset, &compressible);
        assert!(r.stats.input_bytes as usize >= compressible.len() - 8);
        assert!(r.cycles > 0.0);
    }

    #[test]
    fn rates_are_finite_and_positive() {
        let r = run_csv(Approach::BranchIndirect, &text());
        let rate = r.rate_mbps(2.4);
        assert!(rate.is_finite() && rate > 0.0);
    }
}

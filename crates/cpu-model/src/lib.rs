//! # udp-cpu-model — a traditional-CPU model for the branch study
//!
//! Figure 5 of the paper measures how branch-with-offset (BO) and
//! branch-indirect (BI) renditions of the ETL kernels behave on a
//! conventional deep-pipeline CPU: 32–86% of execution cycles go to
//! branch misprediction (Fig 5a), and multi-way dispatch beats both by
//! 2–12× in effective branch rate (Fig 5b).
//!
//! This crate reproduces that study with an explicit model:
//!
//! * [`predict`] — a bimodal/gshare conditional predictor and a BTB-style
//!   indirect-target predictor;
//! * [`pipeline`] — a cycle accountant: issue-limited base cost plus a
//!   fixed misprediction penalty;
//! * [`kernels`] — BO and BI renditions of CSV parsing, Huffman
//!   decoding, Snappy compression element selection, and histogram
//!   binary search, each *executing the real kernel* over real workload
//!   bytes while streaming branch events into the model;
//! * [`codesize`] — the x86-flavored code-size model behind Figure 5c's
//!   BO/BI bars (the UAP/UDP bars come from actual assembled images).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codesize;
pub mod kernels;
pub mod pipeline;
pub mod predict;

pub use kernels::{Approach, BranchKernel, KernelRun};
pub use pipeline::{CpuModel, TraceStats};
pub use predict::{Btb, GsharePredictor};

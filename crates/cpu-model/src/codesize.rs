//! Code-size model for the BO / BI bars of Figure 5c.
//!
//! x86-flavored byte costs: a compare-immediate + conditional-jump pair
//! is ~8 bytes; an indirect jump site (address arithmetic + `jmp *`) is
//! ~10 bytes plus an 8-byte table entry per (state, class) pair; handler
//! bodies average ~12 bytes. The UAP/UDP bars of the figure come from
//! real assembled images (`udp_asm::LayoutStats::code_bytes`), not from
//! this model.

/// Bytes for one compare+branch ladder step.
pub const BO_CASE_BYTES: usize = 8;
/// Bytes for an indirect dispatch site.
pub const BI_SITE_BYTES: usize = 10;
/// Bytes per jump-table entry.
pub const BI_TABLE_ENTRY_BYTES: usize = 8;
/// Average handler body bytes.
pub const HANDLER_BYTES: usize = 12;

/// BO code size for an FSM with `states` states and an average compare
/// ladder of `avg_cases` per state.
pub fn bo_bytes(states: usize, avg_cases: usize) -> usize {
    states * (avg_cases * BO_CASE_BYTES + HANDLER_BYTES)
}

/// BI code size for an FSM with `states` states over an alphabet of
/// `classes` equivalence classes.
pub fn bi_bytes(states: usize, classes: usize) -> usize {
    BI_SITE_BYTES + states * classes * BI_TABLE_ENTRY_BYTES + states * HANDLER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bi_tables_dominate_for_wide_alphabets() {
        // A 20-state byte-alphabet FSM: the BI jump table dwarfs the BO
        // ladder when ladders are short.
        assert!(bi_bytes(20, 256) > bo_bytes(20, 5));
    }

    #[test]
    fn bo_ladders_grow_with_case_count() {
        assert!(bo_bytes(10, 100) > bo_bytes(10, 5));
        assert_eq!(bo_bytes(1, 4), 4 * BO_CASE_BYTES + HANDLER_BYTES);
    }
}

//! Cycle accounting for a deep-pipeline superscalar core.
//!
//! The model is deliberately simple and documented: instructions issue
//! at `ipc` when the front end is healthy; each branch misprediction
//! flushes `mispredict_penalty` cycles (≈15 for a Westmere-class core).
//! This is the arithmetic the paper's Figure 5a bar chart implies
//! ("fraction of execution cycles consumed by branch misprediction").

use crate::predict::{Btb, GsharePredictor};

/// The pipeline/predictor bundle.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Sustained non-flush issue rate (instructions per cycle).
    pub ipc: f64,
    /// Pipeline-flush cost per misprediction, cycles.
    pub mispredict_penalty: f64,
    gshare: GsharePredictor,
    btb: Btb,
    stats: TraceStats,
}

/// Counters accumulated over a kernel trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Non-branch instructions retired.
    pub plain_ops: u64,
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Conditional mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect branches retired.
    pub ind_branches: u64,
    /// Indirect-target mispredictions (BTB misses).
    pub ind_mispredicts: u64,
    /// Input bytes processed (for rate computation).
    pub input_bytes: u64,
}

impl TraceStats {
    /// Total instructions.
    pub fn instructions(&self) -> u64 {
        self.plain_ops + self.cond_branches + self.ind_branches
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.cond_mispredicts + self.ind_mispredicts
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::westmere()
    }
}

impl CpuModel {
    /// Parameters approximating the paper's Xeon E5620 (Westmere EP):
    /// 4-wide issue sustaining ~2 IPC on these kernels, ~15-cycle
    /// misprediction penalty, 4K-entry gshare, 512-entry BTB.
    pub fn westmere() -> Self {
        CpuModel {
            ipc: 2.0,
            mispredict_penalty: 15.0,
            gshare: GsharePredictor::new(12, 10),
            btb: Btb::new(9),
            stats: TraceStats::default(),
        }
    }

    /// Feeds `n` non-branch instructions.
    pub fn ops(&mut self, n: u64) {
        self.stats.plain_ops += n;
    }

    /// Feeds one conditional branch with its resolved direction.
    pub fn cond_branch(&mut self, pc: u64, taken: bool) {
        self.stats.cond_branches += 1;
        if !self.gshare.update(pc, taken) {
            self.stats.cond_mispredicts += 1;
        }
    }

    /// Feeds one indirect branch with its resolved target.
    pub fn ind_branch(&mut self, pc: u64, target: u64) {
        self.stats.ind_branches += 1;
        if !self.btb.update(pc, target) {
            self.stats.ind_mispredicts += 1;
        }
    }

    /// Notes processed input (for MB/s-style rates).
    pub fn consumed(&mut self, bytes: u64) {
        self.stats.input_bytes += bytes;
    }

    /// The accumulated counters.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Total modeled cycles.
    pub fn cycles(&self) -> f64 {
        self.stats.instructions() as f64 / self.ipc
            + self.stats.mispredicts() as f64 * self.mispredict_penalty
    }

    /// Fraction of cycles lost to misprediction flushes (Figure 5a).
    pub fn mispredict_cycle_fraction(&self) -> f64 {
        let total = self.cycles();
        if total == 0.0 {
            return 0.0;
        }
        self.stats.mispredicts() as f64 * self.mispredict_penalty / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictable_branches_cost_little() {
        let mut m = CpuModel::westmere();
        for _ in 0..10_000 {
            m.ops(3);
            m.cond_branch(0x400, true);
        }
        assert!(m.mispredict_cycle_fraction() < 0.01);
    }

    #[test]
    fn random_branches_dominate_cycles() {
        let mut m = CpuModel::westmere();
        let mut x = 99u64;
        for _ in 0..10_000 {
            m.ops(3);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.cond_branch(0x400, (x >> 62) & 1 == 1);
        }
        let f = m.mispredict_cycle_fraction();
        assert!(f > 0.5, "random branches should dominate: {f}");
    }

    #[test]
    fn varying_indirect_targets_miss_the_btb() {
        let mut m = CpuModel::westmere();
        for i in 0..10_000u64 {
            m.ops(2);
            m.ind_branch(0x500, 0x1000 + (i * 7919) % 13); // 13 targets
        }
        let s = m.stats();
        assert!(
            s.ind_mispredicts > s.ind_branches / 2,
            "{} of {}",
            s.ind_mispredicts,
            s.ind_branches
        );
    }

    #[test]
    fn cycles_combine_issue_and_flush() {
        let mut m = CpuModel::westmere();
        m.ops(100);
        assert!((m.cycles() - 50.0).abs() < 1e-9);
    }
}

//! Branch predictors: gshare (conditional) and a BTB (indirect targets).

/// A gshare conditional-branch predictor: 2-bit counters indexed by
/// `PC ⊕ global history`.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    counters: Vec<u8>,
    history: u64,
    mask: usize,
    hist_bits: u32,
}

impl GsharePredictor {
    /// A predictor with `2^index_bits` counters and `hist_bits` of
    /// global history.
    pub fn new(index_bits: u32, hist_bits: u32) -> Self {
        GsharePredictor {
            counters: vec![1; 1 << index_bits], // weakly not-taken
            history: 0,
            mask: (1 << index_bits) - 1,
            hist_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc ^ (self.history & ((1 << self.hist_bits) - 1))) as usize) & self.mask
    }

    /// Predicts taken/not-taken for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates with the resolved outcome; returns whether the prediction
    /// was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let correct = (self.counters[i] >= 2) == taken;
        if taken {
            self.counters[i] = (self.counters[i] + 1).min(3);
        } else {
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        correct
    }
}

/// A branch-target buffer for indirect branches: direct-mapped,
/// last-target prediction (the structure whose misses hamper the BI
/// approach, §3.2.1).
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<(u64, u64)>, // (tag, target)
    mask: usize,
}

impl Btb {
    /// A BTB with `2^index_bits` entries.
    pub fn new(index_bits: u32) -> Self {
        Btb {
            entries: vec![(u64::MAX, 0); 1 << index_bits],
            mask: (1 << index_bits) - 1,
        }
    }

    /// Predicted target for the indirect branch at `pc` (`None` on a
    /// cold/conflict miss).
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.entries[(pc as usize) & self.mask];
        (tag == pc).then_some(target)
    }

    /// Updates with the resolved target; returns whether the prediction
    /// was correct.
    pub fn update(&mut self, pc: u64, target: u64) -> bool {
        let i = (pc as usize) & self.mask;
        let correct = self.entries[i] == (pc, target);
        self.entries[i] = (pc, target);
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_bias() {
        let mut p = GsharePredictor::new(10, 8);
        let mut wrong = 0;
        for _ in 0..1000 {
            if !p.update(0x400, true) {
                wrong += 1;
            }
        }
        // Each new history value touches a cold counter during warmup,
        // so allow ~hist_bits transient misses.
        assert!(wrong < 15, "always-taken should be learned: {wrong}");
    }

    #[test]
    fn gshare_learns_alternation_via_history() {
        let mut p = GsharePredictor::new(12, 8);
        let mut wrong_tail = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            let correct = p.update(0x400, taken);
            if i >= 1000 && !correct {
                wrong_tail += 1;
            }
        }
        assert!(
            wrong_tail < 50,
            "history should capture T/N/T/N: {wrong_tail}"
        );
    }

    #[test]
    fn gshare_fails_on_random() {
        let mut p = GsharePredictor::new(10, 8);
        let mut wrong = 0;
        let mut x = 0x12345678u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            if !p.update(0x400, taken) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 4000.0;
        assert!(rate > 0.35, "random outcomes should mispredict: {rate}");
    }

    #[test]
    fn btb_tracks_last_target() {
        let mut b = Btb::new(8);
        assert_eq!(b.predict(0x10), None);
        b.update(0x10, 0x100);
        assert_eq!(b.predict(0x10), Some(0x100));
        assert!(b.update(0x10, 0x100));
        assert!(!b.update(0x10, 0x200), "target change is a miss");
    }
}

//! A textual UDP assembly format — the "high-level assembly language"
//! the paper's translators target (§4.3).
//!
//! ```text
//! ; count 'a' bytes
//! symbols 8
//!
//! state scan:
//!   'a'       -> scan   { EmitB r0, r12, #33 }
//!   'x'-'z'   -> scan                          ; symbol ranges expand
//!   fallback  -> scan
//!
//! state stop: pass refill 0
//!   -> halt   { Halt r0, r0, #7 }
//!
//! entry scan
//! ```
//!
//! State headers: `state NAME:` (consuming, stream source),
//! `state NAME: flagged` (consuming, R0 source),
//! `state NAME: pass refill N`, `state NAME: fork`.
//! Arc lines: `SYMBOL -> TARGET [{ actions }]` where `SYMBOL` is a char
//! literal, decimal, `0xNN`, an inclusive range, or `fallback`; pass and
//! fork states omit the symbol (`-> TARGET`). Actions use the
//! `Display` syntax of [`udp_isa::Action`] separated by `;`.

use crate::ir::{Arc, DispatchSource, ProgramBuilder, StateId, StateNode, Target};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use udp_isa::action::{Action, ActionFormat, Opcode};
use udp_isa::Reg;

/// Assembly-text parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn opcode_by_name(name: &str) -> Option<Opcode> {
    Opcode::ALL
        .iter()
        .copied()
        .find(|op| format!("{op:?}") == name)
}

/// Parses assembly text into a [`ProgramBuilder`].
///
/// ```
/// let src = "
/// state s:
///   'a'      -> s { EmitB r0, r12, #33 }
///   fallback -> s
/// entry s
/// ";
/// let builder = udp_asm::parse_asm(src)?;
/// let image = builder.assemble(&udp_asm::LayoutOptions::default())?;
/// assert!(image.stats.n_transition_words >= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending line on any syntax or
/// reference error.
pub fn parse_asm(text: &str) -> Result<ProgramBuilder, ParseAsmError> {
    let err = |line: usize, m: String| ParseAsmError { line, message: m };

    // Pass 1: collect state declarations so forward references resolve.
    #[derive(Clone)]
    enum Decl {
        Consuming { flagged: bool },
        Pass { refill: u8 },
        Fork,
    }
    let mut decls: Vec<(String, Decl, usize)> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if let Some(rest) = line.strip_prefix("state ") {
            let (name, tail) = rest
                .split_once(':')
                .ok_or_else(|| err(ln + 1, "state header needs ':'".to_string()))?;
            let name = name.trim().to_string();
            if decls.iter().any(|(n, _, _)| *n == name) {
                return Err(err(ln + 1, format!("duplicate state {name}")));
            }
            let tail = tail.trim();
            let decl = if tail.is_empty() {
                Decl::Consuming { flagged: false }
            } else if tail == "flagged" {
                Decl::Consuming { flagged: true }
            } else if tail == "fork" {
                Decl::Fork
            } else if let Some(r) = tail.strip_prefix("pass refill ") {
                let refill: u8 = r
                    .trim()
                    .parse()
                    .map_err(|_| err(ln + 1, format!("bad refill count {r:?}")))?;
                if refill > 8 {
                    return Err(err(ln + 1, "refill exceeds 8 bits".to_string()));
                }
                Decl::Pass { refill }
            } else {
                return Err(err(ln + 1, format!("unknown state qualifier {tail:?}")));
            };
            decls.push((name, decl, ln + 1));
        }
    }

    // Consuming states are created up front; pass/fork states take
    // their arcs at construction, so those are materialized after all
    // arc lines are parsed into a symbolic form.
    let mut b = ProgramBuilder::new();
    let mut ids: HashMap<String, StateId> = HashMap::new();
    for (name, decl, _) in &decls {
        if let Decl::Consuming { flagged } = decl {
            let id = if *flagged {
                b.add_flagged_state()
            } else {
                b.add_consuming_state()
            };
            ids.insert(name.clone(), id);
        }
    }
    struct SymArc {
        line: usize,
        state: String,
        symbol: Option<SymSpec>, // None = pass/fork arc
        target: String,
        actions: Vec<Action>,
    }
    enum SymSpec {
        Range(u16, u16),
        Fallback,
    }

    let mut entry: Option<String> = None;
    let mut symbol_bits: Option<u8> = None;
    let mut current: Option<String> = None;
    let mut arcs: Vec<SymArc> = Vec::new();

    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("symbols ") {
            let bits: u8 = rest
                .trim()
                .parse()
                .map_err(|_| err(ln, format!("bad symbol width {rest:?}")))?;
            symbol_bits = Some(bits);
        } else if let Some(rest) = line.strip_prefix("entry ") {
            entry = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("state ") {
            let (name, _) = rest
                .split_once(':')
                .ok_or_else(|| err(ln, "state header needs ':'".to_string()))?;
            current = Some(name.trim().to_string());
        } else if line.contains("->") {
            let state = current
                .clone()
                .ok_or_else(|| err(ln, "arc before any state header".to_string()))?;
            let (lhs, rhs) = line
                .split_once("->")
                .ok_or_else(|| err(ln, "arc line needs '->'".to_string()))?;
            let lhs = lhs.trim();
            let symbol = if lhs.is_empty() {
                None
            } else if lhs == "fallback" {
                Some(SymSpec::Fallback)
            } else if let Some((a, z)) = split_range(lhs) {
                let lo = parse_symbol(a).map_err(|m| err(ln, m))?;
                let hi = parse_symbol(z).map_err(|m| err(ln, m))?;
                if hi < lo {
                    return Err(err(ln, "inverted symbol range".to_string()));
                }
                Some(SymSpec::Range(lo, hi))
            } else {
                let s = parse_symbol(lhs).map_err(|m| err(ln, m))?;
                Some(SymSpec::Range(s, s))
            };
            let (target, actions_src) = match rhs.split_once('{') {
                Some((t, a)) => {
                    let a = a
                        .strip_suffix('}')
                        .ok_or_else(|| err(ln, "unterminated action block".to_string()))?;
                    (t.trim().to_string(), Some(a.to_string()))
                }
                None => (rhs.trim().to_string(), None),
            };
            let mut actions = Vec::new();
            if let Some(src) = actions_src {
                for part in src.split(';') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    actions.push(parse_action(part).map_err(|m| err(ln, m))?);
                }
            }
            arcs.push(SymArc {
                line: ln,
                state,
                symbol,
                target,
                actions,
            });
        } else {
            return Err(err(ln, format!("unrecognized line {line:?}")));
        }
    }

    // Materialize pass/fork states in dependency-free order: they may
    // reference each other, so create placeholders as consuming states
    // is not possible — instead, create them in two steps: first create
    // all with dummy arcs to themselves is also impossible. We instead
    // topologically defer: create pass/fork states last, resolving
    // targets that must already exist; chains of pass→pass are created
    // in reverse dependency order via iteration to fixpoint.
    let resolve = |ids: &HashMap<String, StateId>, name: &str| -> Option<Target> {
        if name == "halt" {
            Some(Target::Halt)
        } else {
            ids.get(name).copied().map(Target::State)
        }
    };
    let mut remaining: Vec<&(String, Decl, usize)> = decls
        .iter()
        .filter(|(_, d, _)| !matches!(d, Decl::Consuming { .. }))
        .collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|(name, decl, decl_line)| {
            let my_arcs: Vec<&SymArc> = arcs.iter().filter(|a| a.state == *name).collect();
            let resolved: Option<Vec<Arc>> = my_arcs
                .iter()
                .map(|a| {
                    resolve(&ids, &a.target).map(|target| Arc {
                        target,
                        actions: a.actions.clone(),
                    })
                })
                .collect();
            let Some(built) = resolved else {
                return true; // a target isn't materialized yet; retry next pass
            };
            let id = match decl {
                Decl::Pass { refill } => {
                    let arc = built.first().cloned().unwrap_or(Arc {
                        target: Target::Halt,
                        actions: vec![],
                    });
                    b.add_pass_state(*refill, arc)
                }
                Decl::Fork => b.add_fork_state(built),
                Decl::Consuming { .. } => unreachable!(),
            };
            ids.insert(name.clone(), id);
            let _ = decl_line;
            false
        });
        if remaining.len() == before {
            let stuck: Vec<&str> = remaining.iter().map(|(n, _, _)| n.as_str()).collect();
            return Err(err(
                remaining[0].2,
                format!("unresolved pass/fork targets among {stuck:?} (cycle or unknown state)"),
            ));
        }
    }

    // Now attach consuming arcs.
    for a in &arcs {
        let Some(&sid) = ids.get(&a.state) else {
            return Err(err(a.line, format!("unknown state {:?}", a.state)));
        };
        let decl = &decls
            .iter()
            .find(|(n, _, _)| *n == a.state)
            .ok_or_else(|| err(a.line, format!("undeclared state {:?}", a.state)))?
            .1;
        if !matches!(decl, Decl::Consuming { .. }) {
            continue; // handled above
        }
        let target = resolve(&ids, &a.target)
            .ok_or_else(|| err(a.line, format!("unknown target {:?}", a.target)))?;
        match &a.symbol {
            Some(SymSpec::Fallback) => b.fallback_arc(sid, target, a.actions.clone()),
            Some(SymSpec::Range(lo, hi)) => {
                for s in *lo..=*hi {
                    b.labeled_arc(sid, s, target, a.actions.clone());
                }
            }
            None => return Err(err(a.line, "consuming arcs need a symbol".to_string())),
        }
    }

    if let Some(bits) = symbol_bits {
        if !(1..=8).contains(&bits) {
            return Err(err(1, format!("symbol width {bits} out of range")));
        }
        b.set_symbol_bits(bits);
    }
    let entry = entry.ok_or_else(|| err(text.lines().count(), "missing 'entry'".to_string()))?;
    let &eid = ids
        .get(&entry)
        .ok_or_else(|| err(1, format!("unknown entry state {entry:?}")))?;
    b.set_entry(eid);
    Ok(b)
}

/// Renders a symbol for an arc line: printable ASCII becomes a char
/// literal, everything else decimal.
fn emit_symbol(s: u16) -> String {
    match u8::try_from(s) {
        // '\'' would collide with the literal syntax; ';' with comments;
        // braces with the comment-stripper's action-block tracking.
        Ok(b) if b.is_ascii_graphic() && !b"';{}".contains(&b) => {
            format!("'{}'", b as char)
        }
        _ => s.to_string(),
    }
}

fn emit_arc_line(out: &mut String, lhs: &str, arc: &Arc, names: &[String]) {
    let target = match arc.target {
        Target::Halt => "halt".to_string(),
        Target::State(id) => names[id.index()].clone(),
    };
    let _ = write!(out, "  {lhs:<10} -> {target}");
    if !arc.actions.is_empty() {
        let body: Vec<String> = arc.actions.iter().map(|a| a.to_string()).collect();
        let _ = write!(out, " {{ {} }}", body.join("; "));
    }
    out.push('\n');
}

/// Emits a [`ProgramBuilder`] as assembly text that [`parse_asm`]
/// accepts, closing the translator → text → builder loop.
///
/// States are named `s0..sN` in builder order. Reparsing yields an
/// equivalent program — same state, arc, and action counts, and an
/// image that verifies identically — though not necessarily identical
/// word placement, because `parse_asm` materializes pass/fork states
/// after consuming ones.
///
/// ```
/// use udp_asm::{emit_asm, parse_asm, ProgramBuilder, Target};
/// let mut b = ProgramBuilder::new();
/// let s = b.add_consuming_state();
/// b.set_entry(s);
/// b.labeled_arc(s, b'a' as u16, Target::State(s), vec![]);
/// b.fallback_arc(s, Target::Halt, vec![]);
/// let text = emit_asm(&b);
/// let b2 = parse_asm(&text).unwrap();
/// assert_eq!(b2.state_count(), 1);
/// assert_eq!(b2.arc_count(), 2);
/// ```
pub fn emit_asm(builder: &ProgramBuilder) -> String {
    let names: Vec<String> = (0..builder.state_count())
        .map(|i| format!("s{i}"))
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "symbols {}", builder.symbol_bits());
    for (i, name) in names.iter().enumerate() {
        let node = builder.state(StateId(i as u32));
        out.push('\n');
        match node {
            StateNode::Consuming {
                source,
                arcs,
                fallback,
            } => {
                let qual = match source {
                    DispatchSource::Stream => "",
                    DispatchSource::Register => " flagged",
                };
                let _ = writeln!(out, "state {name}:{qual}");
                let mut sorted: Vec<&(u16, Arc)> = arcs.iter().collect();
                sorted.sort_by_key(|(s, _)| *s);
                for (sym, arc) in sorted {
                    emit_arc_line(&mut out, &emit_symbol(*sym), arc, &names);
                }
                if let Some(fb) = fallback {
                    emit_arc_line(&mut out, "fallback", fb, &names);
                }
            }
            StateNode::Pass { refill, arc } => {
                let _ = writeln!(out, "state {name}: pass refill {refill}");
                emit_arc_line(&mut out, "", arc, &names);
            }
            StateNode::Fork { arcs } => {
                let _ = writeln!(out, "state {name}: fork");
                for arc in arcs {
                    emit_arc_line(&mut out, "", arc, &names);
                }
            }
        }
    }
    if let Some(entry) = builder.entry() {
        out.push('\n');
        let _ = writeln!(out, "entry {}", names[entry.index()]);
    }
    out
}

fn strip_comment(line: &str) -> &str {
    // ';' starts a comment unless inside a char literal.
    let bytes = line.as_bytes();
    let mut in_char = false;
    for (i, &c) in bytes.iter().enumerate() {
        match c {
            b'\'' => in_char = !in_char,
            b';' if !in_char => {
                // Action separators live inside '{ }' blocks.
                let open = line[..i].matches('{').count();
                let close = line[..i].matches('}').count();
                if open == close {
                    return &line[..i];
                }
            }
            _ => {}
        }
    }
    line
}

fn split_range(s: &str) -> Option<(&str, &str)> {
    // 'a'-'z' or 10-20 (careful: '-' may be the char literal '-').
    if s.starts_with('\'') {
        let rest = s.get(3..)?;
        let tail = rest.strip_prefix('-')?;
        return Some((&s[..3], tail));
    }
    if s.starts_with("0x") || s.chars().next()?.is_ascii_digit() {
        let (a, z) = s.split_once('-')?;
        return Some((a, z));
    }
    None
}

fn parse_symbol(s: &str) -> Result<u16, String> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
        let mut chars = inner.chars();
        let c = chars.next().ok_or("empty char literal")?;
        if chars.next().is_some() {
            return Err(format!("char literal {s:?} too long"));
        }
        return Ok(c as u16);
    }
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u16::from_str_radix(hex, 16).map_err(|e| format!("bad hex {s:?}: {e}"))?
    } else {
        s.parse().map_err(|e| format!("bad symbol {s:?}: {e}"))?
    };
    if v > 255 {
        return Err(format!("symbol {v} exceeds 8-bit dispatch"));
    }
    Ok(v)
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let n: u8 = s
        .trim()
        .strip_prefix('r')
        .ok_or_else(|| format!("expected register, got {s:?}"))?
        .parse()
        .map_err(|e| format!("bad register {s:?}: {e}"))?;
    if n > 15 {
        return Err(format!("register r{n} out of range"));
    }
    Ok(Reg::new(n))
}

fn parse_imm(s: &str) -> Result<u16, String> {
    let s = s.trim();
    let s = s
        .strip_prefix('#')
        .ok_or_else(|| format!("expected immediate, got {s:?}"))?;
    if let Some(hex) = s.strip_prefix("0x") {
        u16::from_str_radix(hex, 16).map_err(|e| format!("bad hex immediate: {e}"))
    } else if let Some(neg) = s.strip_prefix('-') {
        let v: i32 = neg.parse().map_err(|e| format!("bad immediate: {e}"))?;
        Ok((-v as i16) as u16)
    } else {
        s.parse().map_err(|e| format!("bad immediate: {e}"))
    }
}

/// Parses one action in `Display` syntax (`AddI r3, r1, #10`).
pub fn parse_action(s: &str) -> Result<Action, String> {
    let s = s.trim().trim_end_matches('!').trim();
    let (name, rest) = s
        .split_once(' ')
        .ok_or_else(|| format!("action needs operands: {s:?}"))?;
    let op = opcode_by_name(name).ok_or_else(|| format!("unknown opcode {name:?}"))?;
    let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
    match op.format() {
        ActionFormat::Imm => {
            if parts.len() != 3 {
                return Err(format!("{name} needs dst, src, #imm"));
            }
            Ok(Action::imm(
                op,
                parse_reg(parts[0])?,
                parse_reg(parts[1])?,
                parse_imm(parts[2])?,
            ))
        }
        ActionFormat::Imm2 => {
            if parts.len() != 4 {
                return Err(format!("{name} needs dst, src, #imm1, #imm2"));
            }
            let imm1 = parse_imm(parts[2])?;
            if imm1 > 0xF {
                return Err("imm1 exceeds 4 bits".to_string());
            }
            Ok(Action::imm2(
                op,
                parse_reg(parts[0])?,
                parse_reg(parts[1])?,
                imm1 as u8,
                parse_imm(parts[3])?,
            ))
        }
        ActionFormat::Reg => {
            if parts.len() != 3 {
                return Err(format!("{name} needs dst, ref, src"));
            }
            Ok(Action::reg(
                op,
                parse_reg(parts[0])?,
                parse_reg(parts[1])?,
                parse_reg(parts[2])?,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayoutOptions;

    const COUNTER: &str = r#"
; emit '!' per 'a'
symbols 8
state scan:
  'a'      -> scan { EmitB r0, r12, #33 }
  fallback -> scan
entry scan
"#;

    #[test]
    fn parses_and_assembles() {
        let b = parse_asm(COUNTER).unwrap();
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        assert!(img.stats.n_transition_words >= 2);
        assert_eq!(b.symbol_bits(), 8);
    }

    #[test]
    fn ranges_expand() {
        let src = r#"
state s:
  '0'-'9' -> s
  fallback -> halt
entry s
"#;
        let b = parse_asm(src).unwrap();
        assert_eq!(b.arc_count(), 11);
    }

    #[test]
    fn pass_fork_and_flagged_states() {
        let src = r#"
symbols 3
state start:
  fallback -> leaf
state leaf: pass refill 1
  -> probe { EmitB r0, r12, #82 }
state probe: flagged
  0 -> start
  1 -> halt { Halt r0, r0, #5 }
entry start
"#;
        let b = parse_asm(src).unwrap();
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        assert!(img.stats.n_states >= 3);
    }

    #[test]
    fn action_syntax_round_trips_display() {
        for a in [
            Action::imm(Opcode::AddI, Reg::new(3), Reg::new(1), 0xBEEF),
            Action::imm2(Opcode::EmitBits, Reg::new(0), Reg::new(2), 7, 33),
            Action::reg(Opcode::LoopCmp, Reg::new(4), Reg::new(5), Reg::new(6)),
        ] {
            let text = format!("{a}");
            let parsed = parse_action(&text).unwrap();
            assert_eq!(parsed.encode(), a.encode(), "{text}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("state a:\n  junk line\nentry a").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_asm("state a:\n  'q' -> nowhere\nentry a").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_asm("state a:\n  'q' -> a\n")
            .unwrap_err()
            .message
            .contains("entry"));
        let e = parse_asm("state a: pass refill 9\n  -> halt\nentry a").unwrap_err();
        assert!(e.message.contains("refill"));
    }

    #[test]
    fn comments_and_char_semicolons() {
        let src = "state s:\n  ';' -> s ; the semicolon byte\n  fallback -> s\nentry s";
        let b = parse_asm(src).unwrap();
        assert_eq!(b.arc_count(), 2);
    }

    #[test]
    fn emit_round_trips_all_state_shapes() {
        let src = r#"
symbols 3
state start:
  0        -> leaf { AddI r3, r3, #1 }
  1-2      -> start
  fallback -> leaf
state leaf: pass refill 1
  -> probe { EmitB r0, r12, #82 }
state probe: flagged
  0 -> start
  1 -> halt { Halt r0, r0, #5 }
entry start
"#;
        let b = parse_asm(src).unwrap();
        let text = emit_asm(&b);
        let b2 = parse_asm(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(b2.state_count(), b.state_count());
        assert_eq!(b2.arc_count(), b.arc_count());
        assert_eq!(b2.symbol_bits(), b.symbol_bits());
        // Emitting the reparse reproduces the text exactly: the emitter
        // is a normal form.
        assert_eq!(emit_asm(&b2), text);
    }

    #[test]
    fn emit_quotes_printable_symbols_and_escapes_awkward_ones() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, b'a' as u16, Target::State(s), vec![]);
        b.labeled_arc(s, b'\'' as u16, Target::State(s), vec![]);
        b.labeled_arc(s, b';' as u16, Target::State(s), vec![]);
        b.labeled_arc(s, 7, Target::State(s), vec![]);
        b.fallback_arc(s, Target::Halt, vec![]);
        let text = emit_asm(&b);
        assert!(text.contains("'a'"));
        assert!(text.contains("39 ")); // '\'' as decimal
        assert!(text.contains("59 ")); // ';' as decimal
        let b2 = parse_asm(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(b2.arc_count(), 5);
    }

    #[test]
    fn parsed_program_runs() {
        let b = parse_asm(COUNTER).unwrap();
        let _img = b.assemble(&LayoutOptions::default()).unwrap();
        // Execution is exercised in the sim crate's tests; here we only
        // confirm the IR shape.
        assert_eq!(b.state_count(), 1);
    }
}

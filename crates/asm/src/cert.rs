//! Static resource certificates.
//!
//! A [`ResourceCert`] is the output of `udp-verify`'s abstract-
//! interpretation cost analysis (DESIGN.md §9.1): per-program upper
//! bounds on how many cycles a lane can spend and how many output bytes
//! it can emit *per input byte consumed*, valid at every point of a
//! clean (non-chaos) run — including runs that end in a fault or with
//! the input only partially consumed.
//!
//! The type lives in `udp-asm` (not `udp-verify`) because it travels on
//! [`crate::ProgramImage`], and the crate dependency direction is
//! `asm ← verify ← sim ← serve`. The verifier *derives* certificates;
//! everything downstream only consumes them.

/// Which resource a [`CostBlocker`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostMetric {
    /// Lane cycles charged against the run budget.
    Cycles,
    /// Bytes appended to the lane output buffer.
    Output,
}

impl std::fmt::Display for CostMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostMetric::Cycles => write!(f, "cycles"),
            CostMetric::Output => write!(f, "output"),
        }
    }
}

/// A structured reason why one of the certificate's bounds could not be
/// established. The verifier maps each blocker to a `cost-unbounded`
/// finding; keeping the structured form on the cert lets downstream
/// layers (supervisor, serve) reason about *which* bound is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostBlocker {
    /// The bound this blocker defeats.
    pub metric: CostMetric,
    /// Flat word address of the offending arc or action, when known.
    pub addr: Option<u32>,
    /// Human-readable explanation (e.g. "cycle through state 0x1000
    /// consumes no input").
    pub reason: String,
}

/// Static cost bounds for one assembled program.
///
/// The certified claim, checked empirically by the differential
/// harness over the whole corpus: at **every** point of a clean run,
///
/// ```text
/// cycles        <= base_cycles       + max_cycles_per_byte   * bytes_consumed
/// output bytes  <= base_output_bytes + max_output_expansion  * bytes_consumed
/// ```
///
/// where `bytes_consumed` is the lane's input byte index. A bound is
/// `None` when the corresponding progress ratio could not be bounded
/// statically (see [`ResourceCert::unbounded`]); the additive base
/// still holds for whatever partial analysis succeeded, but is only
/// meaningful alongside a present ratio.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceCert {
    /// Max cycles charged per input byte consumed (the λ* ratio of the
    /// worst cost-to-progress cycle in the program graph), or `None`
    /// if some reachable cycle spends cycles without guaranteed input
    /// progress.
    pub max_cycles_per_byte: Option<u64>,
    /// Additive cycle slack: dispatch/action work not amortized against
    /// input progress (path prefixes, the final partial block).
    pub base_cycles: u64,
    /// Guaranteed minimum forward progress as a rational
    /// `(bytes, cycles)`: the lane consumes at least `bytes` input
    /// bytes per `cycles` cycles once past `base_cycles`. This is the
    /// reciprocal of `max_cycles_per_byte` and is what admission
    /// control divides by to turn a cycle budget into a byte capacity.
    pub min_bytes_per_cycle_progress: Option<(u64, u64)>,
    /// Max output bytes emitted per input byte consumed, or `None` if
    /// some reachable cycle can emit without guaranteed input progress.
    pub max_output_expansion: Option<u64>,
    /// Additive output slack, analogous to `base_cycles`.
    pub base_output_bytes: u64,
    /// Maximum number of bulk-loop operations in any single reachable
    /// action block (UDP action blocks are linear, so this is the
    /// loop-nesting proxy the compiled backend checks before fusing).
    pub max_loop_nest: u32,
    /// Number of distinct reachable action blocks whose prefix matches
    /// the `EmitSpan` fused-superop shape (proven single-successor
    /// span-emit bursts). `0` lets the compiled backend skip fusion
    /// recognition entirely.
    pub fused_span_blocks: u32,
    /// Number of distinct reachable action blocks matching the
    /// action-per-symbol bit-emit shape (constant `MovI; EmitBits`
    /// pairs, optionally ending in one dynamic `EmitB`) the compiled
    /// backend's bit-burst superop fuses. `0` lets it skip that
    /// recognizer entirely. The count is conservative: every block the
    /// compiler could fuse is counted; reachability refinements may
    /// count more.
    pub fused_bitemit_blocks: u32,
    /// Structured reasons for each missing bound; empty iff the cert
    /// is complete.
    pub unbounded: Vec<CostBlocker>,
}

impl ResourceCert {
    /// True when both the cycle and output ratios were established.
    pub fn is_complete(&self) -> bool {
        self.max_cycles_per_byte.is_some() && self.max_output_expansion.is_some()
    }

    /// Certified upper bound on cycles for an input of `input_bytes`
    /// bytes (saturating), or `None` if the cycle ratio is unbounded.
    pub fn cycle_bound(&self, input_bytes: usize) -> Option<u64> {
        let per = self.max_cycles_per_byte?;
        Some(
            self.base_cycles
                .saturating_add(per.saturating_mul(input_bytes as u64)),
        )
    }

    /// Certified upper bound on output bytes for an input of
    /// `input_bytes` bytes (saturating), or `None` if the expansion
    /// ratio is unbounded.
    pub fn output_bound(&self, input_bytes: usize) -> Option<u64> {
        let per = self.max_output_expansion?;
        Some(
            self.base_output_bytes
                .saturating_add(per.saturating_mul(input_bytes as u64)),
        )
    }

    /// One-line summary for annotated listings and service logs.
    pub fn summary(&self) -> String {
        let cpb = match self.max_cycles_per_byte {
            Some(c) => format!("{c}"),
            None => "unbounded".to_string(),
        };
        let exp = match self.max_output_expansion {
            Some(e) => format!("{e}"),
            None => "unbounded".to_string(),
        };
        format!(
            "cycles/byte<={cpb} (+{base}), out-bytes/byte<={exp} (+{obase}), \
             loop-nest<={nest}, span-blocks={spans}, bitemit-blocks={bitemits}{blockers}",
            base = self.base_cycles,
            obase = self.base_output_bytes,
            nest = self.max_loop_nest,
            spans = self.fused_span_blocks,
            bitemits = self.fused_bitemit_blocks,
            blockers = if self.unbounded.is_empty() {
                String::new()
            } else {
                format!(", {} blocker(s)", self.unbounded.len())
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_saturate_and_gate_on_presence() {
        let cert = ResourceCert {
            max_cycles_per_byte: Some(3),
            base_cycles: 10,
            min_bytes_per_cycle_progress: Some((1, 3)),
            max_output_expansion: None,
            base_output_bytes: 4,
            ..Default::default()
        };
        assert_eq!(cert.cycle_bound(100), Some(310));
        assert_eq!(cert.output_bound(100), None);
        assert!(!cert.is_complete());
        let huge = ResourceCert {
            max_cycles_per_byte: Some(u64::MAX),
            base_cycles: u64::MAX,
            ..Default::default()
        };
        assert_eq!(huge.cycle_bound(usize::MAX), Some(u64::MAX));
    }

    #[test]
    fn summary_mentions_missing_bounds() {
        let cert = ResourceCert {
            max_cycles_per_byte: Some(2),
            unbounded: vec![CostBlocker {
                metric: CostMetric::Output,
                addr: Some(0x1000),
                reason: "emits without consuming".into(),
            }],
            ..Default::default()
        };
        let s = cert.summary();
        assert!(s.contains("cycles/byte<=2"));
        assert!(s.contains("unbounded"));
        assert!(s.contains("1 blocker(s)"));
    }
}

//! Program-image disassembly: render transition and action words as
//! text, for debugging translators and inspecting EffCLiP layouts.

use crate::image::ProgramImage;
use std::collections::HashMap;
use std::fmt::Write as _;
use udp_isa::action::Action;
use udp_isa::transition::{ExecKind, TransitionWord, FALLBACK_SIGNATURE};
use udp_isa::FALLBACK_SLOT;

/// How a word was classified during disassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordKind {
    /// Empty (all-zero) word.
    Empty,
    /// A labeled transition owned by the state based at `base`.
    Labeled {
        /// Owning state base.
        base: u32,
        /// Matched symbol.
        symbol: u8,
    },
    /// A fallback/pass-slot word of the state based at `base`.
    Fallback {
        /// Owning state base.
        base: u32,
    },
    /// An action word (reachable from some transition's attach).
    ActionWord,
    /// Unreferenced, undecodable, or data.
    Unknown,
}

/// Classifies every nonzero word of an image.
///
/// Classification walks the recorded state bases: every labeled slot and
/// fallback slot is attributed to its owner; words reachable through
/// attach references are decoded as actions. Words absent from the map
/// are empty or unreferenced. This is the disassembler's independent
/// view of the image, cross-checked by `udp-verify`'s graph decode.
pub fn classify_words(image: &ProgramImage) -> HashMap<u32, WordKind> {
    let mut kinds: HashMap<u32, WordKind> = HashMap::new();
    let mut action_starts: Vec<u32> = Vec::new();

    for &base in &image.state_bases {
        for (off, &raw) in image.words.iter().enumerate().skip(base as usize) {
            let off = off as u32 - base;
            if off > FALLBACK_SLOT + 8 {
                break;
            }
            if raw == 0 {
                continue;
            }
            let t = TransitionWord::decode(raw);
            let addr = base + off;
            let matches_slot = if off < 256 {
                t.signature() == off as u8
            } else {
                off >= FALLBACK_SLOT
            };
            if !matches_slot {
                continue;
            }
            let kind = if off < 256 {
                WordKind::Labeled {
                    base,
                    symbol: off as u8,
                }
            } else {
                WordKind::Fallback { base }
            };
            kinds.entry(addr).or_insert(kind);
            if let Some(a) = t.action_addr(image.init.abase, image.init.ascale) {
                let flat = match t.attach_mode() {
                    udp_isa::AttachMode::Direct => a,
                    udp_isa::AttachMode::Scaled => {
                        image.init.abase + (u32::from(t.attach()) << image.init.ascale)
                    }
                };
                action_starts.push(flat);
            }
        }
    }
    for start in action_starts {
        for addr in start..start.saturating_add(64) {
            let Some(&raw) = image.words.get(addr as usize) else {
                break;
            };
            let Some(a) = Action::decode(raw) else { break };
            kinds.insert(addr, WordKind::ActionWord);
            if a.last {
                break;
            }
        }
    }
    kinds
}

/// Disassembles an image into human-readable lines using the
/// [`classify_words`] attribution.
pub fn disassemble(image: &ProgramImage) -> String {
    let kinds = classify_words(image);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; entry {:#06x} ({:?}), {} states, span {} words, density {:.0}%",
        image.entry_base,
        image.entry_kind,
        image.stats.n_states,
        image.stats.span_words,
        image.stats.density() * 100.0
    );
    for (addr, &raw) in image.words.iter().enumerate() {
        if raw == 0 {
            continue;
        }
        let addr = addr as u32;
        let line = match kinds.get(&addr) {
            Some(WordKind::Labeled { base, symbol }) => {
                let t = TransitionWord::decode(raw);
                format!(
                    "S{base:04x}['{}'] -> S{:04x} {:?}{}",
                    printable(*symbol),
                    t.target(),
                    t.kind(),
                    attach_str(&t)
                )
            }
            Some(WordKind::Fallback { base }) => {
                let t = TransitionWord::decode(raw);
                let tag = match t.signature() {
                    FALLBACK_SIGNATURE => "fallback".to_string(),
                    r if r <= 8 => format!("pass(refill {r})"),
                    other => format!("chain({other:#x})"),
                };
                format!(
                    "S{base:04x}[{tag}] -> S{:04x} {:?}{}",
                    t.target(),
                    t.kind(),
                    attach_str(&t)
                )
            }
            Some(WordKind::ActionWord) => match Action::decode(raw) {
                Some(a) => format!("  {a}"),
                None => format!(".word {raw:#010x}"),
            },
            _ => format!(".word {raw:#010x}"),
        };
        let _ = writeln!(out, "{addr:#06x}: {line}");
    }
    out
}

fn attach_str(t: &TransitionWord) -> String {
    if t.attach() == 0 {
        String::new()
    } else {
        format!(" @{:?}:{}", t.attach_mode(), t.attach())
    }
}

fn printable(b: u8) -> String {
    if b.is_ascii_graphic() || b == b' ' {
        (b as char).to_string()
    } else {
        format!("\\x{b:02x}")
    }
}

/// True when the word at `addr` decodes as an in-range transition whose
/// target stays inside the image (a structural lint used in tests).
pub fn transition_targets_in_range(image: &ProgramImage) -> bool {
    for &base in &image.state_bases {
        for off in 0..=FALLBACK_SLOT {
            let Some(&raw) = image.words.get((base + off) as usize) else {
                continue;
            };
            if raw == 0 {
                continue;
            }
            let t = TransitionWord::decode(raw);
            if off < 256 && t.signature() != off as u8 {
                continue; // foreign word interleaved here
            }
            if t.kind() != ExecKind::Halt
                && !image.state_bases.contains(&(u32::from(t.target())))
                && image.stats.span_words <= 4096
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::{Action as A, Opcode};
    use udp_isa::Reg;

    fn sample() -> ProgramImage {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(
            s,
            b'x' as u16,
            Target::State(s),
            vec![A::imm(Opcode::EmitB, Reg::R0, Reg::new(12), 33)],
        );
        b.fallback_arc(s, Target::State(s), vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    #[test]
    fn disassembly_mentions_states_and_actions() {
        let img = sample();
        let text = disassemble(&img);
        assert!(text.contains("['x']"), "{text}");
        assert!(text.contains("[fallback]"), "{text}");
        assert!(text.contains("EmitB"), "{text}");
        assert!(text.contains("entry"), "{text}");
    }

    #[test]
    fn structural_lint_passes_on_assembled_images() {
        let img = sample();
        assert!(transition_targets_in_range(&img));
    }

    #[test]
    fn empty_words_are_skipped() {
        let img = sample();
        let text = disassemble(&img);
        // Far fewer lines than span words: empties suppressed.
        assert!(text.lines().count() < img.stats.span_words / 2);
    }
}

//! EffCLiP placement and machine-code emission.
//!
//! The layout problem (paper §3.2.1): multi-way dispatch computes
//! `address = state base + symbol`, so all of a state's transition words
//! have *precise relative location constraints*. EffCLiP (Efficient
//! Coupled Linear Packing [55]) places state footprints so they interleave
//! without overlap — gaps in one state's symbol range hold other states'
//! words, giving dense memory and a trivial ("perfect") hash: integer
//! addition, with the signature check detecting reads of foreign words.
//!
//! Our implementation is first-fit over a window occupancy bitmap with
//! footprints ordered densest-first, which reproduces EffCLiP's dense
//! packing behaviour for the automata shapes in the paper's workloads.

use crate::image::{LaneInit, LayoutStats, ProgramImage};
use crate::ir::{Arc, DispatchSource, ProgramBuilder, StateNode, Target};
use std::collections::HashMap;
use std::fmt;
use udp_isa::action::{Action, Opcode};
use udp_isa::transition::{AttachMode, ExecKind, TransitionWord, FALLBACK_SIGNATURE};
use udp_isa::{Reg, BANK_WORDS, FALLBACK_SLOT};

/// Signature marking a non-final word of an epsilon-fork chain.
pub const CHAIN_CONTINUE_SIGNATURE: u8 = 0xFE;

/// Layout configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutOptions {
    /// Addressable window in words. One 16 KB bank (4096 words) under
    /// local addressing; `k * 4096` under restricted addressing. Arcs
    /// crossing 4096-word segments get an implicit `SetBase` action.
    pub window_words: usize,
    /// Deduplicate identical action blocks (UDP behaviour). Disabled by
    /// [`LayoutOptions::uap_attach`].
    pub share_actions: bool,
    /// Model the UAP's offset-only attach addressing: no sharing, private
    /// per-arc action copies. Produces a size-model-only image
    /// (`executable == false`) used for the Figure 5c comparison.
    pub uap_attach: bool,
    /// Run a structural self-check over the emitted image (dispatch-slot
    /// integrity and alias freedom) and fail assembly with
    /// [`AsmError::SelfCheck`] if it trips. The full static analysis
    /// lives in `udp-verify`; this native check is the assembler's own
    /// last line of defence and needs no extra dependency.
    pub self_check: bool,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            window_words: BANK_WORDS,
            share_actions: true,
            uap_attach: false,
            self_check: false,
        }
    }
}

impl LayoutOptions {
    /// A window of `banks` × 4096 words (restricted addressing).
    pub fn with_banks(banks: usize) -> Self {
        LayoutOptions {
            window_words: banks * BANK_WORDS,
            ..Default::default()
        }
    }
}

/// Assembly failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// No entry state was declared.
    NoEntry,
    /// The program does not fit the addressable window.
    ProgramTooLarge {
        /// Words required.
        needed: usize,
        /// Words available.
        window: usize,
    },
    /// More distinct scaled-offset action blocks than the 8-bit attach
    /// field can address.
    TooManyActionBlocks {
        /// Distinct blocks requested.
        blocks: usize,
    },
    /// An action block is longer than a scaled slot can hold (64 words).
    ActionBlockTooLong {
        /// Offending block length.
        len: usize,
    },
    /// A cross-segment arc targets a segment beyond the 16 the implicit
    /// `SetBase` immediate can express (64 KB of window).
    TargetSegmentOutOfRange {
        /// The unreachable segment index.
        segment: u32,
    },
    /// The post-emission structural self-check found a broken image
    /// (enabled by [`LayoutOptions::self_check`]).
    SelfCheck {
        /// Word offset of the offending slot.
        addr: u32,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::NoEntry => write!(f, "program has no entry state"),
            AsmError::ProgramTooLarge { needed, window } => {
                write!(f, "program needs {needed} words but window is {window}")
            }
            AsmError::TooManyActionBlocks { blocks } => {
                write!(f, "{blocks} action blocks exceed the 255-slot attach range")
            }
            AsmError::ActionBlockTooLong { len } => {
                write!(
                    f,
                    "action block of {len} words exceeds the scaled slot size"
                )
            }
            AsmError::TargetSegmentOutOfRange { segment } => {
                write!(
                    f,
                    "arc target in segment {segment} exceeds the SetBase immediate range"
                )
            }
            AsmError::SelfCheck { addr, detail } => {
                write!(f, "layout self-check failed at {addr:#06x}: {detail}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// Post-sharing action block bookkeeping.
struct BlockTable {
    /// Deduplicated blocks in first-seen order.
    blocks: Vec<Vec<Action>>,
    /// Content → block index.
    index: HashMap<Vec<Action>, usize>,
    /// Reference counts.
    refs: Vec<usize>,
}

impl BlockTable {
    fn new() -> Self {
        BlockTable {
            blocks: Vec::new(),
            index: HashMap::new(),
            refs: Vec::new(),
        }
    }

    fn intern(&mut self, actions: &[Action], share: bool) -> usize {
        if share {
            if let Some(&i) = self.index.get(actions) {
                self.refs[i] += 1;
                return i;
            }
        }
        let i = self.blocks.len();
        self.blocks.push(actions.to_vec());
        if share {
            self.index.insert(actions.to_vec(), i);
        }
        self.refs.push(1);
        i
    }
}

/// Where a block landed.
#[derive(Clone, Copy)]
enum BlockPlace {
    Direct { attach: u8 },
    Scaled { attach: u8 },
}

impl ProgramBuilder {
    /// Assembles the program: back-propagates transition kinds, shares and
    /// places action blocks, EffCLiP-packs states, and emits the image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] when the program lacks an entry, exceeds the
    /// window, or exhausts attach addressing.
    pub fn assemble(&self, opts: &LayoutOptions) -> Result<ProgramImage, AsmError> {
        let entry = self.entry.ok_or(AsmError::NoEntry)?;
        let window = opts.window_words;

        // ---- Pass 1: finalize per-arc action lists.
        //
        // Cross-segment arcs get an implicit SetBase appended, which must
        // happen before interning so sharing sees the final content. We
        // need state bases to know segments, but bases need footprints
        // only — so we do a two-phase fixpoint: place first assuming no
        // SetBase affects footprints (it doesn't: actions never change
        // footprints), then finalize arcs.
        let share = opts.share_actions && !opts.uap_attach;

        // ---- Pass 2–4 fixpoint: placement decides which arcs cross
        // 4096-word segments (and thus carry an implicit SetBase), but
        // the action regions those arcs create shift the placement.
        // Iterate with a monotonically growing reservation until the
        // bases used to derive the SetBase actions are the bases that
        // coexist with the resulting action regions.
        let seg_of = |base: u32| base >> 12;
        let mut reserved = 0usize;
        let (bases, table, arc_places, places, direct_words, scaled_region_words, ascale, slot) = loop {
            let bases = self.pack_states(window, reserved)?;

            // Append SetBase to arcs that change segments, then intern.
            // (SetBase is idempotent, so self-loops never need it.)
            let mut table = BlockTable::new();
            let mut arc_places: Vec<Vec<Option<usize>>> = Vec::with_capacity(self.states.len());
            for (sid, node) in self.states.iter().enumerate() {
                let from_seg = seg_of(bases[sid]);
                let mut per_arc = Vec::new();
                for arc in node.arcs() {
                    let mut actions = arc.actions.clone();
                    if let Target::State(t) = arc.target {
                        let to_seg = seg_of(bases[t.index()]);
                        if to_seg != from_seg {
                            if to_seg > 0xF && !opts.uap_attach {
                                // The 16-bit SetBase immediate holds at
                                // most segment 15; silently truncating
                                // would mis-dispatch the whole arc. Size
                                // models (uap_attach) are never executed,
                                // so only their word counts matter.
                                return Err(AsmError::TargetSegmentOutOfRange { segment: to_seg });
                            }
                            actions.push(Action::imm(
                                Opcode::SetBase,
                                Reg::R0,
                                Reg::R0,
                                (to_seg << 12) as u16,
                            ));
                        }
                    }
                    if actions.is_empty() {
                        per_arc.push(None);
                    } else {
                        // Normalize block termination: exactly the final
                        // action carries the `last` bit.
                        for a in actions.iter_mut() {
                            a.last = false;
                        }
                        if let Some(last) = actions.last_mut() {
                            last.last = true;
                        }
                        per_arc.push(Some(table.intern(&actions, share)));
                    }
                }
                arc_places.push(per_arc);
            }

            // Split blocks into direct / scaled regions.
            let n_blocks = table.blocks.len();
            let max_len = table.blocks.iter().map(Vec::len).max().unwrap_or(1);
            let ascale = (usize::BITS - (max_len.max(1) - 1).leading_zeros()).min(6) as u8;
            let slot = 1usize << ascale;
            if max_len > slot {
                return Err(AsmError::ActionBlockTooLong { len: max_len });
            }
            // Most-referenced blocks into the direct region (words 1..=255).
            let mut order: Vec<usize> = (0..n_blocks).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(table.refs[i]), table.blocks[i].len()));
            let mut places: Vec<Option<BlockPlace>> = vec![None; n_blocks];
            let mut direct_cursor = 1usize; // word 0 reserved
            let mut scaled_count = 0usize;
            for &i in &order {
                let len = table.blocks[i].len();
                if direct_cursor + len <= 256 {
                    places[i] = Some(BlockPlace::Direct {
                        attach: direct_cursor as u8,
                    });
                    direct_cursor += len;
                } else {
                    scaled_count += 1;
                    if scaled_count > 255 && !opts.uap_attach {
                        return Err(AsmError::TooManyActionBlocks { blocks: n_blocks });
                    }
                    places[i] = Some(BlockPlace::Scaled {
                        attach: (((scaled_count - 1) % 255) + 1) as u8,
                    });
                }
            }
            let direct_words = direct_cursor; // includes reserved word 0
            let scaled_region_words = scaled_count * slot;
            let need = direct_words + scaled_region_words;
            if need <= reserved {
                break (
                    bases,
                    table,
                    arc_places,
                    places,
                    direct_words,
                    scaled_region_words,
                    ascale,
                    slot,
                );
            }
            reserved = reserved.max(need);
        };
        let scaled_region_start = direct_words;
        // ABASE such that attach i (1-based) maps to region_start + (i-1)*slot.
        let abase = (scaled_region_start as i64 - slot as i64).max(0) as u32;
        let reserved = scaled_region_start + scaled_region_words;

        // Every block was assigned a place in the fixpoint loop above;
        // collapse the Options so the emit path cannot observe a hole.
        let places: Vec<BlockPlace> = places
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                p.ok_or_else(|| AsmError::SelfCheck {
                    addr: i as u32,
                    detail: "action block was never placed".into(),
                })
            })
            .collect::<Result<_, _>>()?;

        // ---- Pass 5: emit.
        let mut span = reserved;
        for (sid, node) in self.states.iter().enumerate() {
            let top = bases[sid] as usize + node.footprint().last().copied().unwrap_or(0) as usize;
            span = span.max(top + 1);
        }
        if span > window {
            return Err(AsmError::ProgramTooLarge {
                needed: span,
                window,
            });
        }
        let mut words = vec![0u32; span];
        let mut n_action_words = 0usize;

        // Action regions.
        for (i, block) in table.blocks.iter().enumerate() {
            let addr = match places[i] {
                BlockPlace::Direct { attach } => attach as usize,
                BlockPlace::Scaled { attach } => abase as usize + (attach as usize) * slot,
            };
            if addr + block.len() <= words.len() {
                for (k, a) in block.iter().enumerate() {
                    words[addr + k] = a.encode();
                }
            }
            n_action_words += block.len();
        }

        // Transition words.
        let mut n_transition_words = 0usize;
        let kind_of = |t: Target| -> ExecKind {
            match t {
                Target::Halt => ExecKind::Halt,
                Target::State(s) => match &self.states[s.index()] {
                    StateNode::Consuming {
                        source: DispatchSource::Stream,
                        ..
                    } => ExecKind::Consume,
                    StateNode::Consuming {
                        source: DispatchSource::Register,
                        ..
                    } => ExecKind::Flagged,
                    StateNode::Pass { .. } | StateNode::Fork { .. } => ExecKind::Pass,
                },
            }
        };
        let target_field = |t: Target| -> u16 {
            match t {
                Target::Halt => 0,
                Target::State(s) => (bases[s.index()] & 0xFFF) as u16,
            }
        };
        let encode_arc = |sig: u8, arc: &Arc, place: Option<usize>| -> u32 {
            let (mode, attach) = match place {
                None => (AttachMode::Direct, 0u8),
                Some(b) => match places[b] {
                    BlockPlace::Direct { attach } => (AttachMode::Direct, attach),
                    BlockPlace::Scaled { attach } => (AttachMode::Scaled, attach),
                },
            };
            TransitionWord::new(
                sig,
                target_field(arc.target),
                kind_of(arc.target),
                mode,
                attach,
            )
            .encode()
        };

        for (sid, node) in self.states.iter().enumerate() {
            let base = bases[sid] as usize;
            let blocks = &arc_places[sid];
            match node {
                StateNode::Consuming { arcs, fallback, .. } => {
                    for (k, (sym, arc)) in arcs.iter().enumerate() {
                        words[base + *sym as usize] = encode_arc(*sym as u8, arc, blocks[k]);
                        n_transition_words += 1;
                    }
                    if let Some(fb) = fallback {
                        words[base + FALLBACK_SLOT as usize] =
                            encode_arc(FALLBACK_SIGNATURE, fb, blocks[arcs.len()]);
                        n_transition_words += 1;
                    }
                }
                StateNode::Pass { refill, arc } => {
                    words[base + FALLBACK_SLOT as usize] = encode_arc(*refill, arc, blocks[0]);
                    n_transition_words += 1;
                }
                StateNode::Fork { arcs } => {
                    for (k, arc) in arcs.iter().enumerate() {
                        let sig = if k + 1 < arcs.len() {
                            CHAIN_CONTINUE_SIGNATURE
                        } else {
                            FALLBACK_SIGNATURE
                        };
                        words[base + FALLBACK_SLOT as usize + k] = encode_arc(sig, arc, blocks[k]);
                        n_transition_words += 1;
                    }
                }
            }
        }

        if opts.self_check && !opts.uap_attach {
            self.self_check_image(&words, &bases)?;
        }

        let words_used = words.iter().filter(|&&w| w != 0).count();
        let entry_base = bases[entry.index()];
        Ok(ProgramImage {
            words,
            entry_base,
            entry_kind: kind_of(Target::State(entry)),
            init: LaneInit {
                symbol_bits: self.symbol_bits,
                abase,
                ascale,
                wbase: entry_base & !0xFFF,
            },
            state_bases: bases,
            stats: LayoutStats {
                span_words: span,
                words_used,
                n_states: self.states.len(),
                n_transition_words,
                n_action_words,
                direct_region_words: direct_words,
                scaled_region_words,
            },
            executable: !opts.uap_attach,
            cert: None,
        })
    }

    /// The fallback-slot-family words a state will emit, as
    /// `(offset, signature)` pairs. These signatures (`0xFF`, `0xFE`,
    /// refill counts) are *not* tied to the word's address the way
    /// labeled signatures are, so they can alias another state's
    /// `base + symbol` read — the packer must keep them out of foreign
    /// dispatch windows.
    fn sig_words(node: &StateNode) -> Vec<(u32, u8)> {
        match node {
            StateNode::Consuming { fallback, .. } => fallback
                .as_ref()
                .map(|_| (FALLBACK_SLOT, FALLBACK_SIGNATURE))
                .into_iter()
                .collect(),
            StateNode::Pass { refill, .. } => vec![(FALLBACK_SLOT, *refill)],
            StateNode::Fork { arcs } => (0..arcs.len())
                .map(|k| {
                    let sig = if k + 1 < arcs.len() {
                        CHAIN_CONTINUE_SIGNATURE
                    } else {
                        FALLBACK_SIGNATURE
                    };
                    (FALLBACK_SLOT + k as u32, sig)
                })
                .collect(),
        }
    }

    /// First-fit EffCLiP packing of state footprints above `reserved`.
    ///
    /// Beyond plain occupancy, placement maintains *alias freedom*: a
    /// dispatching (consuming/flagged) state based at `B` reads `B + s`
    /// for any symbol `s` and trusts the signature byte to reject
    /// foreign words — but fallback-family words (signature `0xFF`,
    /// chain `0xFE`, refill counts) and action-region words carry
    /// signatures unrelated to their address, so one landing at `B + s`
    /// with top byte `s` would be a false dispatch hit. The packer
    /// therefore (a) keeps dispatch windows above the action regions,
    /// (b) never bases a dispatching state where an existing
    /// fallback-family word aliases it, and (c) never emits a
    /// fallback-family word that aliases an existing dispatching base.
    fn pack_states(&self, window: usize, reserved: usize) -> Result<Vec<u32>, AsmError> {
        let mut occupied = vec![false; window];
        for cell in occupied.iter_mut().take(reserved.min(window)) {
            *cell = true;
        }
        if window > 0 {
            occupied[0] = true; // empty-word detection
        }
        // alias_forbidden[b]: some placed fallback-family word sits at
        // b + sig for its signature, so no dispatching state may use b.
        let mut alias_forbidden = vec![false; window];
        // dispatch_base[b]: a dispatching state is based at b.
        let mut dispatch_base = vec![false; window];

        // Densest footprints first.
        let mut order: Vec<usize> = (0..self.states.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.states[i].footprint().len()));

        // A state may never sit exactly on a 4096-word segment boundary:
        // its 12-bit target field would be zero, and a labeled arc on
        // symbol 0 with no actions would encode as the all-zero word the
        // lane treats as empty.
        let usable = |base: usize| base & 0xFFF != 0;
        let reserved_floor = reserved.min(window);
        let mut bases = vec![0u32; self.states.len()];
        let mut hint = 0usize;
        for &sid in &order {
            let node = &self.states[sid];
            let fp = node.footprint();
            let dispatches = matches!(node, StateNode::Consuming { .. });
            let swords = Self::sig_words(node);
            let top = *fp.last().unwrap_or(&0) as usize;
            let fits = |base: usize| -> bool {
                if !usable(base) || fp.iter().any(|&off| occupied[base + off as usize]) {
                    return false;
                }
                // (a)+(b): a dispatch window must sit above the action
                // regions and clear of aliasing fallback words.
                if dispatches && (base < reserved_floor || alias_forbidden[base]) {
                    return false;
                }
                // (c): our own fallback-family words must not alias an
                // already-placed dispatching base.
                for &(off, sig) in &swords {
                    let addr = base + off as usize;
                    if let Some(rb) = addr.checked_sub(sig as usize) {
                        if rb != base && rb < window && dispatch_base[rb] {
                            return false;
                        }
                    }
                }
                true
            };
            let found = 'search: {
                let mut base = if dispatches {
                    hint.max(reserved_floor)
                } else {
                    hint
                };
                while base + top < window {
                    if fits(base) {
                        break 'search Some(base);
                    }
                    base += 1;
                }
                // Retry from the bottom in case the hint skipped gaps.
                base = if dispatches { reserved_floor } else { 0 };
                while base + top < window {
                    if fits(base) {
                        break 'search Some(base);
                    }
                    base += 1;
                }
                None
            };
            let Some(base) = found else {
                return Err(AsmError::ProgramTooLarge {
                    needed: window + fp.len(),
                    window,
                });
            };
            for &off in &fp {
                occupied[base + off as usize] = true;
            }
            for &(off, sig) in &swords {
                if let Some(rb) = (base + off as usize).checked_sub(sig as usize) {
                    if rb < window {
                        alias_forbidden[rb] = true;
                    }
                }
            }
            if dispatches {
                dispatch_base[base] = true;
            }
            bases[sid] = base as u32;
            // Advance the hint past fully dense prefixes cheaply.
            while hint < window && occupied[hint] {
                hint += 1;
            }
        }
        Ok(bases)
    }

    /// Structural self-check over an emitted image (see
    /// [`LayoutOptions::self_check`]): every labeled slot's signature
    /// echoes its offset, and no dispatching state's `base + symbol`
    /// read can false-hit a foreign word.
    fn self_check_image(&self, words: &[u32], bases: &[u32]) -> Result<(), AsmError> {
        for (sid, node) in self.states.iter().enumerate() {
            let base = bases[sid] as usize;
            let StateNode::Consuming { arcs, .. } = node else {
                continue;
            };
            let owned: std::collections::HashSet<usize> =
                arcs.iter().map(|(sym, _)| *sym as usize).collect();
            for sym in 0..FALLBACK_SLOT as usize {
                let Some(&raw) = words.get(base + sym) else {
                    break;
                };
                if raw == 0 {
                    continue;
                }
                let sig = (raw >> 24) as usize;
                if owned.contains(&sym) {
                    if sig != sym {
                        return Err(AsmError::SelfCheck {
                            addr: (base + sym) as u32,
                            detail: format!(
                                "labeled slot for symbol {sym} carries signature {sig}"
                            ),
                        });
                    }
                } else if sig == sym {
                    return Err(AsmError::SelfCheck {
                        addr: (base + sym) as u32,
                        detail: format!(
                            "foreign word aliases symbol {sym} of the state at {base:#x}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ProgramBuilder, Target};
    use proptest::prelude::*;
    use udp_isa::action::{Action, Opcode};

    fn emit(b: u8) -> Vec<Action> {
        vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, u16::from(b)).ending()]
    }

    #[test]
    fn assemble_minimal_loop() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, b'a' as u16, Target::State(s), emit(b'x'));
        b.fallback_arc(s, Target::State(s), vec![]);
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        assert!(img.executable);
        assert_eq!(img.stats.n_states, 1);
        assert_eq!(img.stats.n_transition_words, 2);
        assert!(img.stats.words_used >= 3);
        // The labeled word sits at base + 'a'.
        let w = TransitionWord::decode(img.words[img.entry_base as usize + b'a' as usize]);
        assert_eq!(w.signature(), b'a');
        assert_eq!(w.kind(), ExecKind::Consume);
    }

    #[test]
    fn no_entry_errors() {
        let b = ProgramBuilder::new();
        assert_eq!(
            b.assemble(&LayoutOptions::default()).unwrap_err(),
            AsmError::NoEntry
        );
    }

    #[test]
    fn shared_blocks_are_deduplicated() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        for sym in 0..50u16 {
            b.labeled_arc(s, sym, Target::State(s), emit(b'!'));
        }
        b.fallback_arc(s, Target::State(s), vec![]);
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        // One shared block of one word, not 50 copies.
        assert_eq!(img.stats.n_action_words, 1);
    }

    #[test]
    fn uap_mode_duplicates_blocks() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        for sym in 0..50u16 {
            b.labeled_arc(s, sym, Target::State(s), emit(b'!'));
        }
        b.fallback_arc(s, Target::State(s), vec![]);
        let img = b
            .assemble(&LayoutOptions {
                uap_attach: true,
                ..Default::default()
            })
            .unwrap();
        assert!(!img.executable);
        assert_eq!(img.stats.n_action_words, 50);
    }

    #[test]
    fn footprints_never_collide() {
        // Many states with overlapping symbol ranges must interleave
        // without slot collisions.
        let mut b = ProgramBuilder::new();
        let states: Vec<_> = (0..40).map(|_| b.add_consuming_state()).collect();
        b.set_entry(states[0]);
        for (i, &s) in states.iter().enumerate() {
            for k in 0..8u16 {
                let sym = ((i as u16 * 7) + k * 31) % 256;
                let tgt = states[(i + k as usize) % states.len()];
                if !matches!(b.state(s), StateNode::Consuming { arcs, .. }
                             if arcs.iter().any(|(x, _)| *x == sym))
                {
                    b.labeled_arc(s, sym, Target::State(tgt), vec![]);
                }
            }
            b.fallback_arc(s, Target::State(states[0]), vec![]);
        }
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        // Verify the perfect-hash property: every labeled arc is
        // retrievable by base+symbol with a matching signature.
        for (sid, &base) in img.state_bases.iter().enumerate() {
            if let StateNode::Consuming { arcs, .. } = b.state(crate::ir::StateId(sid as u32)) {
                for (sym, _) in arcs {
                    let w = TransitionWord::decode(img.words[base as usize + *sym as usize]);
                    assert_eq!(w.signature(), *sym as u8, "state {sid} symbol {sym}");
                }
            }
        }
    }

    #[test]
    fn cross_segment_arcs_get_setbase() {
        // Force a multi-bank program: enough states to spill past 4096 words.
        let mut b = ProgramBuilder::new();
        let states: Vec<_> = (0..40).map(|_| b.add_consuming_state()).collect();
        b.set_entry(states[0]);
        for (i, &s) in states.iter().enumerate() {
            // Dense states: 200 labeled arcs each → footprint ~201 words.
            for sym in 0..200u16 {
                b.labeled_arc(s, sym, Target::State(states[(i + 1) % 40]), vec![]);
            }
            b.fallback_arc(s, Target::State(states[0]), vec![]);
        }
        let img = b.assemble(&LayoutOptions::with_banks(4)).unwrap();
        assert!(img.stats.span_words > BANK_WORDS, "should span segments");
        // Some arcs must carry a SetBase action (counted as action words).
        assert!(img.stats.n_action_words > 0);
    }

    #[test]
    fn program_too_large_reports_window() {
        let mut b = ProgramBuilder::new();
        // 40 dense states cannot fit one 4096-word bank.
        let states: Vec<_> = (0..40).map(|_| b.add_consuming_state()).collect();
        b.set_entry(states[0]);
        for &s in &states {
            for sym in 0..256u16 {
                b.labeled_arc(s, sym, Target::State(s), vec![]);
            }
        }
        match b.assemble(&LayoutOptions::default()) {
            Err(AsmError::ProgramTooLarge { window, .. }) => assert_eq!(window, BANK_WORDS),
            other => panic!("expected ProgramTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn too_many_action_blocks_is_detected() {
        let mut b = ProgramBuilder::new();
        let states: Vec<_> = (0..3).map(|_| b.add_consuming_state()).collect();
        b.set_entry(states[0]);
        // > 510 distinct blocks exceeds direct + scaled attach capacity.
        let mut n = 0u16;
        'outer: for &s in &states {
            for sym in 0..256u16 {
                b.labeled_arc(
                    s,
                    sym,
                    Target::State(s),
                    vec![
                        Action::imm(Opcode::MovI, Reg::new(1), Reg::R0, n),
                        Action::imm(Opcode::MovI, Reg::new(2), Reg::R0, n + 1),
                    ],
                );
                n += 1;
                if n == 700 {
                    break 'outer;
                }
            }
        }
        assert!(matches!(
            b.assemble(&LayoutOptions::with_banks(4)),
            Err(AsmError::TooManyActionBlocks { .. })
        ));
    }

    #[test]
    fn oversized_action_block_is_detected() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        let block: Vec<Action> = (0..100)
            .map(|i| Action::imm(Opcode::MovI, Reg::new(1), Reg::R0, i))
            .collect();
        b.labeled_arc(s, 0, Target::State(s), block);
        assert!(matches!(
            b.assemble(&LayoutOptions::default()),
            Err(AsmError::ActionBlockTooLong { len: 100 })
        ));
    }

    #[test]
    fn no_state_lands_on_a_segment_boundary() {
        let mut b = ProgramBuilder::new();
        let states: Vec<_> = (0..60).map(|_| b.add_consuming_state()).collect();
        b.set_entry(states[0]);
        for (i, &s) in states.iter().enumerate() {
            for sym in 0..120u16 {
                b.labeled_arc(s, sym, Target::State(states[(i + 1) % 60]), vec![]);
            }
            b.fallback_arc(s, Target::State(states[0]), vec![]);
        }
        let img = b.assemble(&LayoutOptions::with_banks(8)).unwrap();
        assert!(img.stats.span_words > 4096, "must cross segments");
        for &base in &img.state_bases {
            assert_ne!(base & 0xFFF, 0, "base {base:#x} on a boundary");
        }
    }

    #[test]
    fn error_messages_are_displayable() {
        for e in [
            AsmError::NoEntry,
            AsmError::ProgramTooLarge {
                needed: 5000,
                window: 4096,
            },
            AsmError::TooManyActionBlocks { blocks: 300 },
            AsmError::ActionBlockTooLong { len: 99 },
            AsmError::TargetSegmentOutOfRange { segment: 18 },
            AsmError::SelfCheck {
                addr: 0x123,
                detail: "synthetic".into(),
            },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn self_check_accepts_assembled_programs() {
        let mut b = ProgramBuilder::new();
        let states: Vec<_> = (0..6).map(|_| b.add_consuming_state()).collect();
        b.set_entry(states[0]);
        for (i, &s) in states.iter().enumerate() {
            let next = states[(i + 1) % states.len()];
            for sym in 0..32u16 {
                b.labeled_arc(s, sym * 8, Target::State(next), vec![]);
            }
            b.fallback_arc(s, Target::State(s), vec![]);
        }
        let opts = LayoutOptions {
            self_check: true,
            ..LayoutOptions::default()
        };
        b.assemble(&opts).expect("self-check must pass");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_layout_is_collision_free(seed_arcs in proptest::collection::vec((0u16..256, 0usize..12), 1..120)) {
            let mut b = ProgramBuilder::new();
            let states: Vec<_> = (0..12).map(|_| b.add_consuming_state()).collect();
            b.set_entry(states[0]);
            let mut seen = std::collections::HashSet::new();
            for (i, (sym, tgt)) in seed_arcs.iter().enumerate() {
                let from = states[i % states.len()];
                if seen.insert((from, *sym)) {
                    b.labeled_arc(from, *sym, Target::State(states[tgt % states.len()]), vec![]);
                }
            }
            let img = b.assemble(&LayoutOptions::default()).unwrap();
            for (sid, &base) in img.state_bases.iter().enumerate() {
                if let StateNode::Consuming { arcs, .. } = b.state(crate::ir::StateId(sid as u32)) {
                    for (sym, _) in arcs {
                        let w = TransitionWord::decode(img.words[base as usize + *sym as usize]);
                        prop_assert_eq!(w.signature(), *sym as u8);
                    }
                }
            }
        }

        /// EffCLiP integrity under load: random IRs with attached action
        /// blocks, fallbacks, and pass states pack with zero word
        /// collisions (the native `self_check` re-derives every claim)
        /// and never report more words used than the span holds.
        #[test]
        fn prop_effclip_packs_action_blocks_without_collisions(
            seed_arcs in proptest::collection::vec((0u16..256, 0usize..10, 0usize..4), 1..100)
        ) {
            let mut b = ProgramBuilder::new();
            let states: Vec<_> = (0..8).map(|_| b.add_consuming_state()).collect();
            // Two pass states widen the shape mix: their slot-256 words
            // are the fallback-family aliases the packer must dodge.
            let p0 = b.add_pass_state(0, crate::ir::Arc { target: Target::State(states[0]), actions: vec![] });
            let p1 = b.add_pass_state(3, crate::ir::Arc { target: Target::State(p0), actions: emit(b'.') });
            b.set_entry(states[0]);
            let mut seen = std::collections::HashSet::new();
            for (i, (sym, tgt, n_act)) in seed_arcs.iter().enumerate() {
                let from = states[i % states.len()];
                if !seen.insert((from, *sym)) {
                    continue;
                }
                let target = if tgt % 9 == 8 { Target::State(p1) } else { Target::State(states[tgt % states.len()]) };
                let actions: Vec<Action> = (0..*n_act)
                    .map(|k| Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, (*sym + k as u16) & 0xFF))
                    .collect();
                b.labeled_arc(from, *sym, target, actions);
            }
            for (i, &s) in states.iter().enumerate() {
                if i % 2 == 0 {
                    b.fallback_arc(s, Target::Halt, emit(b'F'));
                }
            }
            let opts = LayoutOptions { self_check: true, ..LayoutOptions::default() };
            let img = b.assemble(&opts).unwrap();
            prop_assert!(
                img.stats.words_used <= img.stats.span_words,
                "used {} > span {}", img.stats.words_used, img.stats.span_words
            );
        }

        /// The accounting invariant holds at every window size the
        /// fixpoint settles into, not just the roomy default.
        #[test]
        fn prop_words_used_never_exceeds_span(
            seed_arcs in proptest::collection::vec((0u16..256, 0usize..6), 1..60),
            banks in 1usize..5
        ) {
            let mut b = ProgramBuilder::new();
            let states: Vec<_> = (0..6).map(|_| b.add_consuming_state()).collect();
            b.set_entry(states[0]);
            let mut seen = std::collections::HashSet::new();
            for (i, (sym, tgt)) in seed_arcs.iter().enumerate() {
                let from = states[i % states.len()];
                if seen.insert((from, *sym)) {
                    b.labeled_arc(from, *sym, Target::State(states[tgt % states.len()]), emit(*sym as u8));
                }
            }
            let opts = LayoutOptions {
                self_check: true,
                ..LayoutOptions::with_banks(banks)
            };
            if let Ok(img) = b.assemble(&opts) {
                prop_assert!(img.stats.words_used <= img.stats.span_words);
                prop_assert!(img.stats.span_words <= banks * udp_isa::mem::BANK_WORDS);
            }
        }
    }
}

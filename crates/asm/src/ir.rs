//! The assembler's intermediate representation: states, arcs, actions.
//!
//! Translators build programs from three node shapes that together realize
//! the paper's seven transition types:
//!
//! * [`StateNode::Consuming`] — reads a symbol (from the stream buffer or,
//!   when [`DispatchSource::Register`], from scalar register R0: the
//!   *flagged* dispatch of §3.2.3) and multi-way dispatches on it.
//!   Its labeled arcs are *labeled* transitions; its fallback arc is the
//!   *majority* / *default* / *common* compaction.
//! * [`StateNode::Pass`] — acts immediately without consuming: plain pass
//!   (`refill == 0`) or a *refill* state that puts back unconsumed bits
//!   (§3.2.2, variable-size symbols).
//! * [`StateNode::Fork`] — *epsilon* multi-state activation for NFA
//!   execution: all arcs activate.

use udp_isa::action::Action;

/// Index of a state within a [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where an arc goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Continue at a state.
    State(StateId),
    /// Stop the lane (terminal arc); actions still run first.
    Halt,
}

/// Which source a consuming state dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchSource {
    /// The stream buffer: `symbol_size` bits per dispatch.
    #[default]
    Stream,
    /// Scalar register R0 (the paper's *flagged* transitions).
    Register,
}

/// One outgoing transition: a destination plus an attached action block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Destination.
    pub target: Target,
    /// Actions executed when the arc is taken (empty = none).
    pub actions: Vec<Action>,
}

/// A dispatch state.
#[derive(Debug, Clone, PartialEq)]
pub enum StateNode {
    /// Multi-way dispatch on a consumed symbol.
    Consuming {
        /// Symbol source (stream or R0).
        source: DispatchSource,
        /// `(symbol, arc)` pairs; symbols must be `< 256`.
        arcs: Vec<(u16, Arc)>,
        /// Taken when no labeled arc matches; consumes the symbol.
        fallback: Option<Arc>,
    },
    /// Pass-through: immediately takes `arc`, first putting `refill`
    /// bits back into the stream.
    Pass {
        /// Bits to put back (0–8); 0 is a plain epsilon/pass.
        refill: u8,
        /// The sole outgoing arc.
        arc: Arc,
    },
    /// Epsilon fork: activates every arc (NFA multi-state activation).
    Fork {
        /// The activated arcs, in chain order.
        arcs: Vec<Arc>,
    },
}

impl StateNode {
    /// Word-slot offsets (relative to the state base) this state occupies.
    ///
    /// Consuming states own their labeled slots plus the fallback slot
    /// (reserved even when no fallback arc exists, so a missed dispatch
    /// reads a detectably-empty word). Pass states own the fallback slot;
    /// forks own a chain starting there.
    pub fn footprint(&self) -> Vec<u32> {
        match self {
            StateNode::Consuming { arcs, .. } => {
                let mut slots: Vec<u32> = arcs.iter().map(|(s, _)| u32::from(*s)).collect();
                slots.push(udp_isa::FALLBACK_SLOT);
                slots.sort_unstable();
                slots.dedup();
                slots
            }
            StateNode::Pass { .. } => vec![udp_isa::FALLBACK_SLOT],
            StateNode::Fork { arcs } => (0..arcs.len().max(1) as u32)
                .map(|i| udp_isa::FALLBACK_SLOT + i)
                .collect(),
        }
    }

    /// All outgoing arcs, for traversal.
    pub fn arcs(&self) -> Vec<&Arc> {
        match self {
            StateNode::Consuming { arcs, fallback, .. } => {
                arcs.iter().map(|(_, a)| a).chain(fallback.iter()).collect()
            }
            StateNode::Pass { arc, .. } => vec![arc],
            StateNode::Fork { arcs } => arcs.iter().collect(),
        }
    }
}

/// An in-progress UDP program: the input to [`ProgramBuilder::assemble`].
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    pub(crate) states: Vec<StateNode>,
    pub(crate) entry: Option<StateId>,
    /// Initial symbol-size register value in bits (1–8).
    pub(crate) symbol_bits: u8,
}

impl ProgramBuilder {
    /// Creates an empty program with byte-wide (8-bit) symbols.
    pub fn new() -> Self {
        ProgramBuilder {
            states: Vec::new(),
            entry: None,
            symbol_bits: 8,
        }
    }

    /// Sets the initial symbol width in bits (1–8).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn set_symbol_bits(&mut self, bits: u8) {
        assert!((1..=8).contains(&bits), "symbol width {bits} out of range");
        self.symbol_bits = bits;
    }

    /// The configured initial symbol width.
    pub fn symbol_bits(&self) -> u8 {
        self.symbol_bits
    }

    /// Adds an empty stream-dispatching consuming state.
    pub fn add_consuming_state(&mut self) -> StateId {
        self.add_state(StateNode::Consuming {
            source: DispatchSource::Stream,
            arcs: Vec::new(),
            fallback: None,
        })
    }

    /// Adds an empty register-dispatching (flagged) consuming state.
    pub fn add_flagged_state(&mut self) -> StateId {
        self.add_state(StateNode::Consuming {
            source: DispatchSource::Register,
            arcs: Vec::new(),
            fallback: None,
        })
    }

    /// Adds a pass-through state that refills `refill` bits and takes `arc`.
    pub fn add_pass_state(&mut self, refill: u8, arc: Arc) -> StateId {
        assert!(refill <= 8, "refill {refill} exceeds 8 bits");
        self.add_state(StateNode::Pass { refill, arc })
    }

    /// Adds an epsilon-fork state activating all `arcs`.
    pub fn add_fork_state(&mut self, arcs: Vec<Arc>) -> StateId {
        assert!(!arcs.is_empty(), "fork must have at least one arc");
        self.add_state(StateNode::Fork { arcs })
    }

    /// Adds an arbitrary node.
    pub fn add_state(&mut self, node: StateNode) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(node);
        id
    }

    /// Declares the entry state.
    pub fn set_entry(&mut self, state: StateId) {
        self.entry = Some(state);
    }

    /// The entry state, if set.
    pub fn entry(&self) -> Option<StateId> {
        self.entry
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Immutable access to a node.
    pub fn state(&self, id: StateId) -> &StateNode {
        &self.states[id.index()]
    }

    /// Adds a labeled arc `from --symbol--> target` running `actions`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a consuming state, `symbol >= 256`, or the
    /// symbol already has an arc.
    pub fn labeled_arc(
        &mut self,
        from: StateId,
        symbol: u16,
        target: Target,
        actions: Vec<Action>,
    ) {
        assert!(symbol < 256, "symbol {symbol} out of 8-bit dispatch range");
        match &mut self.states[from.index()] {
            StateNode::Consuming { arcs, .. } => {
                assert!(
                    !arcs.iter().any(|(s, _)| *s == symbol),
                    "duplicate labeled arc for symbol {symbol}"
                );
                arcs.push((symbol, Arc { target, actions }));
            }
            other => panic!("labeled_arc on non-consuming state: {other:?}"),
        }
    }

    /// Sets the fallback (majority/default/common) arc of a consuming state.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not consuming or already has a fallback.
    pub fn fallback_arc(&mut self, from: StateId, target: Target, actions: Vec<Action>) {
        match &mut self.states[from.index()] {
            StateNode::Consuming { fallback, .. } => {
                assert!(fallback.is_none(), "state already has a fallback arc");
                *fallback = Some(Arc { target, actions });
            }
            other => panic!("fallback_arc on non-consuming state: {other:?}"),
        }
    }

    /// Total number of arcs (transition words before layout).
    pub fn arc_count(&self) -> usize {
        self.states.iter().map(|s| s.arcs().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consuming_footprint_includes_fallback_slot() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.labeled_arc(s, 3, Target::Halt, vec![]);
        b.labeled_arc(s, 250, Target::Halt, vec![]);
        assert_eq!(b.state(s).footprint(), vec![3, 250, 256]);
    }

    #[test]
    fn pass_footprint_is_fallback_slot() {
        let mut b = ProgramBuilder::new();
        let s = b.add_pass_state(
            2,
            Arc {
                target: Target::Halt,
                actions: vec![],
            },
        );
        assert_eq!(b.state(s).footprint(), vec![256]);
    }

    #[test]
    fn fork_footprint_is_chain() {
        let mut b = ProgramBuilder::new();
        let arc = Arc {
            target: Target::Halt,
            actions: vec![],
        };
        let s = b.add_fork_state(vec![arc.clone(), arc.clone(), arc]);
        assert_eq!(b.state(s).footprint(), vec![256, 257, 258]);
    }

    #[test]
    #[should_panic(expected = "duplicate labeled arc")]
    fn duplicate_symbol_panics() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.labeled_arc(s, 1, Target::Halt, vec![]);
        b.labeled_arc(s, 1, Target::Halt, vec![]);
    }

    #[test]
    #[should_panic(expected = "8-bit dispatch range")]
    fn oversized_symbol_panics() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.labeled_arc(s, 256, Target::Halt, vec![]);
    }
}

//! Canonical binary serialization for [`ProgramImage`] — the on-disk
//! normal form the artifact store (`udp-store`) persists and reloads.
//!
//! The encoding is deliberately dumb: fixed field order, little-endian
//! integers, length-prefixed vectors, no compression, no reflection.
//! Two properties matter and both are load-bearing for the store:
//!
//! 1. **Determinism** — the same image always encodes to the same
//!    bytes, so "byte-identical to a fresh assembly" is a meaningful
//!    integrity check and content addressing is stable.
//! 2. **Total decoding** — every malformed input byte string decodes to
//!    a typed [`SerialError`], never a panic and never an unbounded
//!    allocation (all lengths are capped before any `Vec` is sized).
//!
//! The resource certificate travels inside the image
//! ([`ProgramImage::cert`]) and is encoded in full, including the
//! structured [`CostBlocker`] list, so a reloaded artifact carries
//! exactly the bounds the verifier certified at build time.

use crate::cert::{CostBlocker, CostMetric, ResourceCert};
use crate::image::{LaneInit, LayoutStats, ProgramImage};
use udp_isa::transition::ExecKind;

/// Version tag of the serialization format **and** of the ISA-level
/// layout semantics it captures. Bump on any change to the encoding,
/// to `ProgramImage`'s fields, or to the assembler's placement rules —
/// the artifact store mixes it into content hashes, so a bump cleanly
/// invalidates every cached artifact instead of misdecoding them.
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on the image word vector: the whole device memory
/// (64 banks x 4096 words). Anything larger is hostile input.
const MAX_WORDS: usize = udp_isa::NUM_BANKS * udp_isa::mem::BANK_WORDS;
/// Cap on cost blockers; real certificates carry a handful.
const MAX_BLOCKERS: usize = 65_536;
/// Cap on one blocker's reason string, bytes.
const MAX_REASON: usize = 4_096;

/// Typed decode failures. Every variant names what was being read, so
/// a corrupt artifact produces an actionable message instead of a
/// generic "bad file".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialError {
    /// The buffer ended before `what` could be read.
    Truncated {
        /// The field being decoded when bytes ran out.
        what: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The field the tag belongs to.
        what: &'static str,
        /// The offending tag value.
        tag: u32,
    },
    /// A length prefix exceeded its structural cap (refused before
    /// allocation).
    TooLong {
        /// The vector being sized.
        what: &'static str,
        /// The claimed length.
        len: u64,
        /// The cap it exceeded.
        cap: u64,
    },
    /// Decoding succeeded but bytes remain — a concatenation or
    /// truncation artifact, refused rather than silently ignored.
    Trailing {
        /// Leftover byte count.
        extra: usize,
    },
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::Truncated { what } => {
                write!(f, "truncated image encoding while reading {what}")
            }
            SerialError::BadTag { what, tag } => {
                write!(f, "invalid {what} tag {tag:#x} in image encoding")
            }
            SerialError::TooLong { what, len, cap } => {
                write!(f, "{what} length {len} exceeds the {cap} cap")
            }
            SerialError::Trailing { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete image")
            }
        }
    }
}

impl std::error::Error for SerialError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SerialError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SerialError::Truncated { what })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SerialError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SerialError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SerialError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// A `u32` length prefix, bounds-checked against `cap` *and*
    /// against the bytes actually remaining (each element needs at
    /// least `elem_bytes`), so a hostile length never sizes a Vec.
    fn len(
        &mut self,
        what: &'static str,
        cap: usize,
        elem_bytes: usize,
    ) -> Result<usize, SerialError> {
        let len = self.u32(what)? as usize;
        if len > cap {
            return Err(SerialError::TooLong {
                what,
                len: len as u64,
                cap: cap as u64,
            });
        }
        if len.saturating_mul(elem_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(SerialError::Truncated { what });
        }
        Ok(len)
    }

    fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, SerialError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            tag => Err(SerialError::BadTag {
                what,
                tag: u32::from(tag),
            }),
        }
    }
}

fn put_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn put_opt_u64(v: &mut Vec<u8>, x: Option<u64>) {
    match x {
        None => v.push(0),
        Some(x) => {
            v.push(1);
            put_u64(v, x);
        }
    }
}

fn exec_kind_tag(k: ExecKind) -> u8 {
    match k {
        ExecKind::Consume => 0,
        ExecKind::Flagged => 1,
        ExecKind::Pass => 2,
        ExecKind::Halt => 3,
    }
}

fn exec_kind_from(tag: u8) -> Result<ExecKind, SerialError> {
    match tag {
        0 => Ok(ExecKind::Consume),
        1 => Ok(ExecKind::Flagged),
        2 => Ok(ExecKind::Pass),
        3 => Ok(ExecKind::Halt),
        tag => Err(SerialError::BadTag {
            what: "entry kind",
            tag: u32::from(tag),
        }),
    }
}

fn encode_cert(v: &mut Vec<u8>, cert: &ResourceCert) {
    put_opt_u64(v, cert.max_cycles_per_byte);
    put_u64(v, cert.base_cycles);
    match cert.min_bytes_per_cycle_progress {
        None => v.push(0),
        Some((b, c)) => {
            v.push(1);
            put_u64(v, b);
            put_u64(v, c);
        }
    }
    put_opt_u64(v, cert.max_output_expansion);
    put_u64(v, cert.base_output_bytes);
    put_u32(v, cert.max_loop_nest);
    put_u32(v, cert.fused_span_blocks);
    put_u32(v, cert.fused_bitemit_blocks);
    put_u32(v, cert.unbounded.len() as u32);
    for b in &cert.unbounded {
        v.push(match b.metric {
            CostMetric::Cycles => 0,
            CostMetric::Output => 1,
        });
        match b.addr {
            None => v.push(0),
            Some(a) => {
                v.push(1);
                put_u32(v, a);
            }
        }
        let reason = b.reason.as_bytes();
        let reason = &reason[..reason.len().min(MAX_REASON)];
        put_u32(v, reason.len() as u32);
        v.extend_from_slice(reason);
    }
}

fn decode_cert(r: &mut Reader<'_>) -> Result<ResourceCert, SerialError> {
    let max_cycles_per_byte = r.opt_u64("cert cycle ratio")?;
    let base_cycles = r.u64("cert cycle base")?;
    let min_bytes_per_cycle_progress = match r.u8("cert progress ratio")? {
        0 => None,
        1 => Some((
            r.u64("cert progress bytes")?,
            r.u64("cert progress cycles")?,
        )),
        tag => {
            return Err(SerialError::BadTag {
                what: "cert progress ratio",
                tag: u32::from(tag),
            })
        }
    };
    let max_output_expansion = r.opt_u64("cert output ratio")?;
    let base_output_bytes = r.u64("cert output base")?;
    let max_loop_nest = r.u32("cert loop nest")?;
    let fused_span_blocks = r.u32("cert span blocks")?;
    let fused_bitemit_blocks = r.u32("cert bitemit blocks")?;
    let n = r.len("cert blockers", MAX_BLOCKERS, 7)?;
    let mut unbounded = Vec::with_capacity(n);
    for _ in 0..n {
        let metric = match r.u8("blocker metric")? {
            0 => CostMetric::Cycles,
            1 => CostMetric::Output,
            tag => {
                return Err(SerialError::BadTag {
                    what: "blocker metric",
                    tag: u32::from(tag),
                })
            }
        };
        let addr = match r.u8("blocker addr")? {
            0 => None,
            1 => Some(r.u32("blocker addr")?),
            tag => {
                return Err(SerialError::BadTag {
                    what: "blocker addr",
                    tag: u32::from(tag),
                })
            }
        };
        let rlen = r.len("blocker reason", MAX_REASON, 1)?;
        let reason = String::from_utf8_lossy(r.take(rlen, "blocker reason")?).into_owned();
        unbounded.push(CostBlocker {
            metric,
            addr,
            reason,
        });
    }
    Ok(ResourceCert {
        max_cycles_per_byte,
        base_cycles,
        min_bytes_per_cycle_progress,
        max_output_expansion,
        base_output_bytes,
        max_loop_nest,
        fused_span_blocks,
        fused_bitemit_blocks,
        unbounded,
    })
}

/// Encodes `image` into the canonical byte form. Deterministic: equal
/// images (field-wise) produce equal bytes.
pub fn encode_image(image: &ProgramImage) -> Vec<u8> {
    let mut v = Vec::with_capacity(32 + image.words.len() * 4 + image.state_bases.len() * 4);
    put_u32(&mut v, image.words.len() as u32);
    for &w in &image.words {
        put_u32(&mut v, w);
    }
    put_u32(&mut v, image.entry_base);
    v.push(exec_kind_tag(image.entry_kind));
    v.push(image.init.symbol_bits);
    put_u32(&mut v, image.init.abase);
    v.push(image.init.ascale);
    put_u32(&mut v, image.init.wbase);
    put_u32(&mut v, image.state_bases.len() as u32);
    for &b in &image.state_bases {
        put_u32(&mut v, b);
    }
    put_u64(&mut v, image.stats.span_words as u64);
    put_u64(&mut v, image.stats.words_used as u64);
    put_u64(&mut v, image.stats.n_states as u64);
    put_u64(&mut v, image.stats.n_transition_words as u64);
    put_u64(&mut v, image.stats.n_action_words as u64);
    put_u64(&mut v, image.stats.direct_region_words as u64);
    put_u64(&mut v, image.stats.scaled_region_words as u64);
    v.push(u8::from(image.executable));
    match &image.cert {
        None => v.push(0),
        Some(cert) => {
            v.push(1);
            encode_cert(&mut v, cert);
        }
    }
    v
}

/// Decodes a byte string produced by [`encode_image`]. Total: every
/// input either decodes or returns a typed [`SerialError`].
pub fn decode_image(buf: &[u8]) -> Result<ProgramImage, SerialError> {
    let mut r = Reader { buf, pos: 0 };
    let n_words = r.len("image words", MAX_WORDS, 4)?;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u32("image word")?);
    }
    let entry_base = r.u32("entry base")?;
    let entry_kind = exec_kind_from(r.u8("entry kind")?)?;
    let init = LaneInit {
        symbol_bits: r.u8("init symbol bits")?,
        abase: r.u32("init abase")?,
        ascale: r.u8("init ascale")?,
        wbase: r.u32("init wbase")?,
    };
    let n_bases = r.len("state bases", MAX_WORDS, 4)?;
    let mut state_bases = Vec::with_capacity(n_bases);
    for _ in 0..n_bases {
        state_bases.push(r.u32("state base")?);
    }
    let stats = LayoutStats {
        span_words: r.u64("span words")? as usize,
        words_used: r.u64("words used")? as usize,
        n_states: r.u64("state count")? as usize,
        n_transition_words: r.u64("transition words")? as usize,
        n_action_words: r.u64("action words")? as usize,
        direct_region_words: r.u64("direct region")? as usize,
        scaled_region_words: r.u64("scaled region")? as usize,
    };
    let executable = match r.u8("executable flag")? {
        0 => false,
        1 => true,
        tag => {
            return Err(SerialError::BadTag {
                what: "executable flag",
                tag: u32::from(tag),
            })
        }
    };
    let cert = match r.u8("cert presence")? {
        0 => None,
        1 => Some(decode_cert(&mut r)?),
        tag => {
            return Err(SerialError::BadTag {
                what: "cert presence",
                tag: u32::from(tag),
            })
        }
    };
    if r.pos != buf.len() {
        return Err(SerialError::Trailing {
            extra: buf.len() - r.pos,
        });
    }
    Ok(ProgramImage {
        words,
        entry_base,
        entry_kind,
        init,
        state_bases,
        stats,
        executable,
        cert,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::{Action, Opcode};
    use udp_isa::Reg;

    fn sample() -> ProgramImage {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(
            s,
            b'a' as u16,
            Target::State(s),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'x' as u16)],
        );
        b.fallback_arc(s, Target::Halt, vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    fn assert_images_equal(a: &ProgramImage, b: &ProgramImage) {
        assert_eq!(a.words, b.words);
        assert_eq!(a.entry_base, b.entry_base);
        assert_eq!(a.entry_kind, b.entry_kind);
        assert_eq!(a.init, b.init);
        assert_eq!(a.state_bases, b.state_bases);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.executable, b.executable);
        assert_eq!(a.cert, b.cert);
    }

    #[test]
    fn round_trips_without_cert() {
        let img = sample();
        let bytes = encode_image(&img);
        let back = decode_image(&bytes).unwrap();
        assert_images_equal(&img, &back);
        assert_eq!(bytes, encode_image(&back), "re-encoding must be stable");
    }

    #[test]
    fn round_trips_with_full_cert() {
        let mut img = sample();
        img.cert = Some(ResourceCert {
            max_cycles_per_byte: Some(7),
            base_cycles: 3,
            min_bytes_per_cycle_progress: Some((1, 7)),
            max_output_expansion: None,
            base_output_bytes: 9,
            max_loop_nest: 2,
            fused_span_blocks: 1,
            fused_bitemit_blocks: 0,
            unbounded: vec![CostBlocker {
                metric: CostMetric::Output,
                addr: Some(0x1040),
                reason: "emits without consuming".into(),
            }],
        });
        let back = decode_image(&encode_image(&img)).unwrap();
        assert_images_equal(&img, &back);
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = encode_image(&sample());
        for cut in 0..bytes.len() {
            let err = decode_image(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SerialError::Truncated { .. } | SerialError::Trailing { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_lengths_are_refused_before_allocation() {
        // A words length of u32::MAX must not size a Vec.
        let mut v = Vec::new();
        put_u32(&mut v, u32::MAX);
        assert!(matches!(
            decode_image(&v).unwrap_err(),
            SerialError::TooLong { .. }
        ));
        // A plausible length with no bytes behind it is truncation.
        let mut v = Vec::new();
        put_u32(&mut v, 1000);
        assert!(matches!(
            decode_image(&v).unwrap_err(),
            SerialError::Truncated { .. }
        ));
    }

    #[test]
    fn bad_tags_are_typed() {
        let mut bytes = encode_image(&sample());
        // entry_kind byte sits right after the words vec + entry_base.
        let kind_pos = 4 + sample().words.len() * 4 + 4;
        bytes[kind_pos] = 9;
        assert!(matches!(
            decode_image(&bytes).unwrap_err(),
            SerialError::BadTag {
                what: "entry kind",
                ..
            }
        ));
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut bytes = encode_image(&sample());
        bytes.push(0);
        assert_eq!(
            decode_image(&bytes).unwrap_err(),
            SerialError::Trailing { extra: 1 }
        );
    }
}

//! Assembled program images, layout statistics, and the predecoded
//! execution table the simulator's hot path indexes into.

use udp_isa::action::Action;
use udp_isa::transition::{ExecKind, TransitionWord};
use udp_isa::Word;

/// Per-lane register initialization shipped with a program (performed by
/// the host driver before streaming begins, like vector-register staging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneInit {
    /// Initial symbol-size register value in bits.
    pub symbol_bits: u8,
    /// Action-base register for scaled-offset attach addressing.
    pub abase: u32,
    /// Action-scale register (log2 words per scaled slot).
    pub ascale: u8,
    /// Initial window-base register (restricted addressing).
    pub wbase: u32,
}

/// Code-size and layout statistics — the raw material for the paper's
/// Figure 5c and Figure 8b (code size limits lane parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutStats {
    /// Total extent of the laid-out program in words (including packing
    /// gaps) — the window a lane must own to hold a copy.
    pub span_words: usize,
    /// Words actually written (transitions + actions + reserved slots).
    pub words_used: usize,
    /// Number of IR states placed.
    pub n_states: usize,
    /// Stored transition words.
    pub n_transition_words: usize,
    /// Stored action words.
    pub n_action_words: usize,
    /// Words in the direct (globally shared) attach region.
    pub direct_region_words: usize,
    /// Words in the scaled-offset attach region.
    pub scaled_region_words: usize,
}

impl LayoutStats {
    /// Program size in bytes (span × 4), the metric of Figures 5c / 8b.
    pub fn code_bytes(&self) -> usize {
        self.span_words * 4
    }

    /// How many lanes of a `total_words` memory can each hold a private
    /// copy of this program, capped at 64 (Figure 8b: "code-size limits
    /// parallelism").
    pub fn max_parallelism(&self, total_words: usize) -> usize {
        if self.span_words == 0 {
            return udp_isa::NUM_BANKS;
        }
        (total_words / self.span_words).clamp(0, udp_isa::NUM_BANKS)
    }

    /// Memory utilization: fraction of the span that holds live words.
    pub fn density(&self) -> f64 {
        if self.span_words == 0 {
            return 1.0;
        }
        self.words_used as f64 / self.span_words as f64
    }
}

/// A loadable UDP program.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    /// The memory image, `stats.span_words` long, window-relative.
    pub words: Vec<Word>,
    /// Flat word address of the entry state's base.
    pub entry_base: u32,
    /// How the entry state dispatches first.
    pub entry_kind: ExecKind,
    /// Initial lane register state.
    pub init: LaneInit,
    /// Flat base address of every IR state (diagnostics and tests).
    pub state_bases: Vec<u32>,
    /// Layout statistics.
    pub stats: LayoutStats,
    /// False for size-model-only layouts (UAP attach mode), which may
    /// alias attach fields and must not be executed.
    pub executable: bool,
    /// Static resource certificate, attached by
    /// `udp_verify::assemble_verified` when the cost analysis ran.
    /// Plain `assemble` leaves it `None`; every downstream consumer
    /// (budget derivation, admission, the compiled backend) falls back
    /// to its pre-certificate behavior in that case.
    pub cert: Option<crate::cert::ResourceCert>,
}

impl ProgramImage {
    /// Decodes the whole image once into a [`DecodedProgram`] lookup
    /// table, so a lane can execute without re-decoding the 32-bit
    /// transition/action words on every consumed symbol.
    pub fn predecode(&self) -> DecodedProgram {
        DecodedProgram::from_words(&self.words)
    }
}

/// Decode-once / execute-many representation of a program image.
///
/// Every word offset gets both interpretations decoded up front: the
/// [`TransitionWord`] view (total — every `u32` decodes) and the
/// [`Action`] view (`None` for undecodable action words, which the
/// lane turns into a fault exactly as the lazy path does). The raw
/// words are kept alongside so the table can be *validated* against
/// live memory: restricted/global addressing lets a program write into
/// its own code words, and a lookup whose raw word no longer matches
/// simply misses, sending the lane back to the decode-on-read slow
/// path. Cycle, reference, and conflict accounting are unaffected —
/// this is purely a host-side representation change.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// `(raw word, transition view)` pairs — interleaved so a validated
    /// lookup touches one slot (one bounds check, one cache line).
    transitions: Vec<(Word, TransitionWord)>,
    /// `(raw word, action view)` pairs, same layout.
    actions: Vec<(Word, Option<Action>)>,
}

impl DecodedProgram {
    /// Decodes every word of `words` both ways.
    pub fn from_words(words: &[Word]) -> Self {
        DecodedProgram {
            transitions: words
                .iter()
                .map(|&w| (w, TransitionWord::decode(w)))
                .collect(),
            actions: words.iter().map(|&w| (w, Action::decode(w))).collect(),
        }
    }

    /// Table length in words.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True for an empty table.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The whole `(raw word, transition view)` table, unvalidated — for
    /// callers that already know the live memory words match the image
    /// (pristine code window) and want the slice hoisted into a local
    /// so the hot loop skips the pointer chase.
    #[inline]
    pub fn transitions(&self) -> &[(Word, TransitionWord)] {
        &self.transitions
    }

    /// The `(raw word, action view)` table, unvalidated.
    #[inline]
    pub fn actions(&self) -> &[(Word, Option<Action>)] {
        &self.actions
    }

    /// The predecoded transition at window offset `off`, provided the
    /// live memory word `raw` still matches the image (i.e. the code
    /// word was not overwritten since load).
    #[inline]
    pub fn transition(&self, off: usize, raw: Word) -> Option<TransitionWord> {
        match self.transitions.get(off) {
            Some(&(cached, t)) if cached == raw => Some(t),
            _ => None,
        }
    }

    /// The predecoded action view at window offset `off`, under the
    /// same raw-word validity rule. The outer `Option` is table
    /// applicability; the inner one is decodability (`None` = fault,
    /// as with [`Action::decode`]).
    #[inline]
    #[allow(clippy::option_option)]
    pub fn action(&self, off: usize, raw: Word) -> Option<Option<Action>> {
        match self.actions.get(off) {
            Some(&(cached, a)) if cached == raw => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_is_code_size_limited() {
        let stats = LayoutStats {
            span_words: 8192, // two banks worth
            ..Default::default()
        };
        assert_eq!(stats.max_parallelism(udp_isa::mem::TOTAL_WORDS), 32);
    }

    #[test]
    fn parallelism_caps_at_lane_count() {
        let stats = LayoutStats {
            span_words: 10,
            ..Default::default()
        };
        assert_eq!(stats.max_parallelism(udp_isa::mem::TOTAL_WORDS), 64);
    }

    #[test]
    fn density_of_empty_is_one() {
        assert_eq!(LayoutStats::default().density(), 1.0);
    }
}

//! # udp-asm — the UDP assembler and EffCLiP layout engine
//!
//! This crate is the shared backend of the UDP software stack (paper §4.3,
//! Figure 12). Domain-specific translators (crate `udp-compilers`) build a
//! [`ProgramBuilder`] — a graph of dispatch states, arcs, and action
//! blocks — and this crate turns it into a loadable [`ProgramImage`]:
//!
//! 1. **Transition-type back-propagation**: the `type` nibble stored in
//!    each transition word describes how its *target* dispatches, so the
//!    assembler derives it from the target node and propagates it onto
//!    every incoming arc (paper §3.2.1).
//! 2. **Action-block sharing**: identical blocks are deduplicated, and the
//!    most-referenced blocks are placed in the *direct* attach region for
//!    global sharing while the rest go to the *scaled-offset* region —
//!    the addressing improvement over the UAP that halves some kernels'
//!    code size (Figure 5c). UAP-compatible offset addressing is available
//!    via [`LayoutOptions::uap_attach`] for that comparison.
//! 3. **EffCLiP placement** (Efficient Coupled Linear Packing [55]):
//!    states are packed so that `base + symbol` — a bare integer addition —
//!    is a perfect hash: every *occupied* slot is exclusively owned, and
//!    reads of unowned slots are detected by the signature check.
//!
//! ## Example
//!
//! ```
//! use udp_asm::{ProgramBuilder, Target, LayoutOptions};
//! use udp_isa::action::{Action, Opcode};
//! use udp_isa::Reg;
//!
//! // A one-state loop that emits 'x' every time it sees byte 'a'.
//! let mut b = ProgramBuilder::new();
//! let s = b.add_consuming_state();
//! b.set_entry(s);
//! b.labeled_arc(s, b'a' as u16, Target::State(s),
//!               vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'x' as u16)]);
//! b.fallback_arc(s, Target::State(s), vec![]);
//! let image = b.assemble(&LayoutOptions::default())?;
//! assert!(image.stats.words_used > 0);
//! # Ok::<(), udp_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cert;
pub mod disasm;
pub mod image;
pub mod ir;
pub mod layout;
pub mod serial;
pub mod text;

pub use cert::{CostBlocker, CostMetric, ResourceCert};
pub use disasm::{classify_words, disassemble, WordKind};
pub use image::{DecodedProgram, LaneInit, LayoutStats, ProgramImage};
pub use ir::{Arc, DispatchSource, ProgramBuilder, StateId, StateNode, Target};
pub use layout::{AsmError, LayoutOptions};
pub use serial::{decode_image, encode_image, SerialError, FORMAT_VERSION};
pub use text::{emit_asm, parse_asm, ParseAsmError};

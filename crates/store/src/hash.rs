//! Self-contained digests for the artifact store: SHA-256 for content
//! addressing and whole-file integrity, CRC32 for cheap per-record
//! checksums in the serve journal. Hand-rolled because the build is
//! offline — no external crypto crates — and both algorithms are small,
//! standardized, and easy to test against published vectors.
//!
//! SHA-256 here is used for *content addressing and corruption
//! detection*, not for authentication: an attacker with write access to
//! the store directory is outside the threat model (the store trusts
//! its filesystem the way the simulator trusts its host memory).

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4). Feed bytes with [`Sha256::update`],
/// finish with [`Sha256::finish`].
pub struct Sha256 {
    state: [u32; 8],
    /// Partial block buffer.
    block: [u8; 64],
    /// Bytes currently in `block`.
    fill: usize,
    /// Total message length in bytes.
    len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            block: [0u8; 64],
            fill: 0,
            len: 0,
        }
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256::default()
    }

    fn compress(&mut self) {
        let mut w = [0u32; 64];
        for (i, chunk) in self.block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        while !rest.is_empty() {
            let take = (64 - self.fill).min(rest.len());
            self.block[self.fill..self.fill + take].copy_from_slice(&rest[..take]);
            self.fill += take;
            rest = &rest[take..];
            if self.fill == 64 {
                self.compress();
                self.fill = 0;
            }
        }
    }

    /// Pads and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0]);
        }
        // Length goes straight into the block (update would recount it).
        self.block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.fill = 64;
        self.compress();
        let mut out = [0u8; 32];
        for (chunk, s) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&s.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// per-record checksum of the serve journal. Bitwise (no table): the
/// journal writes records, not gigabytes.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Lowercase hex rendering of a digest.
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('?'));
        s.push(char::from_digit(u32::from(b & 0xF), 16).unwrap_or('?'));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_published_vectors() {
        // FIPS 180-4 / NIST CAVS vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_is_incremental() {
        let data = vec![0xA7u8; 1000];
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), sha256(&data));
    }

    #[test]
    fn crc32_matches_the_check_value() {
        // The classic CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}

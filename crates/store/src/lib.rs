//! # udp-store — durable content-addressed store for verified artifacts
//!
//! The paper's deployment story compiles a UDP program once and
//! dispatches it many times; this crate is the "once" half made
//! durable (DESIGN.md §11). An [`ArtifactStore`] keeps serialized
//! [`ProgramImage`]s — certificate included — on disk, keyed by a
//! SHA-256 over `(kernel source, LayoutOptions, format version)`, so a
//! service restart, a new process, or the AOT corpus pipeline can all
//! reload a verified image instead of re-assembling and re-verifying
//! it.
//!
//! Two disciplines carry over from the rest of the stack:
//!
//! * **Crash-safe writes.** An artifact is written to a temp file in
//!   the store's own `tmp/` directory, fsynced, then atomically
//!   renamed into `objects/` (and the directory fsynced). A crash at
//!   any point leaves either the old artifact, no artifact, or a stray
//!   temp file that [`ArtifactStore::open`] sweeps — never a torn
//!   object visible under its content address.
//! * **Never-panic loads.** Every load runs an integrity ladder:
//!   length → magic/version → SHA-256 checksum → typed deserialization
//!   → full re-verification with certificate re-validation
//!   (`udp_verify::revalidate_artifact`). Any rung failing yields a
//!   typed [`StoreError`], and [`ArtifactStore::get_or_build`] then
//!   walks the recovery rung: re-assemble from source → re-verify →
//!   rewrite the artifact → quarantine the kernel if re-assembly also
//!   fails. Hostile bytes in the store directory cost a rebuild, never
//!   a panic.
//!
//! The store hands out [`Artifact`]s holding `Arc<ProgramImage>` plus
//! the predecoded execution table (`Arc<DecodedProgram>`), so
//! downstream consumers (the serve runtime's kernel registry, the sim
//! pool) share one decode across every wave instead of re-predecoding
//! per run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The store invariant (DESIGN.md §11): corruption surfaces as typed
// errors, never a panic — so no unwrap/expect outside tests.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod hash;

pub use hash::{crc32, sha256, Sha256};

use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use udp_asm::serial::{decode_image, encode_image, FORMAT_VERSION};
use udp_asm::{parse_asm, DecodedProgram, LayoutOptions, ProgramImage};
use udp_isa::mem::BANK_WORDS;
use udp_isa::NUM_BANKS;

/// Artifact file magic.
const MAGIC: [u8; 4] = *b"UDPA";
/// Fixed header bytes before the variable sections: magic + version +
/// key.
const HEADER_BYTES: usize = 4 + 4 + 32;
/// Trailing SHA-256 checksum length.
const TRAILER_BYTES: usize = 32;
/// Cap on the embedded kernel source, bytes (the corpus' largest
/// normal form is a few hundred KB; 16 MB is far past hostile).
const MAX_SOURCE: usize = 16 << 20;

/// Content address of one artifact: SHA-256 over the kernel source,
/// the layout options, and the serialization format version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey([u8; 32]);

impl ArtifactKey {
    /// The raw digest.
    pub fn bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex form — the artifact's file name.
    pub fn hex(&self) -> String {
        hash::hex(&self.0)
    }

    /// Parses the hex form back into a key (journal replay).
    pub fn from_hex(s: &str) -> Option<ArtifactKey> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, b) in out.iter_mut().enumerate() {
            let hi = s.as_bytes()[i * 2];
            let lo = s.as_bytes()[i * 2 + 1];
            let nib = |c: u8| -> Option<u8> {
                match c {
                    b'0'..=b'9' => Some(c - b'0'),
                    b'a'..=b'f' => Some(c - b'a' + 10),
                    _ => None,
                }
            };
            *b = (nib(hi)? << 4) | nib(lo)?;
        }
        Some(ArtifactKey(out))
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// Typed store failures — every rung of the integrity ladder has its
/// own variant so callers (and the chaos harness) can see which rung
/// caught a corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The operation (static description).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// No artifact exists under this key.
    NotFound {
        /// The missing key, hex.
        key: String,
    },
    /// The file does not start with the artifact magic.
    BadMagic {
        /// The offending file.
        path: String,
    },
    /// The artifact was written by a different format version.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build speaks.
        want: u32,
    },
    /// The file is too short to hold the section being read.
    TruncatedFile {
        /// The offending file.
        path: String,
        /// The section that ran out of bytes.
        what: &'static str,
    },
    /// The trailing SHA-256 does not match the file contents.
    Checksum {
        /// The offending file.
        path: String,
    },
    /// The key recorded inside the file differs from the requested one
    /// (a renamed or swapped object).
    KeyMismatch {
        /// The requested key, hex.
        want: String,
        /// The key embedded in the file, hex.
        found: String,
    },
    /// The image section failed typed deserialization.
    Serial {
        /// The decoder's message.
        detail: String,
    },
    /// The decoded image failed re-verification or its certificate
    /// diverged from the recomputed one.
    Revalidate {
        /// The verifier's message.
        detail: String,
    },
    /// The kernel source could not be (re-)assembled into a clean,
    /// verified image.
    SourceRejected {
        /// The parse/assembly/verification message.
        detail: String,
    },
    /// The kernel is quarantined: a previous load failed *and*
    /// re-assembly from source failed too, so the store refuses the
    /// key until an operator releases it.
    Quarantined {
        /// The quarantined key, hex.
        key: String,
        /// Why it was quarantined.
        reason: String,
    },
}

impl StoreError {
    /// Stable kebab-case name of the variant (fuzz stats, logs).
    pub fn name(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "io",
            StoreError::NotFound { .. } => "not-found",
            StoreError::BadMagic { .. } => "bad-magic",
            StoreError::BadVersion { .. } => "bad-version",
            StoreError::TruncatedFile { .. } => "truncated-file",
            StoreError::Checksum { .. } => "checksum",
            StoreError::KeyMismatch { .. } => "key-mismatch",
            StoreError::Serial { .. } => "serial",
            StoreError::Revalidate { .. } => "revalidate",
            StoreError::SourceRejected { .. } => "source-rejected",
            StoreError::Quarantined { .. } => "quarantined",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, detail } => write!(f, "{op} {path}: {detail}"),
            StoreError::NotFound { key } => write!(f, "no artifact for key {key}"),
            StoreError::BadMagic { path } => write!(f, "{path}: not an artifact (bad magic)"),
            StoreError::BadVersion { found, want } => {
                write!(
                    f,
                    "artifact format version {found}, this build wants {want}"
                )
            }
            StoreError::TruncatedFile { path, what } => {
                write!(f, "{path}: truncated while reading {what}")
            }
            StoreError::Checksum { path } => write!(f, "{path}: checksum mismatch"),
            StoreError::KeyMismatch { want, found } => {
                write!(f, "artifact key mismatch: wanted {want}, file says {found}")
            }
            StoreError::Serial { detail } => write!(f, "image deserialization failed: {detail}"),
            StoreError::Revalidate { detail } => write!(f, "re-validation failed: {detail}"),
            StoreError::SourceRejected { detail } => {
                write!(f, "kernel source rejected: {detail}")
            }
            StoreError::Quarantined { key, reason } => {
                write!(f, "kernel {key} is quarantined: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// How [`ArtifactStore::get_or_build`] satisfied a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// Loaded intact from disk; nothing was assembled or verified
    /// beyond the load-time re-validation.
    Hit,
    /// No artifact existed; built from source and persisted.
    Built,
    /// An artifact existed but failed the integrity ladder; rebuilt
    /// from source and rewritten. The typed reason is kept for
    /// diagnostics and the chaos harness.
    Rebuilt {
        /// The load error that triggered the recovery rung.
        why: Box<StoreError>,
    },
}

impl LoadOutcome {
    /// Stable kebab-case name (logs, AOT summaries).
    pub fn name(&self) -> &'static str {
        match self {
            LoadOutcome::Hit => "hit",
            LoadOutcome::Built => "built",
            LoadOutcome::Rebuilt { .. } => "rebuilt",
        }
    }
}

/// A store-served kernel: the verified image, its predecoded execution
/// table, and enough provenance (source + layout) to journal a service
/// registration and rebuild after any future corruption.
#[derive(Clone)]
pub struct Artifact {
    /// Content address.
    pub key: ArtifactKey,
    /// The verified image, certificate attached.
    pub image: Arc<ProgramImage>,
    /// Decode-once table shared by every run of this image.
    pub decoded: Arc<DecodedProgram>,
    /// Smallest bank split whose window holds the image.
    pub banks_per_lane: usize,
    /// The kernel source (canonical `udp-asm` text form).
    pub source: String,
    /// The layout the source was assembled under.
    pub layout: LayoutOptions,
    /// How this request was satisfied.
    pub outcome: LoadOutcome,
}

/// The content-addressed on-disk artifact store.
///
/// Directory layout under the root:
///
/// ```text
/// objects/<key-hex>      one artifact per verified kernel
/// tmp/                   in-flight writes (swept at open)
/// quarantine/<key-hex>   marker files: keys whose recovery rung failed
/// ```
pub struct ArtifactStore {
    root: PathBuf,
    sync: bool,
    quarantined: Mutex<HashMap<String, String>>,
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn put_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}

/// Canonical byte form of the layout options — hashed into the key and
/// stored in the artifact so a strict load can reconstruct it.
fn layout_bytes(layout: &LayoutOptions) -> Vec<u8> {
    let mut v = Vec::with_capacity(11);
    v.extend_from_slice(&(layout.window_words as u64).to_le_bytes());
    v.push(u8::from(layout.share_actions));
    v.push(u8::from(layout.uap_attach));
    v.push(u8::from(layout.self_check));
    v
}

fn layout_from_bytes(b: &[u8]) -> Option<LayoutOptions> {
    if b.len() != 11 {
        return None;
    }
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[..8]);
    Some(LayoutOptions {
        window_words: u64::from_le_bytes(w) as usize,
        share_actions: b[8] != 0,
        uap_attach: b[9] != 0,
        self_check: b[10] != 0,
    })
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`, with
    /// fsync-on-write enabled. Sweeps stray temp files from interrupted
    /// writes and loads the quarantine markers.
    pub fn open(root: impl AsRef<Path>) -> Result<ArtifactStore, StoreError> {
        Self::open_with(root, true)
    }

    /// [`ArtifactStore::open`] with explicit control over fsync (tests
    /// that churn hundreds of stores can turn it off; production
    /// callers should not).
    pub fn open_with(root: impl AsRef<Path>, sync: bool) -> Result<ArtifactStore, StoreError> {
        let root = root.as_ref().to_path_buf();
        for sub in ["objects", "tmp", "quarantine"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, &e))?;
        }
        // Sweep torn writes: anything still in tmp/ never made it to
        // its atomic rename, so it is garbage by construction.
        let tmp = root.join("tmp");
        if let Ok(entries) = std::fs::read_dir(&tmp) {
            for entry in entries.flatten() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        // Quarantine markers: file name is the key hex, contents the
        // reason. Unreadable markers quarantine with a generic reason —
        // fail safe, not open.
        let mut quarantined = HashMap::new();
        let qdir = root.join("quarantine");
        if let Ok(entries) = std::fs::read_dir(&qdir) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    let reason = std::fs::read_to_string(entry.path())
                        .unwrap_or_else(|_| "unreadable quarantine marker".to_string());
                    quarantined.insert(name.to_string(), reason);
                }
            }
        }
        Ok(ArtifactStore {
            root,
            sync,
            quarantined: Mutex::new(quarantined),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path an artifact for `key` lives at (the chaos
    /// harness corrupts files through this).
    pub fn artifact_path(&self, key: &ArtifactKey) -> PathBuf {
        self.root.join("objects").join(key.hex())
    }

    fn lock_quarantine(&self) -> MutexGuard<'_, HashMap<String, String>> {
        self.quarantined
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The content address for `(source, layout)` under the current
    /// format version.
    pub fn key_for(source: &str, layout: &LayoutOptions) -> ArtifactKey {
        let mut h = Sha256::new();
        h.update(b"udp-artifact\x00");
        h.update(&FORMAT_VERSION.to_le_bytes());
        h.update(&layout_bytes(layout));
        h.update(source.as_bytes());
        ArtifactKey(h.finish())
    }

    /// True when an object file exists for `key` (no integrity check).
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.artifact_path(key).exists()
    }

    /// The quarantine reason for `key`, if it is quarantined.
    pub fn is_quarantined(&self, key: &ArtifactKey) -> Option<String> {
        self.lock_quarantine().get(&key.hex()).cloned()
    }

    /// Quarantines `key`: future `get_or_build`/`load` calls refuse it
    /// with [`StoreError::Quarantined`] until released. The marker is
    /// persisted best-effort (an unwritable marker still quarantines
    /// for this process's lifetime).
    pub fn quarantine(&self, key: &ArtifactKey, reason: &str) {
        let hex = key.hex();
        let marker = self.root.join("quarantine").join(&hex);
        let _ = std::fs::write(&marker, reason);
        self.lock_quarantine().insert(hex, reason.to_string());
    }

    /// Lifts `key`'s quarantine (operator action after the kernel
    /// source is fixed).
    pub fn release_quarantine(&self, key: &ArtifactKey) {
        let hex = key.hex();
        let _ = std::fs::remove_file(self.root.join("quarantine").join(&hex));
        self.lock_quarantine().remove(&hex);
    }

    /// Strict load: reads, integrity-checks, and re-validates the
    /// artifact for `key`. No recovery — any rung failing is the typed
    /// error, which [`ArtifactStore::get_or_build`] turns into a
    /// rebuild when it has the source at hand.
    pub fn load(&self, key: &ArtifactKey) -> Result<Artifact, StoreError> {
        if let Some(reason) = self.is_quarantined(key) {
            return Err(StoreError::Quarantined {
                key: key.hex(),
                reason,
            });
        }
        let path = self.artifact_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound { key: key.hex() })
            }
            Err(e) => return Err(io_err("read", &path, &e)),
        };
        let pathstr = path.display().to_string();
        // Rung 1: length — the file must hold header + trailer at all.
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(StoreError::TruncatedFile {
                path: pathstr,
                what: "header",
            });
        }
        // Rung 2: magic and format version.
        if bytes[..4] != MAGIC {
            return Err(StoreError::BadMagic { path: pathstr });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != FORMAT_VERSION {
            return Err(StoreError::BadVersion {
                found: version,
                want: FORMAT_VERSION,
            });
        }
        // Rung 3: whole-file checksum. Everything after this rung can
        // trust the bytes are the ones the writer hashed.
        let body_end = bytes.len() - TRAILER_BYTES;
        if sha256(&bytes[..body_end])[..] != bytes[body_end..] {
            return Err(StoreError::Checksum { path: pathstr });
        }
        // Rung 4: the embedded key must be the requested one.
        let mut file_key = [0u8; 32];
        file_key.copy_from_slice(&bytes[8..40]);
        if file_key != key.0 {
            return Err(StoreError::KeyMismatch {
                want: key.hex(),
                found: hash::hex(&file_key),
            });
        }
        // Sections: layout, source, image — each length-prefixed.
        let body = &bytes[HEADER_BYTES..body_end];
        let mut pos = 0usize;
        let mut section = |what: &'static str, cap: usize| -> Result<&[u8], StoreError> {
            if body.len() - pos < 4 {
                return Err(StoreError::TruncatedFile {
                    path: path.display().to_string(),
                    what,
                });
            }
            let len = u32::from_le_bytes([body[pos], body[pos + 1], body[pos + 2], body[pos + 3]])
                as usize;
            pos += 4;
            if len > cap || len > body.len() - pos {
                return Err(StoreError::TruncatedFile {
                    path: path.display().to_string(),
                    what,
                });
            }
            let s = &body[pos..pos + len];
            pos += len;
            Ok(s)
        };
        let layout = layout_from_bytes(section("layout options", 64)?).ok_or_else(|| {
            StoreError::TruncatedFile {
                path: path.display().to_string(),
                what: "layout options",
            }
        })?;
        let source = String::from_utf8_lossy(section("kernel source", MAX_SOURCE)?).into_owned();
        let image_bytes = section("image", usize::MAX)?;
        if pos != body.len() {
            return Err(StoreError::TruncatedFile {
                path: path.display().to_string(),
                what: "trailing section bytes",
            });
        }
        // Rung 5: typed deserialization.
        let image = decode_image(image_bytes).map_err(|e| StoreError::Serial {
            detail: e.to_string(),
        })?;
        let span = image.stats.span_words;
        if span > NUM_BANKS * BANK_WORDS || span < image.words.len() {
            return Err(StoreError::Serial {
                detail: format!(
                    "span {span} words is inconsistent ({} image words)",
                    image.words.len()
                ),
            });
        }
        let banks_per_lane = span.div_ceil(BANK_WORDS).clamp(1, NUM_BANKS);
        // Rung 6: full re-verification + certificate re-validation
        // against the decoded graph.
        udp_verify::revalidate_artifact(
            &image,
            &udp_verify::VerifyOptions::with_banks(banks_per_lane),
        )
        .map_err(|e| StoreError::Revalidate {
            detail: e.to_string(),
        })?;
        let decoded = Arc::new(image.predecode());
        Ok(Artifact {
            key: *key,
            image: Arc::new(image),
            decoded,
            banks_per_lane,
            source,
            layout,
            outcome: LoadOutcome::Hit,
        })
    }

    /// The workhorse: returns the verified artifact for
    /// `(source, layout)`, loading it from disk when intact, building
    /// and persisting it when absent, and walking the recovery rung —
    /// re-assemble → re-verify → rewrite → quarantine — when the
    /// on-disk copy fails any integrity check. Never panics; every
    /// failure is a typed [`StoreError`].
    pub fn get_or_build(
        &self,
        source: &str,
        layout: &LayoutOptions,
    ) -> Result<Artifact, StoreError> {
        let key = Self::key_for(source, layout);
        if let Some(reason) = self.is_quarantined(&key) {
            return Err(StoreError::Quarantined {
                key: key.hex(),
                reason,
            });
        }
        let why = match self.load(&key) {
            Ok(artifact) => return Ok(artifact), // outcome already Hit
            Err(StoreError::NotFound { .. }) => None,
            Err(e) => Some(e),
        };
        // Recovery rung (or first build): re-assemble from source.
        match self.build_from_source(source, layout) {
            Ok((image, banks_per_lane)) => {
                self.write_artifact(&key, source, layout, &image)?;
                let decoded = Arc::new(image.predecode());
                Ok(Artifact {
                    key,
                    image: Arc::new(image),
                    decoded,
                    banks_per_lane,
                    source: source.to_string(),
                    layout: layout.clone(),
                    outcome: match why {
                        None => LoadOutcome::Built,
                        Some(e) => LoadOutcome::Rebuilt { why: Box::new(e) },
                    },
                })
            }
            Err(build_err) => match why {
                // A corrupt artifact *and* a source that no longer
                // assembles: quarantine the kernel so the service
                // refuses it fast instead of rebuilding forever.
                Some(load_err) => {
                    let reason =
                        format!("load failed ({load_err}); re-assembly failed ({build_err})");
                    self.quarantine(&key, &reason);
                    Err(StoreError::Quarantined {
                        key: key.hex(),
                        reason,
                    })
                }
                // Nothing on disk: a plain bad source is just refused.
                None => Err(build_err),
            },
        }
    }

    /// Parse → assemble → verify → attach the certificate. The one
    /// path every image takes into the store.
    fn build_from_source(
        &self,
        source: &str,
        layout: &LayoutOptions,
    ) -> Result<(ProgramImage, usize), StoreError> {
        let builder = parse_asm(source).map_err(|e| StoreError::SourceRejected {
            detail: format!("parse: {e}"),
        })?;
        let mut image = builder
            .assemble(layout)
            .map_err(|e| StoreError::SourceRejected {
                detail: format!("assemble: {e}"),
            })?;
        if !image.executable {
            return Err(StoreError::SourceRejected {
                detail: "size-model-only layouts (uap_attach) cannot be stored".into(),
            });
        }
        let span = image.stats.span_words;
        if span > NUM_BANKS * BANK_WORDS {
            return Err(StoreError::SourceRejected {
                detail: format!("span {span} words exceeds the device"),
            });
        }
        let banks_per_lane = span.div_ceil(BANK_WORDS).clamp(1, NUM_BANKS);
        let report = udp_verify::verify_image(
            &image,
            &udp_verify::VerifyOptions::with_banks(banks_per_lane),
        );
        if !report.is_clean() {
            return Err(StoreError::SourceRejected {
                detail: format!("verification: {report}"),
            });
        }
        image.cert = report.cert;
        Ok((image, banks_per_lane))
    }

    /// Crash-safe write: temp file in `tmp/` → flush → fsync → atomic
    /// rename into `objects/` → fsync the directory.
    fn write_artifact(
        &self,
        key: &ArtifactKey,
        source: &str,
        layout: &LayoutOptions,
        image: &ProgramImage,
    ) -> Result<(), StoreError> {
        let image_bytes = encode_image(image);
        let lay = layout_bytes(layout);
        let mut body = Vec::with_capacity(
            HEADER_BYTES + 12 + lay.len() + source.len() + image_bytes.len() + TRAILER_BYTES,
        );
        body.extend_from_slice(&MAGIC);
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&key.0);
        put_u32(&mut body, lay.len() as u32);
        body.extend_from_slice(&lay);
        put_u32(&mut body, source.len() as u32);
        body.extend_from_slice(source.as_bytes());
        put_u32(&mut body, image_bytes.len() as u32);
        body.extend_from_slice(&image_bytes);
        let digest = sha256(&body);
        body.extend_from_slice(&digest);

        let tmp_path =
            self.root
                .join("tmp")
                .join(format!("{}.{:x}", key.hex(), std::process::id()));
        let mut f =
            std::fs::File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, &e))?;
        f.write_all(&body)
            .and_then(|()| f.flush())
            .map_err(|e| io_err("write", &tmp_path, &e))?;
        if self.sync {
            f.sync_all().map_err(|e| io_err("fsync", &tmp_path, &e))?;
        }
        drop(f);
        let final_path = self.artifact_path(key);
        std::fs::rename(&tmp_path, &final_path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp_path);
            io_err("rename", &final_path, &e)
        })?;
        if self.sync {
            // Persist the rename itself: fsync the objects directory.
            if let Ok(dir) = std::fs::File::open(self.root.join("objects")) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::{emit_asm, ProgramBuilder, Target};
    use udp_isa::action::{Action, Opcode};
    use udp_isa::Reg;

    fn sample_source() -> String {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(
            s,
            b'a' as u16,
            Target::State(s),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'x' as u16)],
        );
        b.fallback_arc(s, Target::Halt, vec![]);
        emit_asm(&b)
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "udp-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn build_then_hit_round_trips_bytes() {
        let root = temp_root("roundtrip");
        let store = ArtifactStore::open_with(&root, false).unwrap();
        let src = sample_source();
        let layout = LayoutOptions::default();

        let built = store.get_or_build(&src, &layout).unwrap();
        assert_eq!(built.outcome, LoadOutcome::Built);
        assert!(built.image.cert.is_some(), "store must attach the cert");

        let hit = store.get_or_build(&src, &layout).unwrap();
        assert_eq!(hit.outcome, LoadOutcome::Hit);
        assert_eq!(
            encode_image(&built.image),
            encode_image(&hit.image),
            "reloaded artifact must be byte-identical"
        );
        assert_eq!(hit.source, src);
        assert_eq!(hit.layout, layout);
        assert_eq!(hit.banks_per_lane, built.banks_per_lane);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_is_typed_and_recovered() {
        let root = temp_root("corrupt");
        let store = ArtifactStore::open_with(&root, false).unwrap();
        let src = sample_source();
        let layout = LayoutOptions::default();
        let built = store.get_or_build(&src, &layout).unwrap();
        let path = store.artifact_path(&built.key);

        // Flip a byte in the image body: checksum rung catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(&built.key),
            Err(StoreError::Checksum { .. })
        ));

        // get_or_build walks the recovery rung and rewrites.
        let rebuilt = store.get_or_build(&src, &layout).unwrap();
        assert!(matches!(rebuilt.outcome, LoadOutcome::Rebuilt { .. }));
        assert_eq!(encode_image(&rebuilt.image), encode_image(&built.image));
        // And the rewritten artifact loads strictly again.
        assert!(store.load(&built.key).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncation_and_magic_rungs_are_typed() {
        let root = temp_root("trunc");
        let store = ArtifactStore::open_with(&root, false).unwrap();
        let src = sample_source();
        let layout = LayoutOptions::default();
        let built = store.get_or_build(&src, &layout).unwrap();
        let path = store.artifact_path(&built.key);
        let full = std::fs::read(&path).unwrap();

        std::fs::write(&path, &full[..10]).unwrap();
        assert!(matches!(
            store.load(&built.key),
            Err(StoreError::TruncatedFile { .. })
        ));

        std::fs::write(&path, &full[..full.len() - 1]).unwrap();
        assert!(matches!(
            store.load(&built.key),
            Err(StoreError::Checksum { .. })
        ));

        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            store.load(&built.key),
            Err(StoreError::BadMagic { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tampered_cert_is_caught_by_revalidation() {
        let root = temp_root("cert");
        let store = ArtifactStore::open_with(&root, false).unwrap();
        let src = sample_source();
        let layout = LayoutOptions::default();
        let built = store.get_or_build(&src, &layout).unwrap();

        // Re-encode the artifact with a loosened certificate and a
        // *valid* outer checksum — only cert re-validation can catch it.
        let mut image = (*built.image).clone();
        if let Some(cert) = &mut image.cert {
            cert.base_cycles = cert.base_cycles.wrapping_add(10);
        }
        store
            .write_artifact(&built.key, &src, &layout, &image)
            .unwrap();
        assert!(matches!(
            store.load(&built.key),
            Err(StoreError::Revalidate { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unassemblable_source_after_corruption_quarantines() {
        let root = temp_root("quarantine");
        let store = ArtifactStore::open_with(&root, false).unwrap();
        let bogus = "this is not a udp program";
        let layout = LayoutOptions::default();
        let key = ArtifactStore::key_for(bogus, &layout);

        // Plant a corrupt artifact at the bogus key, so the load fails
        // and the recovery rung must try (and fail) to re-assemble.
        std::fs::write(store.artifact_path(&key), b"garbage").unwrap();
        match store.get_or_build(bogus, &layout) {
            Err(StoreError::Quarantined { reason, .. }) => {
                assert!(reason.contains("re-assembly failed"), "{reason}");
            }
            Ok(a) => panic!("expected quarantine, got outcome {:?}", a.outcome),
            Err(e) => panic!("expected quarantine, got {e:?}"),
        }
        // Subsequent calls refuse fast.
        assert!(matches!(
            store.get_or_build(bogus, &layout),
            Err(StoreError::Quarantined { .. })
        ));
        // The marker survives a store reopen.
        drop(store);
        let store = ArtifactStore::open_with(&root, false).unwrap();
        assert!(store.is_quarantined(&key).is_some());
        store.release_quarantine(&key);
        assert!(store.is_quarantined(&key).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tmp_files_are_swept_at_open() {
        let root = temp_root("torn");
        {
            let store = ArtifactStore::open_with(&root, false).unwrap();
            let _ = store; // dirs exist now
        }
        let stray = root.join("tmp").join("deadbeef.1234");
        std::fs::write(&stray, b"half a write").unwrap();
        let _store = ArtifactStore::open_with(&root, false).unwrap();
        assert!(!stray.exists(), "open must sweep torn writes");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn key_is_sensitive_to_source_layout_and_hexes_round_trip() {
        let a = ArtifactStore::key_for("x", &LayoutOptions::default());
        let b = ArtifactStore::key_for("y", &LayoutOptions::default());
        let c = ArtifactStore::key_for("x", &LayoutOptions::with_banks(2));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(ArtifactKey::from_hex(&a.hex()), Some(a));
        assert_eq!(ArtifactKey::from_hex("zz"), None);
    }
}

//! The ADFA multi-pattern string automaton (Aho–Corasick).
//!
//! The paper's UDP pattern-matching code "uses ADFA [66] and NFA [62]
//! models" (§4.1): the aggregated-DFA form for literal signature sets.
//! An Aho–Corasick automaton is the canonical such structure — its goto
//! edges become UDP *labeled* transitions and its failure links collapse
//! into *default* transitions, which is precisely the compression the
//! multi-way dispatch fallback slot provides.

use std::collections::HashMap;

/// One ADFA node.
#[derive(Debug, Clone, Default)]
pub struct AdfaNode {
    /// Goto edges (trie edges).
    pub goto: HashMap<u8, u32>,
    /// Failure link (0 = root).
    pub fail: u32,
    /// Pattern ids ending here (including via suffix links).
    pub outputs: Vec<u16>,
    /// Depth in the trie (diagnostics).
    pub depth: u32,
}

/// An Aho–Corasick automaton over byte-string patterns.
#[derive(Debug, Clone)]
pub struct Adfa {
    nodes: Vec<AdfaNode>,
}

impl Adfa {
    /// Builds the automaton from literal patterns; pattern `i` reports
    /// id `i`.
    ///
    /// ```
    /// use udp_automata::Adfa;
    /// let adfa = Adfa::build(&[b"he".as_slice(), b"she"]);
    /// assert!(adfa.find_all(b"ushers").contains(&(1, 4)));
    /// ```
    pub fn build<P: AsRef<[u8]>>(patterns: &[P]) -> Adfa {
        let mut nodes = vec![AdfaNode::default()]; // root
                                                   // Trie phase.
        for (id, p) in patterns.iter().enumerate() {
            let mut cur = 0u32;
            for &b in p.as_ref() {
                let next = match nodes[cur as usize].goto.get(&b) {
                    Some(&n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        let depth = nodes[cur as usize].depth + 1;
                        nodes.push(AdfaNode {
                            depth,
                            ..Default::default()
                        });
                        nodes[cur as usize].goto.insert(b, n);
                        n
                    }
                };
                cur = next;
            }
            nodes[cur as usize].outputs.push(id as u16);
        }
        // Failure-link phase (BFS).
        let mut queue: std::collections::VecDeque<u32> = nodes[0].goto.values().copied().collect();
        while let Some(u) = queue.pop_front() {
            let edges: Vec<(u8, u32)> = nodes[u as usize]
                .goto
                .iter()
                .map(|(&b, &v)| (b, v))
                .collect();
            for (b, v) in edges {
                queue.push_back(v);
                // Follow fail links of u until a goto on b exists.
                let mut f = nodes[u as usize].fail;
                let fail_v = loop {
                    if let Some(&w) = nodes[f as usize].goto.get(&b) {
                        if w != v {
                            break w;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[v as usize].fail = fail_v;
                let inherited = nodes[fail_v as usize].outputs.clone();
                nodes[v as usize].outputs.extend(inherited);
                nodes[v as usize].outputs.sort_unstable();
                nodes[v as usize].outputs.dedup();
            }
        }
        Adfa { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Node access (UDP compiler input).
    pub fn node(&self, id: u32) -> &AdfaNode {
        &self.nodes[id as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[AdfaNode] {
        &self.nodes
    }

    /// Resolved transition: goto, else follow failure links.
    pub fn next(&self, mut state: u32, b: u8) -> u32 {
        loop {
            if let Some(&n) = self.nodes[state as usize].goto.get(&b) {
                return n;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }

    /// Scans `input`, returning `(pattern, end_position)` matches.
    pub fn find_all(&self, input: &[u8]) -> Vec<(u16, usize)> {
        let mut out = Vec::new();
        let mut s = 0u32;
        for (i, &b) in input.iter().enumerate() {
            s = self.next(s, b);
            for &id in &self.nodes[s as usize].outputs {
                out.push((id, i + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_he_she_his_hers() {
        let a = Adfa::build(&[b"he".as_slice(), b"she", b"his", b"hers"]);
        let m = a.find_all(b"ushers");
        assert!(m.contains(&(1, 4)), "she ends at 4: {m:?}");
        assert!(m.contains(&(0, 4)), "he ends at 4");
        assert!(m.contains(&(3, 6)), "hers ends at 6");
    }

    #[test]
    fn overlapping_occurrences() {
        let a = Adfa::build(&[b"aa".as_slice()]);
        let m = a.find_all(b"aaaa");
        assert_eq!(m, vec![(0, 2), (0, 3), (0, 4)]);
    }

    #[test]
    fn no_match() {
        let a = Adfa::build(&[b"xyz".as_slice()]);
        assert!(a.find_all(b"abcabc").is_empty());
    }

    #[test]
    fn suffix_outputs_inherited() {
        let a = Adfa::build(&[b"bc".as_slice(), b"abcd"]);
        let m = a.find_all(b"abcd");
        assert!(m.contains(&(0, 3)));
        assert!(m.contains(&(1, 4)));
    }

    #[test]
    fn node_count_is_trie_size() {
        let a = Adfa::build(&[b"ab".as_slice(), b"ac"]);
        // root, a, ab, ac
        assert_eq!(a.len(), 4);
    }
}

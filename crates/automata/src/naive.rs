//! A deliberately simple backtracking matcher used as a property-test
//! oracle for the NFA/DFA engines. Exponential in the worst case — only
//! run it on small inputs.

use crate::regex::Regex;

/// All end offsets (relative to `input`'s start) at which `r` matches a
/// prefix of `input`.
pub fn match_prefix_ends(r: &Regex, input: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    go(r, input, 0, &mut |e| ends.push(e));
    ends.sort_unstable();
    ends.dedup();
    ends
}

/// All `(start, end)` spans where `r` matches exactly `input[start..end]`.
pub fn find_all_spans(r: &Regex, input: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for start in 0..=input.len() {
        for e in match_prefix_ends(r, &input[start..]) {
            spans.push((start, start + e));
        }
    }
    spans.sort_unstable();
    spans.dedup();
    spans
}

fn go(r: &Regex, input: &[u8], pos: usize, emit: &mut dyn FnMut(usize)) {
    match r {
        Regex::Empty => emit(pos),
        Regex::Class(set) => {
            if pos < input.len() && set.contains(input[pos]) {
                emit(pos + 1);
            }
        }
        Regex::Concat(items) => concat_go(items, input, pos, emit),
        Regex::Alt(branches) => {
            for b in branches {
                go(b, input, pos, emit);
            }
        }
        Regex::Star(inner) => star_go(inner, input, pos, emit, true),
        Regex::Plus(inner) => {
            // one, then star
            let mut mids = Vec::new();
            go(inner, input, pos, &mut |e| mids.push(e));
            mids.sort_unstable();
            mids.dedup();
            for m in mids {
                star_go(inner, input, m, emit, true);
            }
        }
        Regex::Opt(inner) => {
            emit(pos);
            go(inner, input, pos, emit);
        }
    }
}

fn concat_go(items: &[Regex], input: &[u8], pos: usize, emit: &mut dyn FnMut(usize)) {
    match items.split_first() {
        None => emit(pos),
        Some((head, rest)) => {
            let mut mids = Vec::new();
            go(head, input, pos, &mut |e| mids.push(e));
            mids.sort_unstable();
            mids.dedup();
            for m in mids {
                concat_go(rest, input, m, emit);
            }
        }
    }
}

fn star_go(inner: &Regex, input: &[u8], pos: usize, emit: &mut dyn FnMut(usize), first: bool) {
    if first {
        emit(pos);
    }
    let mut mids = Vec::new();
    go(inner, input, pos, &mut |e| mids.push(e));
    mids.sort_unstable();
    mids.dedup();
    for m in mids {
        if m > pos {
            emit(m);
            star_go(inner, input, m, emit, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::nfa::Nfa;
    use proptest::prelude::*;

    #[test]
    fn prefix_ends_of_star() {
        let r = Regex::parse("ab*").unwrap();
        assert_eq!(match_prefix_ends(&r, b"abbbc"), vec![1, 2, 3, 4]);
    }

    #[test]
    fn spans_of_literal() {
        let r = Regex::parse("aa").unwrap();
        assert_eq!(find_all_spans(&r, b"aaa"), vec![(0, 2), (1, 3)]);
    }

    /// Random patterns from a small grammar.
    fn arb_regex() -> impl Strategy<Value = String> {
        let atom = prop_oneof![
            "[abc]".prop_map(|s| s),
            Just("a".to_string()),
            Just("b".to_string()),
            Just("(a|b)".to_string()),
            Just(".".to_string()),
        ];
        proptest::collection::vec(
            (atom, prop_oneof![Just(""), Just("*"), Just("+"), Just("?")]),
            1..5,
        )
        .prop_map(|parts| {
            parts
                .into_iter()
                .map(|(a, q)| format!("{a}{q}"))
                .collect::<String>()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_nfa_and_dfa_agree_with_oracle(pattern in arb_regex(),
                                              input in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12)) {
            let ast = Regex::parse(&pattern).unwrap();
            let oracle: std::collections::BTreeSet<usize> =
                find_all_spans(&ast, &input).into_iter().map(|(_, e)| e).collect();

            let nfa = Nfa::scanner(std::slice::from_ref(&ast));
            let nfa_ends: std::collections::BTreeSet<usize> =
                nfa.find_all(&input).into_iter().map(|(_, e)| e).collect();
            prop_assert_eq!(&oracle, &nfa_ends, "pattern {} input {:?}", pattern, input);

            let dfa = Dfa::determinize(&nfa).minimize();
            let dfa_ends: std::collections::BTreeSet<usize> =
                dfa.find_all(&input).into_iter().map(|(_, e)| e).collect();
            prop_assert_eq!(&oracle, &dfa_ends);
        }
    }
}

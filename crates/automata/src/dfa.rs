//! Subset-construction DFA, Moore minimization, and table-driven scanning.
//!
//! The dense 256-way transition table is exactly the representation the
//! paper's CPU pattern-matching baseline uses ("pattern matching avoids
//! branches by lookup tables but suffers from poor data locality",
//! Table 2), and it maps one-to-one onto UDP labeled transitions.

use crate::nfa::Nfa;
use std::collections::HashMap;

/// Dead-state marker in the transition table.
pub const DEAD: u32 = u32::MAX;

/// A deterministic finite automaton over bytes.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `trans[state * 256 + byte]` → next state or [`DEAD`].
    trans: Vec<u32>,
    /// Sorted pattern ids accepted at each state.
    accepts: Vec<Vec<u16>>,
    /// Start state.
    start: u32,
}

impl Dfa {
    /// Subset construction from an NFA.
    pub fn determinize(nfa: &Nfa) -> Dfa {
        let mut start_set = vec![nfa.start];
        nfa.closure(&mut start_set);

        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut sets: Vec<Vec<u32>> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        let mut accepts: Vec<Vec<u16>> = Vec::new();

        let mut intern = |set: Vec<u32>,
                          sets: &mut Vec<Vec<u32>>,
                          trans: &mut Vec<u32>,
                          accepts: &mut Vec<Vec<u16>>|
         -> u32 {
            if let Some(&id) = ids.get(&set) {
                return id;
            }
            let id = sets.len() as u32;
            ids.insert(set.clone(), id);
            trans.extend(std::iter::repeat_n(DEAD, 256));
            accepts.push(Vec::new());
            sets.push(set);
            id
        };

        let start = intern(start_set, &mut sets, &mut trans, &mut accepts);
        let mut work = vec![start];
        while let Some(d) = work.pop() {
            let set = sets[d as usize].clone();
            // Accepts of the subset.
            let mut acc: Vec<u16> = set
                .iter()
                .filter_map(|&s| nfa.states[s as usize].accept)
                .collect();
            acc.sort_unstable();
            acc.dedup();
            accepts[d as usize] = acc;
            // Successors per byte.
            for b in 0u16..256 {
                let mut next: Vec<u32> = Vec::new();
                for &s in &set {
                    if let Some((ref class, t)) = nfa.states[s as usize].byte {
                        if class.contains(b as u8) {
                            next.push(t);
                        }
                    }
                }
                if next.is_empty() {
                    continue;
                }
                nfa.closure(&mut next);
                let before = sets.len();
                let id = intern(next, &mut sets, &mut trans, &mut accepts);
                if sets.len() > before {
                    work.push(id);
                }
                trans[d as usize * 256 + b as usize] = id;
            }
        }

        Dfa {
            trans,
            accepts,
            start,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.accepts.len()
    }

    /// True when the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.accepts.is_empty()
    }

    /// Start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Transition function; [`DEAD`] when undefined.
    pub fn next(&self, state: u32, byte: u8) -> u32 {
        self.trans[state as usize * 256 + byte as usize]
    }

    /// Pattern ids accepted at `state`.
    pub fn accepts(&self, state: u32) -> &[u16] {
        &self.accepts[state as usize]
    }

    /// Moore partition-refinement minimization.
    pub fn minimize(&self) -> Dfa {
        let n = self.len();
        // Initial partition: by accept signature (plus the implicit dead
        // class handled via DEAD).
        let mut class: Vec<u32> = vec![0; n];
        {
            let mut sig: HashMap<&[u16], u32> = HashMap::new();
            for (s, cl) in class.iter_mut().enumerate().take(n) {
                let next = sig.len() as u32;
                *cl = *sig.entry(self.accepts[s].as_slice()).or_insert(next);
            }
        }
        loop {
            let mut sig: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut new_class = vec![0u32; n];
            for s in 0..n {
                let row: Vec<u32> = (0..256)
                    .map(|b| {
                        let t = self.trans[s * 256 + b];
                        if t == DEAD {
                            DEAD
                        } else {
                            class[t as usize]
                        }
                    })
                    .collect();
                let key = (class[s], row);
                let next = sig.len() as u32;
                new_class[s] = *sig.entry(key).or_insert(next);
            }
            let stable = new_class == class;
            class = new_class;
            if stable {
                break;
            }
        }
        let n_classes = class.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut trans = vec![DEAD; n_classes * 256];
        let mut accepts = vec![Vec::new(); n_classes];
        for s in 0..n {
            let c = class[s] as usize;
            accepts[c] = self.accepts[s].clone();
            for b in 0..256 {
                let t = self.trans[s * 256 + b];
                trans[c * 256 + b] = if t == DEAD { DEAD } else { class[t as usize] };
            }
        }
        Dfa {
            trans,
            accepts,
            start: class[self.start as usize],
        }
    }

    /// Scans `input`, returning `(pattern, end_position)` matches.
    ///
    /// For scanner-built NFAs the DFA never dies; for anchored DFAs the
    /// scan stops at the first dead transition.
    pub fn find_all(&self, input: &[u8]) -> Vec<(u16, usize)> {
        let mut out = Vec::new();
        let mut s = self.start;
        for &id in self.accepts(s) {
            out.push((id, 0));
        }
        for (i, &b) in input.iter().enumerate() {
            s = self.next(s, b);
            if s == DEAD {
                break;
            }
            for &id in self.accepts(s) {
                out.push((id, i + 1));
            }
        }
        out
    }

    /// Per-state outgoing live transitions, grouped by target — used by
    /// the UDP compiler to pick majority/fallback compression.
    pub fn row(&self, state: u32) -> &[u32] {
        &self.trans[state as usize * 256..state as usize * 256 + 256]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn scanner_dfa(patterns: &[&str]) -> Dfa {
        let asts: Vec<Regex> = patterns.iter().map(|p| Regex::parse(p).unwrap()).collect();
        Dfa::determinize(&Nfa::scanner(&asts))
    }

    #[test]
    fn dfa_matches_nfa() {
        let asts = vec![Regex::parse("ab+c").unwrap(), Regex::parse("b.d").unwrap()];
        let nfa = Nfa::scanner(&asts);
        let dfa = Dfa::determinize(&nfa);
        let input = b"zabbbczbxdq";
        let mut a = nfa.find_all(input);
        let mut b = dfa.find_all(input);
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn minimization_preserves_language() {
        let dfa = scanner_dfa(&["abc|abd", "ab"]);
        let min = dfa.minimize();
        assert!(min.len() <= dfa.len());
        let input = b"xxabcxabdxxabx";
        let mut a = dfa.find_all(input);
        let mut b = min.find_all(input);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // a(b|c)d: states after b and after c are equivalent.
        let asts = vec![Regex::parse("a(b|c)d").unwrap()];
        let dfa = Dfa::determinize(&Nfa::from_patterns(&asts));
        let min = dfa.minimize();
        assert!(min.len() < dfa.len());
    }

    #[test]
    fn anchored_scan_dies() {
        let asts = vec![Regex::parse("abc").unwrap()];
        let dfa = Dfa::determinize(&Nfa::from_patterns(&asts));
        assert!(dfa.find_all(b"abc").contains(&(0, 3)));
        assert!(dfa.find_all(b"zabc").is_empty());
    }

    #[test]
    fn char_class_scan() {
        let dfa = scanner_dfa(&[r"\d\d\d"]);
        let m = dfa.find_all(b"a12345b");
        let ends: Vec<usize> = m.into_iter().map(|(_, e)| e).collect();
        assert_eq!(ends, vec![4, 5, 6]);
    }
}

//! Regular-expression parsing.
//!
//! The supported syntax covers the network-intrusion-detection pattern
//! shapes of the paper's workload [80]: literals, `.`, escapes
//! (`\d \D \w \W \s \S \n \r \t \xNN` and escaped metacharacters),
//! character classes `[a-z]` / `[^...]`, grouping `(...)`, alternation
//! `|`, and the quantifiers `* + ? {m} {m,} {m,n}`.

use crate::byteset::ByteSet;
use std::fmt;

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty string.
    Empty,
    /// One byte from a class.
    Class(ByteSet),
    /// Concatenation.
    Concat(Vec<Regex>),
    /// Alternation.
    Alt(Vec<Regex>),
    /// `r*`.
    Star(Box<Regex>),
    /// `r+`.
    Plus(Box<Regex>),
    /// `r?`.
    Opt(Box<Regex>),
}

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Offset into the pattern.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseRegexError {}

impl Regex {
    /// Parses a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] on malformed syntax.
    pub fn parse(pattern: &str) -> Result<Regex, ParseRegexError> {
        let mut p = Parser {
            bytes: pattern.as_bytes(),
            pos: 0,
        };
        let r = p.alternation()?;
        if p.pos != p.bytes.len() {
            return Err(p.err("unexpected trailing input"));
        }
        Ok(r)
    }

    /// A literal byte-string pattern.
    pub fn literal(s: &[u8]) -> Regex {
        Regex::Concat(
            s.iter()
                .map(|&b| Regex::Class(ByteSet::single(b)))
                .collect(),
        )
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: &str) -> ParseRegexError {
        ParseRegexError {
            pos: self.pos,
            message: m.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn alternation(&mut self) -> Result<Regex, ParseRegexError> {
        let first = self.concat()?;
        let mut branches = Vec::new();
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.concat()?);
        }
        Ok(if branches.is_empty() {
            first
        } else {
            branches.insert(0, first);
            Regex::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<Regex, ParseRegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.pop() {
            None => Regex::Empty,
            Some(only) if items.is_empty() => only,
            Some(last) => {
                items.push(last);
                Regex::Concat(items)
            }
        })
    }

    fn repeat(&mut self) -> Result<Regex, ParseRegexError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Regex::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Regex::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Regex::Opt(Box::new(atom));
                }
                Some(b'{') => {
                    self.bump();
                    atom = self.counted(atom)?;
                }
                _ => return Ok(atom),
            }
        }
    }

    fn counted(&mut self, atom: Regex) -> Result<Regex, ParseRegexError> {
        let m = self.number()?;
        let (min, max) = match self.bump() {
            Some(b'}') => (m, Some(m)),
            Some(b',') => match self.peek() {
                Some(b'}') => {
                    self.bump();
                    (m, None)
                }
                _ => {
                    let n = self.number()?;
                    if self.bump() != Some(b'}') {
                        return Err(self.err("expected '}'"));
                    }
                    if n < m {
                        return Err(self.err("counted repetition max < min"));
                    }
                    (m, Some(n))
                }
            },
            _ => return Err(self.err("malformed counted repetition")),
        };
        // Expand {m,n} structurally.
        let mut items: Vec<Regex> = (0..min).map(|_| atom.clone()).collect();
        match max {
            None => items.push(Regex::Star(Box::new(atom))),
            Some(n) => {
                for _ in min..n {
                    items.push(Regex::Opt(Box::new(atom.clone())));
                }
            }
        }
        Ok(match items.pop() {
            None => Regex::Empty,
            Some(only) if items.is_empty() => only,
            Some(last) => {
                items.push(last);
                Regex::Concat(items)
            }
        })
    }

    fn number(&mut self) -> Result<u32, ParseRegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let mut value: u32 = 0;
        for &b in &self.bytes[start..self.pos] {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u32::from(b - b'0')))
                .ok_or_else(|| self.err("repetition count too large"))?;
        }
        Ok(value)
    }

    fn atom(&mut self) -> Result<Regex, ParseRegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                let r = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unbalanced '('"));
                }
                Ok(r)
            }
            Some(b'.') => Ok(Regex::Class(ByteSet::single(b'\n').negate())),
            Some(b'[') => self.class(),
            Some(b'\\') => Ok(Regex::Class(self.escape()?)),
            Some(b @ (b'*' | b'+' | b'?' | b')' | b'{')) => {
                Err(self.err(&format!("misplaced metacharacter '{}'", b as char)))
            }
            Some(b) => Ok(Regex::Class(ByteSet::single(b))),
        }
    }

    fn escape(&mut self) -> Result<ByteSet, ParseRegexError> {
        let Some(b) = self.bump() else {
            return Err(self.err("dangling escape"));
        };
        Ok(match b {
            b'd' => ByteSet::range(b'0', b'9'),
            b'D' => ByteSet::range(b'0', b'9').negate(),
            b'w' => word_set(),
            b'W' => word_set().negate(),
            b's' => [b' ', b'\t', b'\n', b'\r', 0x0B, 0x0C]
                .into_iter()
                .collect(),
            b'S' => [b' ', b'\t', b'\n', b'\r', 0x0B, 0x0C]
                .into_iter()
                .collect::<ByteSet>()
                .negate(),
            b'n' => ByteSet::single(b'\n'),
            b'r' => ByteSet::single(b'\r'),
            b't' => ByteSet::single(b'\t'),
            b'0' => ByteSet::single(0),
            b'x' => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                ByteSet::single(hi * 16 + lo)
            }
            other => ByteSet::single(other),
        })
    }

    fn hex_digit(&mut self) -> Result<u8, ParseRegexError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.err("expected a hex digit")),
        }
    }

    fn class(&mut self) -> Result<Regex, ParseRegexError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = ByteSet::EMPTY;
        let mut first = true;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(b']') if !first => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            first = false;
            let lo_set = match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(b'\\') => self.escape()?,
                Some(b) => ByteSet::single(b),
            };
            // Range only when the left side was a single byte.
            let range_lo =
                if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                    lo_set.single_byte()
                } else {
                    None
                };
            if let Some(lo) = range_lo {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some(b'\\') => {
                        let s = self.escape()?;
                        match s.single_byte() {
                            Some(b) => b,
                            None => return Err(self.err("class range bound must be a single byte")),
                        }
                    }
                    Some(b) => b,
                    None => return Err(self.err("unterminated class range")),
                };
                if hi < lo {
                    return Err(self.err("inverted class range"));
                }
                set = set.union(&ByteSet::range(lo, hi));
            } else {
                set = set.union(&lo_set);
            }
        }
        Ok(Regex::Class(if negated { set.negate() } else { set }))
    }
}

fn word_set() -> ByteSet {
    ByteSet::range(b'a', b'z')
        .union(&ByteSet::range(b'A', b'Z'))
        .union(&ByteSet::range(b'0', b'9'))
        .union(&ByteSet::single(b'_'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_concat() {
        let r = Regex::parse("abc").unwrap();
        assert_eq!(r, Regex::literal(b"abc"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = Regex::parse("a(b|c)d").unwrap();
        match r {
            Regex::Concat(items) => {
                assert_eq!(items.len(), 3);
                assert!(matches!(items[1], Regex::Alt(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        assert!(matches!(Regex::parse("a*").unwrap(), Regex::Star(_)));
        assert!(matches!(Regex::parse("a+").unwrap(), Regex::Plus(_)));
        assert!(matches!(Regex::parse("a?").unwrap(), Regex::Opt(_)));
    }

    #[test]
    fn counted_repetition_expands() {
        let r = Regex::parse("a{2,4}").unwrap();
        match r {
            Regex::Concat(items) => assert_eq!(items.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(Regex::parse("a{3}").is_ok());
        assert!(Regex::parse("a{2,}").is_ok());
        assert!(Regex::parse("a{4,2}").is_err());
    }

    #[test]
    fn classes() {
        let Regex::Class(s) = Regex::parse("[a-cx]").unwrap() else {
            panic!()
        };
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![b'a', b'b', b'c', b'x']);
        let Regex::Class(n) = Regex::parse("[^\\d]").unwrap() else {
            panic!()
        };
        assert!(!n.contains(b'5') && n.contains(b'x'));
    }

    #[test]
    fn class_with_leading_bracket_and_dash() {
        let Regex::Class(s) = Regex::parse("[]a-]").unwrap() else {
            panic!()
        };
        assert!(s.contains(b']') && s.contains(b'a') && s.contains(b'-'));
    }

    #[test]
    fn escapes() {
        let Regex::Class(s) = Regex::parse(r"\x41").unwrap() else {
            panic!()
        };
        assert!(s.contains(b'A') && s.len() == 1);
        assert!(Regex::parse(r"\d\w\s\n").is_ok());
        let Regex::Class(dot) = Regex::parse(".").unwrap() else {
            panic!()
        };
        assert!(!dot.contains(b'\n') && dot.contains(b'a'));
    }

    #[test]
    fn errors_have_positions() {
        let e = Regex::parse("a)b").unwrap_err();
        assert!(e.pos >= 1);
        assert!(Regex::parse("(ab").is_err());
        assert!(Regex::parse("[ab").is_err());
        assert!(Regex::parse("*a").is_err());
        assert!(!format!("{e}").is_empty());
    }
}

//! # udp-automata — finite-automata substrate
//!
//! The UDP inherits the Unified Automata Processor's ability to execute
//! any extended finite-automata model (paper §2.2, §5.3). This crate is
//! the automata toolchain the UDP compilers and the CPU pattern-matching
//! baseline share:
//!
//! * [`regex`] — a from-scratch regular-expression parser (literals,
//!   classes, alternation, repetition) producing an AST;
//! * [`nfa`] — Thompson construction and multi-pattern NFA composition;
//! * [`dfa`] — subset construction, Hopcroft minimization, and a scanning
//!   table-driven matcher (the CPU baseline's engine, standing in for
//!   Boost Regex);
//! * [`adfa`] — an Aho-Corasick multi-pattern string automaton whose
//!   failure links map directly onto UDP *default* transitions (the
//!   paper's ADFA model [66]).
//!
//! ## Example
//!
//! ```
//! use udp_automata::{regex::Regex, nfa::Nfa, dfa::Dfa};
//!
//! let ast = Regex::parse(r"ab+c").unwrap();
//! let nfa = Nfa::scanner(&[ast]);
//! let dfa = Dfa::determinize(&nfa).minimize();
//! assert!(dfa.find_all(b"xxabbbcxx").contains(&(0, 7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adfa;
pub mod byteset;
pub mod d2fa;
pub mod dfa;
pub mod naive;
pub mod nfa;
pub mod regex;

pub use adfa::Adfa;
pub use byteset::ByteSet;
pub use d2fa::D2fa;
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use regex::Regex;

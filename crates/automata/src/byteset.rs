//! 256-bit byte sets for character classes.

use std::fmt;

/// A set of byte values, stored as four 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ByteSet {
    limbs: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet { limbs: [0; 4] };
    /// Every byte.
    pub const ALL: ByteSet = ByteSet {
        limbs: [u64::MAX; 4],
    };

    /// A singleton set.
    pub fn single(b: u8) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        s.insert(b);
        s
    }

    /// An inclusive range.
    pub fn range(lo: u8, hi: u8) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        for b in lo..=hi {
            s.insert(b);
        }
        s
    }

    /// Inserts a byte.
    pub fn insert(&mut self, b: u8) {
        self.limbs[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.limbs[(b >> 6) as usize] >> (b & 63) & 1 == 1
    }

    /// Union.
    pub fn union(&self, other: &ByteSet) -> ByteSet {
        let mut limbs = self.limbs;
        for (a, b) in limbs.iter_mut().zip(other.limbs.iter()) {
            *a |= b;
        }
        ByteSet { limbs }
    }

    /// Complement.
    pub fn negate(&self) -> ByteSet {
        let mut limbs = self.limbs;
        for a in limbs.iter_mut() {
            *a = !*a;
        }
        ByteSet { limbs }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// True if no members.
    pub fn is_empty(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// The sole member, when the set holds exactly one byte.
    pub fn single_byte(&self) -> Option<u8> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256)
            .filter(|&b| self.contains(b as u8))
            .map(|b| b as u8)
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet{{{} bytes}}", self.len())
    }
}

impl FromIterator<u8> for ByteSet {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut s = ByteSet::EMPTY;
        for b in iter {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_range() {
        let s = ByteSet::single(b'x');
        assert!(s.contains(b'x') && !s.contains(b'y'));
        let r = ByteSet::range(b'a', b'c');
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![b'a', b'b', b'c']);
    }

    #[test]
    fn negation_partitions() {
        let s = ByteSet::range(0, 99);
        let n = s.negate();
        assert_eq!(s.len() + n.len(), 256);
        assert!(n.contains(100) && !n.contains(99));
    }

    #[test]
    fn union_and_collect() {
        let s: ByteSet = [1u8, 3, 5].into_iter().collect();
        let t = ByteSet::single(7).union(&s);
        assert_eq!(t.len(), 4);
    }
}

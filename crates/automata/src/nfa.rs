//! Thompson NFA construction and simulation.

use crate::byteset::ByteSet;
use crate::regex::Regex;

/// An NFA state: Thompson states carry at most one byte transition plus
/// epsilon edges, and possibly an accept tag.
#[derive(Debug, Clone, Default)]
pub struct NfaState {
    /// Epsilon successors.
    pub eps: Vec<u32>,
    /// Byte-class transition.
    pub byte: Option<(ByteSet, u32)>,
    /// Accepting pattern id.
    pub accept: Option<u16>,
}

/// A multi-pattern Thompson NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// States; index 0 is unused sentinel-free storage (start is explicit).
    pub states: Vec<NfaState>,
    /// Start state.
    pub start: u32,
}

impl Nfa {
    /// Builds an *anchored* multi-pattern NFA: pattern `i` accepts with
    /// id `i` when matched from the start state.
    pub fn from_patterns(patterns: &[Regex]) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let start = b.push(NfaState::default());
        for (id, p) in patterns.iter().enumerate() {
            let (s, e) = b.compile(p);
            b.states[start as usize].eps.push(s);
            b.states[e as usize].accept = Some(id as u16);
        }
        Nfa {
            states: b.states,
            start,
        }
    }

    /// Builds an *unanchored scanner*: matches may start at any input
    /// position (the start state self-loops on every byte).
    pub fn scanner(patterns: &[Regex]) -> Nfa {
        let mut nfa = Self::from_patterns(patterns);
        let start = nfa.start as usize;
        // Self-loop: stay alive at every position. Thompson states hold
        // one byte edge, so interpose a looper state.
        let looper = NfaState {
            eps: vec![nfa.start],
            byte: None,
            accept: None,
        };
        nfa.states.push(looper);
        let looper_id = (nfa.states.len() - 1) as u32;
        debug_assert!(nfa.states[start].byte.is_none());
        nfa.states[start].byte = Some((ByteSet::ALL, looper_id));
        nfa
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the automaton has no states (never for built NFAs).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Epsilon closure of a set of states (sorted, deduped).
    pub fn closure(&self, set: &mut Vec<u32>) {
        let mut stack: Vec<u32> = set.clone();
        while let Some(s) = stack.pop() {
            for &e in &self.states[s as usize].eps {
                if !set.contains(&e) {
                    set.push(e);
                    stack.push(e);
                }
            }
        }
        set.sort_unstable();
        set.dedup();
    }

    /// Frontier simulation: returns `(pattern, end_position)` for every
    /// match (end positions are byte offsets one past the match).
    pub fn find_all(&self, input: &[u8]) -> Vec<(u16, usize)> {
        let mut matches = Vec::new();
        let mut frontier = vec![self.start];
        self.closure(&mut frontier);
        self.collect_accepts(&frontier, 0, &mut matches);
        for (i, &b) in input.iter().enumerate() {
            let mut next = Vec::new();
            for &s in &frontier {
                if let Some((ref class, t)) = self.states[s as usize].byte {
                    if class.contains(b) {
                        next.push(t);
                    }
                }
            }
            self.closure(&mut next);
            self.collect_accepts(&next, i + 1, &mut matches);
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        matches
    }

    fn collect_accepts(&self, set: &[u32], pos: usize, out: &mut Vec<(u16, usize)>) {
        for &s in set {
            if let Some(id) = self.states[s as usize].accept {
                out.push((id, pos));
            }
        }
    }
}

struct Builder {
    states: Vec<NfaState>,
}

impl Builder {
    fn push(&mut self, s: NfaState) -> u32 {
        self.states.push(s);
        (self.states.len() - 1) as u32
    }

    /// Compiles to a `(start, end)` fragment; `end` has no outgoing edges.
    fn compile(&mut self, r: &Regex) -> (u32, u32) {
        match r {
            Regex::Empty => {
                let s = self.push(NfaState::default());
                (s, s)
            }
            Regex::Class(set) => {
                let e = self.push(NfaState::default());
                let s = self.push(NfaState {
                    byte: Some((*set, e)),
                    ..Default::default()
                });
                (s, e)
            }
            Regex::Concat(items) => {
                let mut start = None;
                let mut prev_end: Option<u32> = None;
                for item in items {
                    let (s, e) = self.compile(item);
                    if let Some(pe) = prev_end {
                        self.states[pe as usize].eps.push(s);
                    } else {
                        start = Some(s);
                    }
                    prev_end = Some(e);
                }
                match (start, prev_end) {
                    (Some(s), Some(e)) => (s, e),
                    _ => {
                        let s = self.push(NfaState::default());
                        (s, s)
                    }
                }
            }
            Regex::Alt(branches) => {
                let s = self.push(NfaState::default());
                let e = self.push(NfaState::default());
                for b in branches {
                    let (bs, be) = self.compile(b);
                    self.states[s as usize].eps.push(bs);
                    self.states[be as usize].eps.push(e);
                }
                (s, e)
            }
            Regex::Star(inner) => {
                let s = self.push(NfaState::default());
                let e = self.push(NfaState::default());
                let (is, ie) = self.compile(inner);
                self.states[s as usize].eps.extend([is, e]);
                self.states[ie as usize].eps.extend([is, e]);
                (s, e)
            }
            Regex::Plus(inner) => {
                let (is, ie) = self.compile(inner);
                let e = self.push(NfaState::default());
                self.states[ie as usize].eps.extend([is, e]);
                (is, e)
            }
            Regex::Opt(inner) => {
                let s = self.push(NfaState::default());
                let e = self.push(NfaState::default());
                let (is, ie) = self.compile(inner);
                self.states[s as usize].eps.extend([is, e]);
                self.states[ie as usize].eps.push(e);
                (s, e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn ends(pattern: &str, input: &[u8]) -> Vec<usize> {
        let nfa = Nfa::scanner(&[Regex::parse(pattern).unwrap()]);
        let mut v: Vec<usize> = nfa.find_all(input).into_iter().map(|(_, e)| e).collect();
        v.dedup();
        v
    }

    #[test]
    fn literal_scan() {
        assert_eq!(ends("ana", b"banana"), vec![4, 6]);
    }

    #[test]
    fn alternation_scan() {
        assert_eq!(ends("cat|dog", b"hotdogcat"), vec![6, 9]);
    }

    #[test]
    fn star_matches_empty_everywhere() {
        // "a*" matches the empty string at every position.
        let e = ends("a*", b"ba");
        assert!(e.contains(&0) && e.contains(&1) && e.contains(&2));
    }

    #[test]
    fn plus_requires_one() {
        assert_eq!(ends("ab+", b"abbbc"), vec![2, 3, 4]);
    }

    #[test]
    fn multi_pattern_ids() {
        let nfa = Nfa::scanner(&[Regex::parse("aa").unwrap(), Regex::parse("ab").unwrap()]);
        let m = nfa.find_all(b"aab");
        assert!(m.contains(&(0, 2)));
        assert!(m.contains(&(1, 3)));
    }

    #[test]
    fn anchored_vs_scanner() {
        let anchored = Nfa::from_patterns(&[Regex::parse("bc").unwrap()]);
        assert!(anchored.find_all(b"abc").is_empty(), "anchored must miss");
        assert_eq!(ends("bc", b"abc"), vec![3]);
    }
}

//! D²FA — the delayed-input DFA (Kumar et al., SIGCOMM'06; Table 1
//! lists it among the pattern-matching models the UDP runs).
//!
//! A D²FA stores, per state, only the transitions that *differ* from a
//! chosen deferment state's; a miss follows the deferment pointer
//! without consuming input. Deferment pointers form a forest (no
//! cycles), built here as a maximum-shared-transitions spanning tree —
//! the classic space-reduction construction. On the UDP, deferment maps
//! onto a *default* transition through a refill pass state, the same
//! mechanism as Aho–Corasick failure links.

use crate::dfa::{Dfa, DEAD};
use std::collections::HashMap;

/// One D²FA state.
#[derive(Debug, Clone, Default)]
pub struct D2faState {
    /// Stored (differing) transitions.
    pub edges: HashMap<u8, u32>,
    /// Deferment pointer (`None` for tree roots, which store all edges).
    pub defer: Option<u32>,
    /// Accepting pattern ids.
    pub accepts: Vec<u16>,
}

/// A delayed-input DFA.
#[derive(Debug, Clone)]
pub struct D2fa {
    states: Vec<D2faState>,
    start: u32,
}

impl D2fa {
    /// Builds a D²FA from a (complete, scanner-style) DFA via a greedy
    /// maximum-weight spanning forest over pairwise shared-transition
    /// counts.
    pub fn from_dfa(dfa: &Dfa) -> D2fa {
        let n = dfa.len();
        // Pairwise shared-transition weights (symmetric).
        let shared = |a: u32, b: u32| -> usize {
            dfa.row(a)
                .iter()
                .zip(dfa.row(b))
                .filter(|(x, y)| x == y && **x != DEAD)
                .count()
        };

        // Prim-style forest: grow from state 0; attach each new state to
        // the in-tree state it shares the most transitions with, if that
        // saves enough (> 128 shared) to beat storing the full row.
        let mut defer: Vec<Option<u32>> = vec![None; n];
        if n > 1 {
            let mut in_tree = vec![false; n];
            in_tree[0] = true;
            let mut best: Vec<(usize, u32)> = (0..n as u32).map(|s| (shared(s, 0), 0)).collect();
            for _ in 1..n {
                // Pick the out-of-tree state with the best attachment.
                let Some(s) = (0..n).filter(|&s| !in_tree[s]).max_by_key(|&s| best[s].0) else {
                    break;
                };
                in_tree[s] = true;
                if best[s].0 > 128 {
                    defer[s] = Some(best[s].1);
                }
                for t in 0..n {
                    if !in_tree[t] {
                        let w = shared(t as u32, s as u32);
                        if w > best[t].0 {
                            best[t] = (w, s as u32);
                        }
                    }
                }
            }
        }

        let states = (0..n as u32)
            .map(|s| {
                let row = dfa.row(s);
                let edges = match defer[s as usize] {
                    Some(d) => {
                        let drow = dfa.row(d);
                        row.iter()
                            .zip(drow)
                            .enumerate()
                            .filter(|(_, (x, y))| x != y && **x != DEAD)
                            .map(|(b, (x, _))| (b as u8, *x))
                            .collect()
                    }
                    None => row
                        .iter()
                        .enumerate()
                        .filter(|(_, &t)| t != DEAD)
                        .map(|(b, &t)| (b as u8, t))
                        .collect(),
                };
                D2faState {
                    edges,
                    defer: defer[s as usize],
                    accepts: dfa.accepts(s).to_vec(),
                }
            })
            .collect();
        D2fa {
            states,
            start: dfa.start(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when there are no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// State access (UDP compiler input).
    pub fn state(&self, s: u32) -> &D2faState {
        &self.states[s as usize]
    }

    /// Stored transitions (the compression metric; a DFA stores
    /// `states × 256`).
    pub fn stored_transitions(&self) -> usize {
        self.states.iter().map(|s| s.edges.len()).sum()
    }

    /// Resolved transition: follow deferment pointers until an edge for
    /// `b` is found (returns `None` = dead, only for incomplete DFAs).
    pub fn next(&self, mut s: u32, b: u8) -> Option<u32> {
        loop {
            let st = &self.states[s as usize];
            if let Some(&t) = st.edges.get(&b) {
                return Some(t);
            }
            match st.defer {
                Some(d) => s = d,
                None => return None,
            }
        }
    }

    /// Scans `input`, returning `(pattern, end_position)` matches —
    /// bit-for-bit what [`Dfa::find_all`] returns on complete DFAs.
    pub fn find_all(&self, input: &[u8]) -> Vec<(u16, usize)> {
        let mut out = Vec::new();
        let mut s = self.start;
        for &id in &self.states[s as usize].accepts {
            out.push((id, 0));
        }
        for (i, &b) in input.iter().enumerate() {
            let Some(t) = self.next(s, b) else { break };
            s = t;
            for &id in &self.states[s as usize].accepts {
                out.push((id, i + 1));
            }
        }
        out
    }

    /// Longest deferment chain (bounds the per-byte worst case).
    pub fn max_defer_depth(&self) -> usize {
        let mut depth = vec![usize::MAX; self.states.len()];
        fn go(states: &[D2faState], depth: &mut [usize], s: usize) -> usize {
            if depth[s] != usize::MAX {
                return depth[s];
            }
            let d = match states[s].defer {
                Some(p) => go(states, depth, p as usize) + 1,
                None => 0,
            };
            depth[s] = d;
            d
        }
        (0..self.states.len())
            .map(|s| go(&self.states, &mut depth, s))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;
    use proptest::prelude::*;

    fn scanner(patterns: &[&str]) -> Dfa {
        let asts: Vec<Regex> = patterns.iter().map(|p| Regex::parse(p).unwrap()).collect();
        Dfa::determinize(&Nfa::scanner(&asts)).minimize()
    }

    #[test]
    fn d2fa_matches_dfa_exactly() {
        let dfa = scanner(&["abc", "bc+d", "x[yz]"]);
        let d2 = D2fa::from_dfa(&dfa);
        let input = b"zabcxy bccd xz abc";
        assert_eq!(d2.find_all(input), dfa.find_all(input));
    }

    #[test]
    fn deferment_compresses_dense_scanners() {
        let pats: Vec<String> = (0..12).map(|i| format!("sig{i}pattern")).collect();
        let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
        let dfa = scanner(&refs);
        let d2 = D2fa::from_dfa(&dfa);
        let full = dfa.len() * 256;
        assert!(
            d2.stored_transitions() < full / 4,
            "{} of {} transitions stored",
            d2.stored_transitions(),
            full
        );
    }

    #[test]
    fn deferment_forest_is_acyclic() {
        let dfa = scanner(&["hello", "help", "world"]);
        let d2 = D2fa::from_dfa(&dfa);
        assert!(d2.max_defer_depth() < d2.len());
    }

    #[test]
    fn roots_store_full_rows() {
        let dfa = scanner(&["ab"]);
        let d2 = D2fa::from_dfa(&dfa);
        let roots: Vec<&D2faState> = (0..d2.len() as u32)
            .map(|s| d2.state(s))
            .filter(|s| s.defer.is_none())
            .collect();
        assert!(!roots.is_empty());
        for r in roots {
            assert_eq!(r.edges.len(), 256, "complete scanner rows");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_d2fa_equals_dfa(input in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'x')], 0..200)) {
            let dfa = scanner(&["ab+c", "(a|x)cx", "bbb"]);
            let d2 = D2fa::from_dfa(&dfa);
            prop_assert_eq!(d2.find_all(&input), dfa.find_all(&input));
        }
    }
}

//! Variable-size symbol support.
//!
//! The symbol-size register holds the current dispatch width: 1–8 bits for
//! multi-way dispatch, or 32 bits for word-granular register loads (paper
//! Table 5: "symbol size register (1–8, 32 bits)"). The stream-buffer
//! prefetch unit reads exactly this many bits per dispatch, and `Refill`
//! transitions put unconsumed bits back (§3.2.2).

use std::fmt;

/// A validated symbol width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolSize(u8);

impl SymbolSize {
    /// The UAP-compatible fixed width: one byte.
    pub const BYTE: SymbolSize = SymbolSize(8);
    /// The word width used for register-granular stream loads.
    pub const WORD: SymbolSize = SymbolSize(32);

    /// Creates a symbol size; valid widths are 1–8 and 32 bits.
    pub fn new(bits: u8) -> Option<SymbolSize> {
        match bits {
            1..=8 | 32 => Some(SymbolSize(bits)),
            _ => None,
        }
    }

    /// Width in bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Number of distinct symbol values at this width (dispatch fan-out).
    ///
    /// Only meaningful for dispatch widths (1–8).
    pub fn alphabet(self) -> usize {
        1usize << self.0.min(31)
    }
}

impl Default for SymbolSize {
    fn default() -> Self {
        SymbolSize::BYTE
    }
}

impl fmt::Display for SymbolSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_widths() {
        for w in 1..=8 {
            assert_eq!(SymbolSize::new(w).unwrap().bits(), w);
        }
        assert_eq!(SymbolSize::new(32), Some(SymbolSize::WORD));
    }

    #[test]
    fn invalid_widths() {
        assert_eq!(SymbolSize::new(0), None);
        assert_eq!(SymbolSize::new(9), None);
        assert_eq!(SymbolSize::new(16), None);
        assert_eq!(SymbolSize::new(33), None);
    }

    #[test]
    fn alphabet_sizes() {
        assert_eq!(SymbolSize::new(1).unwrap().alphabet(), 2);
        assert_eq!(SymbolSize::new(4).unwrap().alphabet(), 16);
        assert_eq!(SymbolSize::BYTE.alphabet(), 256);
    }
}

//! Transition words: the multi-way-dispatch half of the UDP ISA.
//!
//! A UDP *state* is a base word-address `B`. Dispatching from `B` on a
//! symbol `s` reads the word at `B + s` — integer addition is the entire
//! hash function (the EffCLiP layout guarantees that a signature check
//! suffices to detect placement collisions). Each state also owns a
//! *fallback slot* at `B + 256` holding its majority/default/common
//! transition (consuming states) or its sole outgoing transition
//! (pass-through states: epsilon forks, refill states, emit states).
//!
//! The `type` nibble of a stored transition describes how the **target**
//! state dispatches next — the assembler back-propagates this along
//! dispatch arcs (paper §3.2.1), so states need no headers. The nibble
//! packs an [`ExecKind`] (3 bits) and an [`AttachMode`] (1 bit).
//!
//! The 8-bit `attach` field addresses this transition's action block,
//! except on *refill* fallback words, where the `signature` field (unused
//! for matching at the fallback slot) carries the put-back bit count
//! (paper §3.2.2: "the use of attach varies by scenario").

use crate::{Word, WordAddr};

/// How the *target* state of a transition performs its next dispatch.
///
/// This realizes the paper's seven transition types at runtime:
///
/// * *labeled / majority / default / common* are all [`ExecKind::Consume`]
///   dispatches — the distinction between them is a property of **where**
///   the word is stored (labeled words live at `base + symbol`;
///   majority/default/common words live in the fallback slot) and is
///   exploited by the compiler for code compression, not by the lane.
/// * *flagged* is [`ExecKind::Flagged`]: the next symbol is read from
///   scalar register `R0` instead of the stream (paper §3.2.3).
/// * *epsilon* is [`ExecKind::Pass`] + the epsilon chain in the target's
///   fallback slots: multi-state activation for NFA execution.
/// * *refill* is [`ExecKind::Pass`] into a state whose fallback word has
///   [`TransitionWord::refill_bits`] set (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExecKind {
    /// Target reads the next `symbol_size` bits from the stream buffer and
    /// dispatches on them.
    Consume,
    /// Target dispatches on the low bits of scalar register `R0`
    /// (control-flow driven state transfer — the paper's *flagged* kind).
    Flagged,
    /// Target is a pass-through state: it immediately takes the word in its
    /// fallback slot without consuming input (epsilon forks, refill states,
    /// shared emit states).
    Pass,
    /// Target terminates the lane: `Halt` marks an accepting terminal for
    /// find-first automata and end-of-program transitions.
    Halt,
}

impl ExecKind {
    const ALL: [ExecKind; 4] = [
        ExecKind::Consume,
        ExecKind::Flagged,
        ExecKind::Pass,
        ExecKind::Halt,
    ];

    fn code(self) -> u32 {
        match self {
            ExecKind::Consume => 0,
            ExecKind::Flagged => 1,
            ExecKind::Pass => 2,
            ExecKind::Halt => 3,
        }
    }
}

/// Addressing mode for the `attach` action-block reference.
///
/// The UDP improves on the UAP's offset-only attach addressing with two
/// modes that together enable global sharing *and* private code blocks,
/// halving program size on some ETL kernels (paper §3.2.1, Figure 5c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum AttachMode {
    /// `action address = attach` — indexes the shared low region
    /// (words 1..=255 of the window): global sharing.
    #[default]
    Direct,
    /// `action address = ABASE + (attach << ASCALE)` — relative to the
    /// per-lane action-base register: private, relocatable blocks.
    Scaled,
}

/// Marker value stored in the signature field of fallback-slot words that
/// do not use it as a refill count.
pub const FALLBACK_SIGNATURE: u8 = 0xFF;

/// A decoded transition word.
///
/// Encoding (paper Figure 6): `signature(8) | target(12) | type(4) | attach(8)`
/// laid out MSB-first: bits `[31:24]` signature, `[23:12]` target,
/// `[11:8]` type, `[7:0]` attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionWord {
    signature: u8,
    target: u16,
    kind: ExecKind,
    attach_mode: AttachMode,
    attach: u8,
}

impl TransitionWord {
    /// Maximum encodable target (12 bits).
    pub const TARGET_MAX: u16 = 0xFFF;

    /// Creates a transition word.
    ///
    /// # Panics
    ///
    /// Panics if `target` exceeds [`Self::TARGET_MAX`] (the assembler is
    /// responsible for windowing larger addresses through the base
    /// register).
    pub fn new(
        signature: u8,
        target: u16,
        kind: ExecKind,
        attach_mode: AttachMode,
        attach: u8,
    ) -> Self {
        assert!(
            target <= Self::TARGET_MAX,
            "transition target {target:#x} exceeds 12-bit range"
        );
        TransitionWord {
            signature,
            target,
            kind,
            attach_mode,
            attach,
        }
    }

    /// The signature: the expected symbol for labeled slots, the
    /// [`FALLBACK_SIGNATURE`] marker or a refill bit-count for fallback
    /// slots.
    #[inline]
    pub fn signature(&self) -> u8 {
        self.signature
    }

    /// The base word-address of the next state (12 bits, window-relative).
    #[inline]
    pub fn target(&self) -> u16 {
        self.target
    }

    /// How the target state dispatches next.
    #[inline]
    pub fn kind(&self) -> ExecKind {
        self.kind
    }

    /// Addressing mode of [`Self::attach`].
    #[inline]
    pub fn attach_mode(&self) -> AttachMode {
        self.attach_mode
    }

    /// Action-block reference; `0` means this transition has no actions.
    #[inline]
    pub fn attach(&self) -> u8 {
        self.attach
    }

    /// For refill fallback words the signature field carries the number of
    /// bits to put back into the stream (0–8).
    #[inline]
    pub fn refill_bits(&self) -> u8 {
        self.signature
    }

    /// Resolves the action-block address given the lane's action base and
    /// scale configuration. Returns `None` when the transition carries no
    /// actions (`attach == 0`).
    #[inline]
    pub fn action_addr(&self, abase: WordAddr, ascale: u8) -> Option<WordAddr> {
        if self.attach == 0 {
            return None;
        }
        Some(match self.attach_mode {
            AttachMode::Direct => WordAddr::from(self.attach),
            AttachMode::Scaled => abase + (WordAddr::from(self.attach) << ascale),
        })
    }

    /// Packs into the 32-bit machine encoding.
    pub fn encode(&self) -> Word {
        let nibble = (self.kind.code() << 1)
            | match self.attach_mode {
                AttachMode::Direct => 0,
                AttachMode::Scaled => 1,
            };
        (u32::from(self.signature) << 24)
            | (u32::from(self.target) << 12)
            | (nibble << 8)
            | u32::from(self.attach)
    }

    /// Unpacks from the 32-bit machine encoding.
    pub fn decode(raw: Word) -> Self {
        let nibble = (raw >> 8) & 0xF;
        TransitionWord {
            signature: (raw >> 24) as u8,
            target: ((raw >> 12) & 0xFFF) as u16,
            kind: ExecKind::ALL[((nibble >> 1) & 0x3) as usize],
            attach_mode: if nibble & 1 == 0 {
                AttachMode::Direct
            } else {
                AttachMode::Scaled
            },
            attach: (raw & 0xFF) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_simple() {
        let t = TransitionWord::new(0x41, 0x7FF, ExecKind::Flagged, AttachMode::Scaled, 0x33);
        assert_eq!(TransitionWord::decode(t.encode()), t);
    }

    #[test]
    fn field_extraction() {
        let t = TransitionWord::new(0xAB, 0xCDE, ExecKind::Pass, AttachMode::Direct, 0x12);
        let raw = t.encode();
        assert_eq!(raw >> 24, 0xAB);
        assert_eq!((raw >> 12) & 0xFFF, 0xCDE);
        assert_eq!(raw & 0xFF, 0x12);
    }

    #[test]
    #[should_panic(expected = "12-bit range")]
    fn target_overflow_panics() {
        let _ = TransitionWord::new(0, 0x1000, ExecKind::Consume, AttachMode::Direct, 0);
    }

    #[test]
    fn no_attach_means_no_actions() {
        let t = TransitionWord::new(0, 5, ExecKind::Consume, AttachMode::Direct, 0);
        assert_eq!(t.action_addr(0, 0), None);
    }

    #[test]
    fn direct_attach_addresses_shared_region() {
        let t = TransitionWord::new(0, 5, ExecKind::Consume, AttachMode::Direct, 17);
        assert_eq!(t.action_addr(4096, 3), Some(17));
    }

    #[test]
    fn scaled_attach_uses_base_and_scale() {
        let t = TransitionWord::new(0, 5, ExecKind::Consume, AttachMode::Scaled, 10);
        assert_eq!(t.action_addr(1000, 2), Some(1000 + 40));
    }

    #[test]
    fn zero_word_is_distinguishable() {
        // All-zero memory decodes to a Consume/Direct word with target 0 and
        // no attach; the simulator treats raw == 0 as empty.
        let t = TransitionWord::decode(0);
        assert_eq!(t.target(), 0);
        assert_eq!(t.attach(), 0);
    }

    proptest! {
        #[test]
        fn prop_round_trip(sig in 0u8..=255, target in 0u16..=0xFFF,
                           kind_idx in 0usize..4, scaled in proptest::bool::ANY,
                           attach in 0u8..=255) {
            let kind = ExecKind::ALL[kind_idx];
            let mode = if scaled { AttachMode::Scaled } else { AttachMode::Direct };
            let t = TransitionWord::new(sig, target, kind, mode, attach);
            prop_assert_eq!(TransitionWord::decode(t.encode()), t);
        }

        #[test]
        fn prop_encode_is_injective(a in 0u32..=u32::MAX) {
            // decode . encode == id on the 28 meaningful bits we use
            let t = TransitionWord::decode(a);
            let b = t.encode();
            prop_assert_eq!(TransitionWord::decode(b), t);
        }
    }
}

//! Memory geometry and addressing models.
//!
//! The UDP local memory is 1 MB organized as 64 banks of 16 KB, one read
//! and one write port per bank (paper §3.2.4, §6). A 16 KB bank holds
//! exactly 4096 32-bit words — precisely the 12-bit `target` range of a
//! transition word, which is why local addressing needs no translation at
//! all.

/// Number of local memory banks (= number of lanes).
pub const NUM_BANKS: usize = 64;
/// Bytes per bank (16 KB).
pub const BANK_BYTES: usize = 16 * 1024;
/// Words per bank — the 12-bit target range.
pub const BANK_WORDS: usize = BANK_BYTES / 4;
/// Total local memory (1 MB).
pub const TOTAL_BYTES: usize = NUM_BANKS * BANK_BYTES;
/// Total words.
pub const TOTAL_WORDS: usize = TOTAL_BYTES / 4;

/// Word offset of a state's fallback slot (majority/default/common
/// transition for consuming states; the sole outgoing word for
/// pass-through states). Labeled slots occupy offsets `0..=255`.
pub const FALLBACK_SLOT: u32 = 256;

/// Per-state footprint stride: labeled slots + fallback slot.
pub const STATE_SPAN: u32 = FALLBACK_SLOT + 1;

/// The three lane-to-memory coupling schemes of paper §3.2.4 / Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressingMode {
    /// Each lane is confined to its own 16 KB bank (the UAP scheme):
    /// no sharing hardware, no flexibility.
    #[default]
    Local,
    /// Every lane addresses the full 1 MB (18-bit word addresses):
    /// maximum flexibility, roughly double the per-reference energy and
    /// wider datapaths.
    Global,
    /// Each lane addresses a window of `2^k` contiguous banks through a
    /// software-controlled base register: local-style code generation with
    /// flexible memory-per-lane (the UDP scheme).
    Restricted,
}

impl AddressingMode {
    /// Memory reference energy in picojoules for a 1 MB / 64-bank memory,
    /// from the CACTI-modeled comparison of paper Figure 11c.
    pub fn energy_pj_per_ref(self) -> f64 {
        match self {
            AddressingMode::Local | AddressingMode::Restricted => 4.3,
            AddressingMode::Global => 8.8,
        }
    }

    /// Whether two lanes may reference the same bank under this mode
    /// (requiring conflict detection and stalls).
    #[inline]
    pub fn allows_sharing(self) -> bool {
        !matches!(self, AddressingMode::Local)
    }
}

/// Splits a flat word address into `(bank, offset)`.
#[inline]
pub fn bank_of_word(addr: u32) -> (usize, usize) {
    let bank = (addr as usize / BANK_WORDS) % NUM_BANKS;
    (bank, addr as usize % BANK_WORDS)
}

/// Splits a flat byte address into `(bank, byte offset)`.
#[inline]
pub fn bank_of_byte(addr: u32) -> (usize, usize) {
    let bank = (addr as usize / BANK_BYTES) % NUM_BANKS;
    (bank, addr as usize % BANK_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(BANK_WORDS, 4096);
        assert_eq!(TOTAL_BYTES, 1 << 20);
        assert_eq!(BANK_WORDS, 1 << 12, "bank words must match 12-bit targets");
    }

    #[test]
    fn energy_model_matches_paper() {
        assert_eq!(AddressingMode::Local.energy_pj_per_ref(), 4.3);
        assert_eq!(AddressingMode::Restricted.energy_pj_per_ref(), 4.3);
        assert_eq!(AddressingMode::Global.energy_pj_per_ref(), 8.8);
    }

    #[test]
    fn bank_split() {
        assert_eq!(bank_of_word(0), (0, 0));
        assert_eq!(bank_of_word(4096), (1, 0));
        assert_eq!(bank_of_word(4097), (1, 1));
        assert_eq!(bank_of_byte(16 * 1024 * 63 + 5), (63, 5));
    }

    #[test]
    fn sharing() {
        assert!(!AddressingMode::Local.allows_sharing());
        assert!(AddressingMode::Global.allows_sharing());
        assert!(AddressingMode::Restricted.allows_sharing());
    }
}

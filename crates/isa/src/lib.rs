//! # udp-isa — the UDP lane instruction-set architecture
//!
//! This crate defines the instruction-set architecture of the Unstructured
//! Data Processor (UDP) as described in *"UDP: A Programmable Accelerator for
//! Extract-Transform-Load Workloads and More"* (Fang, Zou, Elmore, Chien,
//! MICRO-50, 2017), reconstructed where the paper defers to the UDP ISA
//! technical report (TR-2017-05).
//!
//! The ISA has two word classes, both 32 bits wide (paper Figure 6):
//!
//! * **Transitions** implement multi-way dispatch:
//!   `signature(8) | target(12) | type(4) | attach(8)`.
//! * **Actions** implement general computation, chained in blocks terminated
//!   by a `last` bit, in three formats: `ImmAction`, `Imm2Action`,
//!   `RegAction`.
//!
//! See [`TransitionWord`], [`Action`], [`Opcode`], and the dispatch-model
//! documentation on [`ExecKind`].
//!
//! ## Example
//!
//! ```
//! use udp_isa::{TransitionWord, ExecKind, AttachMode};
//!
//! let t = TransitionWord::new(0x41, 0x123, ExecKind::Consume, AttachMode::Direct, 7);
//! let raw = t.encode();
//! assert_eq!(TransitionWord::decode(raw), t);
//! assert_eq!(t.target(), 0x123);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod mem;
pub mod reg;
pub mod symbol;
pub mod transition;

pub use action::{Action, ActionFormat, Opcode};
pub use mem::{AddressingMode, BANK_BYTES, BANK_WORDS, FALLBACK_SLOT, NUM_BANKS, TOTAL_BYTES};
pub use reg::Reg;
pub use symbol::SymbolSize;
pub use transition::{AttachMode, ExecKind, TransitionWord};

/// One machine word: both transitions and actions are 32 bits.
pub type Word = u32;

/// A word address within a lane's addressable window.
///
/// `target` fields are 12 bits (one 16 KB bank = 4096 words); restricted and
/// global addressing extend the effective range with a per-lane base.
pub type WordAddr = u32;

//! Scalar data registers.
//!
//! Each UDP lane has 16 general-purpose 32-bit scalar registers (paper
//! §3.1). Two have architectural roles:
//!
//! * **R0** is the flagged-dispatch source: `Flagged` transitions read
//!   their symbol from R0 instead of the stream buffer (§3.2.3 — "the
//!   current UDP design restricts the source to Register 0").
//! * **R15** aliases the stream-buffer byte index (§3.1 — "Register 15
//!   stores the stream buffer index"); writes to it are ignored.
//! * **R14** is the loop-limit convention used by `LoopCmp`.
//! * **R13** latches the most recently dispatched symbol, so action
//!   blocks can compute on it (§3.2.5 — "hash action provides fast
//!   hashes of the input symbol").

use std::fmt;

/// A scalar register name, `r0`–`r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Reg(u8);

impl Reg {
    /// The flagged-dispatch source register.
    pub const R0: Reg = Reg(0);
    /// The dispatched-symbol latch.
    pub const R13: Reg = Reg(13);
    /// The loop-limit register used by `LoopCmp`.
    pub const R14: Reg = Reg(14);
    /// The stream-buffer byte-index alias (read-only).
    pub const R15: Reg = Reg(15);
    /// Number of scalar registers per lane.
    pub const COUNT: usize = 16;

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index {index} out of range");
        Reg(index)
    }

    /// The register number, `0..16`.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_registers() {
        assert_eq!(Reg::R0.index(), 0);
        assert_eq!(Reg::R14.index(), 14);
        assert_eq!(Reg::R15.index(), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(7).to_string(), "r7");
    }
}

//! Action words: the general-computation half of the UDP ISA.
//!
//! Actions are chained in blocks; the `last` bit ends a block (paper
//! Figure 6). Three 32-bit formats balance immediate width against register
//! operand count:
//!
//! ```text
//! ImmAction  : opcode(7) | last(1) | dst(4) | src(4) | imm(16)
//! Imm2Action : opcode(7) | last(1) | dst(4) | src(4) | imm1(4) | imm2(12)
//! RegAction  : opcode(7) | last(1) | dst(4) | ref(4) | src(4) | unused(12)
//! ```
//!
//! The format of an action is implied by its opcode: opcodes `0x00..=0x3F`
//! are Imm-format, `0x40..=0x5F` Imm2-format, `0x60..=0x7F` Reg-format.
//!
//! The opcode set realizes the paper's "50 actions including arithmetic,
//! logical, loop-comparing, configuration and memory operations", plus the
//! customized actions of §3.2.5: `Hash`, `LoopCmp` (stream compare),
//! `LoopCpy` (block copy), and histogram/emit support.

use crate::reg::Reg;
use crate::Word;
use std::fmt;

/// The three machine formats for action words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionFormat {
    /// `dst`, `src`, 16-bit immediate.
    Imm,
    /// `dst`, `src`, 4-bit + 12-bit immediates.
    Imm2,
    /// `dst`, `ref`, `src` registers.
    Reg,
}

macro_rules! opcodes {
    ($( $(#[$meta:meta])* $name:ident = $code:expr => $fmt:ident ),+ $(,)?) => {
        /// Action opcodes (7 bits). The numeric range determines the
        /// [`ActionFormat`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum Opcode {
            $( $(#[$meta])* $name = $code ),+
        }

        impl Opcode {
            /// Every defined opcode, in encoding order.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name),+ ];

            /// Decodes a 7-bit opcode field.
            pub fn from_code(code: u8) -> Option<Opcode> {
                match code {
                    $( $code => Some(Opcode::$name), )+
                    _ => None,
                }
            }

            /// The machine format this opcode uses.
            pub fn format(self) -> ActionFormat {
                match self {
                    $( Opcode::$name => ActionFormat::$fmt, )+
                }
            }
        }
    };
}

opcodes! {
    // ---- Imm format (0x00..=0x3F): dst, src, imm16 ----
    /// No operation.
    Nop = 0x00 => Imm,
    /// `dst = imm` (zero-extended).
    MovI = 0x01 => Imm,
    /// `dst = (dst & 0xFFFF) | (imm << 16)` — load the high half.
    MovIH = 0x02 => Imm,
    /// `dst = src + imm` (imm sign-extended).
    AddI = 0x03 => Imm,
    /// `dst = src - imm` (imm sign-extended).
    SubI = 0x04 => Imm,
    /// `dst = src & imm` (imm zero-extended).
    AndI = 0x05 => Imm,
    /// `dst = src | imm`.
    OrI = 0x06 => Imm,
    /// `dst = src ^ imm`.
    XorI = 0x07 => Imm,
    /// `dst = src << (imm & 31)`.
    ShlI = 0x08 => Imm,
    /// `dst = src >> (imm & 31)` (logical).
    ShrI = 0x09 => Imm,
    /// `dst = (src as i32) >> (imm & 31)` (arithmetic).
    SarI = 0x0A => Imm,
    /// `dst = mem32[src + imm]` (byte address, word-aligned access).
    LoadW = 0x0B => Imm,
    /// `mem32[dst + imm] = src` (note: `dst` is the address base).
    StoreW = 0x0C => Imm,
    /// `dst = mem8[src + imm]` (zero-extended).
    LoadB = 0x0D => Imm,
    /// `mem8[dst + imm] = src & 0xFF`.
    StoreB = 0x0E => Imm,
    /// Set the symbol-size register to `imm` bits (1–8, or 32).
    SetSym = 0x0F => Imm,
    /// Hardware-folded symbol-size update used by SsT-mode programs;
    /// zero cycle cost (models per-transition dispatch width).
    SetSymT = 0x10 => Imm,
    /// Set the lane's window base register to `src + imm` words
    /// (restricted addressing, paper §3.2.4).
    SetBase = 0x11 => Imm,
    /// Set the action-base register (scaled-offset attach addressing).
    SetABase = 0x12 => Imm,
    /// Set the action-scale register (scaled-offset attach addressing).
    SetAScale = 0x13 => Imm,
    /// `dst = (src == imm) ? 1 : 0`.
    SEqI = 0x14 => Imm,
    /// `dst = ((src as i32) < imm) ? 1 : 0`.
    SLtI = 0x15 => Imm,
    /// `dst = (src < imm as u32) ? 1 : 0` (unsigned).
    SLtUI = 0x16 => Imm,
    /// Consume `imm` bits from the stream into `dst` (MSB-first).
    ReadBits = 0x17 => Imm,
    /// `dst = mem32[imm + src*4] += 1` — histogram bin bump (read-modify-
    /// write, 2 cycles).
    BumpW = 0x18 => Imm,
    /// Emit `(src + imm) & 0xFF` to the lane output stream.
    EmitB = 0x19 => Imm,
    /// Emit the 4 bytes of `src` (little-endian) to the lane output stream.
    EmitW = 0x1A => Imm,
    /// Skip `src + imm` bytes of input stream.
    SkipB = 0x1B => Imm,
    /// Put `imm` bits back into the stream (action-level refill).
    RefillI = 0x1C => Imm,
    /// Record a match report `(pattern = imm, position = stream byte index)`.
    Report = 0x1D => Imm,
    /// Set the lane accept flag to `imm != 0`.
    Accept = 0x1E => Imm,
    /// Halt the lane with code `imm`.
    Halt = 0x1F => Imm,
    /// `dst = crc32_step(dst, src & 0xFF)` — one byte folded into a running
    /// CRC-32 (Castagnoli polynomial).
    Crc = 0x20 => Imm,
    /// `dst = hash(src) & ((1 << imm) - 1)` — multiplicative hash truncated
    /// to `imm` bits (paper §3.2.5 customized hash action; 1 cycle).
    Hash = 0x21 => Imm,
    /// `dst = (dst ^ src) * 0x01000193` — one FNV-1a step folding a
    /// symbol into a running hash (the "fast hashes of the input
    /// symbol" action of §3.2.5; 1 cycle).
    FnvB = 0x28 => Imm,
    /// `dst = stream byte index + imm` (alias of reading R15).
    InIdx = 0x22 => Imm,
    /// `dst = number of leading zeros of src` (imm unused).
    Clz = 0x23 => Imm,
    /// `dst = popcount(src)` (imm unused).
    Popcnt = 0x24 => Imm,
    /// `dst = output byte count + imm` — output stream cursor.
    OutIdx = 0x25 => Imm,
    /// Peek `imm` bits from the stream into `dst` without consuming.
    PeekBits = 0x26 => Imm,
    /// `dst = (stream exhausted) ? 1 : 0` (imm unused).
    AtEof = 0x27 => Imm,

    // ---- Imm2 format (0x40..=0x5F): dst, src, imm1(4), imm2(12) ----
    /// Emit the low `imm1` bits of `src` to the bit-packed output
    /// (MSB-first); `imm2` unused.
    EmitBits = 0x40 => Imm2,
    /// `dst = (src >> imm1) & ((1 << imm2-bit-count...) )` — extract
    /// field: shift right by `imm1`, mask to `imm2 & 0x1F` bits.
    Extract = 0x41 => Imm2,
    /// `dst = (src << imm1) | (dst & ((1 << imm1) - 1))`... deposit:
    /// shift `src` left by `imm1` and OR into `dst`.
    Deposit = 0x42 => Imm2,
    /// Conditional skip: if `src == 0`, skip the next `imm1` actions in
    /// this block (bounded micro-predication inside an action block).
    SkipIfZ = 0x43 => Imm2,
    /// Conditional skip: if `src != 0`, skip the next `imm1` actions.
    SkipIfNz = 0x44 => Imm2,

    // ---- Reg format (0x60..=0x7F): dst, ref, src ----
    /// `dst = src`.
    Mov = 0x60 => Reg,
    /// `dst = ref + src`.
    Add = 0x61 => Reg,
    /// `dst = ref - src`.
    Sub = 0x62 => Reg,
    /// `dst = ref & src`.
    And = 0x63 => Reg,
    /// `dst = ref | src`.
    Or = 0x64 => Reg,
    /// `dst = ref ^ src`.
    Xor = 0x65 => Reg,
    /// `dst = ref << (src & 31)`.
    Shl = 0x66 => Reg,
    /// `dst = ref >> (src & 31)` (logical).
    Shr = 0x67 => Reg,
    /// `dst = ref * src` (wrapping).
    Mul = 0x68 => Reg,
    /// `dst = min(ref, src)` (unsigned).
    Min = 0x69 => Reg,
    /// `dst = max(ref, src)` (unsigned).
    Max = 0x6A => Reg,
    /// `dst = (ref == src) ? 1 : 0`.
    SEq = 0x6B => Reg,
    /// `dst = ((ref as i32) < (src as i32)) ? 1 : 0`.
    SLt = 0x6C => Reg,
    /// `dst = (ref < src) ? 1 : 0` (unsigned).
    SLtU = 0x6D => Reg,
    /// `dst = if ref != 0 { src } else { dst }` — conditional move.
    Sel = 0x6E => Reg,
    /// `dst = length of the common byte prefix of mem[ref..] and
    /// mem[src..]`, capped by `R14` (the loop-limit register). The paper's
    /// customized *loop-compare* action; costs `1 + ceil(len/8)` cycles.
    LoopCmp = 0x6F => Reg,
    /// Copy `src` bytes from `mem[ref..]` to `mem[dst..]`; `dst`/`ref` are
    /// byte addresses held in the named registers. The paper's customized
    /// *loop-copy* action; costs `1 + ceil(n/8)` cycles. Overlapping
    /// forward copies replicate (RLE-style), as decompressors require.
    LoopCpy = 0x70 => Reg,
    /// Copy `src` bytes from `mem[ref..]` to the lane output stream.
    LoopOut = 0x71 => Reg,
    /// Copy `src` bytes from the *output history* starting `ref` bytes
    /// back from the current output cursor, to the output stream
    /// (overlap-replicating) — the decompression copy primitive.
    LoopBack = 0x72 => Reg,
    /// Copy `src` bytes from the input window at byte offset `ref` to the
    /// output stream (non-consuming; the cursor is available in R15).
    LoopIn = 0x73 => Reg,
    /// `dst = one input byte at stream offset `ref + src`` without
    /// consuming (random access into the stream window).
    PeekAt = 0x74 => Reg,
    /// `dst = ref - src` saturating at 0 (unsigned).
    SubSat = 0x75 => Reg,
    /// `dst = hash(ref ^ (src * 0x9E3779B9))` — two-operand hash combine.
    Hash2 = 0x76 => Reg,
    /// `dst = length of the common byte prefix of mem[ref..] (window-
    /// relative) and the input window at offset src`, capped by `R14` —
    /// the memory-vs-stream compare used by dictionary probing.
    LoopCmpM = 0x77 => Reg,
    /// `dst = 4 little-endian bytes of the input window at offset
    /// `ref + src`` (non-consuming) — the word-granular stream-buffer
    /// read behind the compression hash (symbol sizes "1–8, 32 bits").
    PeekW = 0x78 => Reg,
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A decoded action word.
///
/// Field meaning depends on [`Opcode::format`]; unused fields are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    /// The operation.
    pub op: Opcode,
    /// Terminates the action block when set.
    pub last: bool,
    /// Destination register.
    pub dst: Reg,
    /// Reference register (Reg format only).
    pub rref: Reg,
    /// Source register.
    pub src: Reg,
    /// Immediate: 16 bits (Imm), or 12 bits in `imm2` position (Imm2).
    pub imm: u16,
    /// Secondary 4-bit immediate (Imm2 format only).
    pub imm1: u8,
}

impl Action {
    /// Builds an Imm-format action.
    pub fn imm(op: Opcode, dst: Reg, src: Reg, imm: u16) -> Self {
        debug_assert_eq!(op.format(), ActionFormat::Imm, "{op} is not Imm-format");
        Action {
            op,
            last: false,
            dst,
            rref: Reg::R0,
            src,
            imm,
            imm1: 0,
        }
    }

    /// Builds an Imm2-format action.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `imm1` exceeds 4 bits or `imm2` exceeds 12 bits.
    pub fn imm2(op: Opcode, dst: Reg, src: Reg, imm1: u8, imm2: u16) -> Self {
        debug_assert_eq!(op.format(), ActionFormat::Imm2, "{op} is not Imm2-format");
        debug_assert!(imm1 <= 0xF, "imm1 {imm1} exceeds 4 bits");
        debug_assert!(imm2 <= 0xFFF, "imm2 {imm2} exceeds 12 bits");
        Action {
            op,
            last: false,
            dst,
            rref: Reg::R0,
            src,
            imm: imm2,
            imm1,
        }
    }

    /// Builds a Reg-format action.
    pub fn reg(op: Opcode, dst: Reg, rref: Reg, src: Reg) -> Self {
        debug_assert_eq!(op.format(), ActionFormat::Reg, "{op} is not Reg-format");
        Action {
            op,
            last: false,
            dst,
            rref,
            src,
            imm: 0,
            imm1: 0,
        }
    }

    /// Returns a copy with the `last` (end-of-block) bit set.
    pub fn ending(mut self) -> Self {
        self.last = true;
        self
    }

    /// Packs into the 32-bit machine encoding.
    pub fn encode(&self) -> Word {
        let base = (u32::from(self.op as u8) << 25)
            | (u32::from(self.last) << 24)
            | (u32::from(self.dst.index()) << 20);
        match self.op.format() {
            ActionFormat::Imm => base | (u32::from(self.src.index()) << 16) | u32::from(self.imm),
            ActionFormat::Imm2 => {
                base | (u32::from(self.src.index()) << 16)
                    | (u32::from(self.imm1) << 12)
                    | u32::from(self.imm & 0xFFF)
            }
            ActionFormat::Reg => {
                base | (u32::from(self.rref.index()) << 16) | (u32::from(self.src.index()) << 12)
            }
        }
    }

    /// Unpacks from the 32-bit machine encoding.
    ///
    /// Returns `None` for undefined opcodes.
    pub fn decode(raw: Word) -> Option<Self> {
        let op = Opcode::from_code((raw >> 25) as u8)?;
        let last = (raw >> 24) & 1 == 1;
        let dst = Reg::new(((raw >> 20) & 0xF) as u8);
        Some(match op.format() {
            ActionFormat::Imm => Action {
                op,
                last,
                dst,
                rref: Reg::R0,
                src: Reg::new(((raw >> 16) & 0xF) as u8),
                imm: (raw & 0xFFFF) as u16,
                imm1: 0,
            },
            ActionFormat::Imm2 => Action {
                op,
                last,
                dst,
                rref: Reg::R0,
                src: Reg::new(((raw >> 16) & 0xF) as u8),
                imm: (raw & 0xFFF) as u16,
                imm1: ((raw >> 12) & 0xF) as u8,
            },
            ActionFormat::Reg => Action {
                op,
                last,
                dst,
                rref: Reg::new(((raw >> 16) & 0xF) as u8),
                src: Reg::new(((raw >> 12) & 0xF) as u8),
                imm: 0,
                imm1: 0,
            },
        })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op.format() {
            ActionFormat::Imm => {
                write!(f, "{} {}, {}, #{}", self.op, self.dst, self.src, self.imm)?
            }
            ActionFormat::Imm2 => write!(
                f,
                "{} {}, {}, #{}, #{}",
                self.op, self.dst, self.src, self.imm1, self.imm
            )?,
            ActionFormat::Reg => {
                write!(f, "{} {}, {}, {}", self.op, self.dst, self.rref, self.src)?
            }
        }
        if self.last {
            write!(f, " !")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn opcode_count_is_about_fifty() {
        // The paper says "50 actions"; our reconstruction is a modest
        // superset (extra emit/stream plumbing standing in for the DLT
        // engine interface).
        assert!(
            Opcode::ALL.len() >= 45 && Opcode::ALL.len() <= 80,
            "expected ~50 opcodes, found {}",
            Opcode::ALL.len()
        );
    }

    #[test]
    fn formats_follow_opcode_ranges() {
        for &op in Opcode::ALL {
            let code = op as u8;
            let expect = if code < 0x40 {
                ActionFormat::Imm
            } else if code < 0x60 {
                ActionFormat::Imm2
            } else {
                ActionFormat::Reg
            };
            assert_eq!(op.format(), expect, "{op}");
        }
    }

    #[test]
    fn imm_round_trip() {
        let a = Action::imm(Opcode::AddI, Reg::new(3), Reg::new(7), 0xBEEF).ending();
        assert_eq!(Action::decode(a.encode()), Some(a));
    }

    #[test]
    fn imm2_round_trip() {
        let a = Action::imm2(Opcode::EmitBits, Reg::new(1), Reg::new(2), 0xA, 0x123);
        assert_eq!(Action::decode(a.encode()), Some(a));
    }

    #[test]
    fn reg_round_trip() {
        let a = Action::reg(Opcode::LoopCmp, Reg::new(4), Reg::new(5), Reg::new(6)).ending();
        assert_eq!(Action::decode(a.encode()), Some(a));
    }

    #[test]
    fn undefined_opcode_decodes_to_none() {
        assert_eq!(Action::decode(0x7F << 25), None);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Action::reg(Opcode::Add, Reg::new(1), Reg::new(2), Reg::new(3));
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }

    fn arb_opcode() -> impl Strategy<Value = Opcode> {
        (0..Opcode::ALL.len()).prop_map(|i| Opcode::ALL[i])
    }

    proptest! {
        #[test]
        fn prop_any_action_round_trips(
            op in arb_opcode(), last in proptest::bool::ANY,
            d in 0u8..16, r in 0u8..16, s in 0u8..16,
            imm in 0u16..=0xFFFF, imm1 in 0u8..=0xF,
        ) {
            let mut a = match op.format() {
                ActionFormat::Imm => Action::imm(op, Reg::new(d), Reg::new(s), imm),
                ActionFormat::Imm2 => Action::imm2(op, Reg::new(d), Reg::new(s), imm1, imm & 0xFFF),
                ActionFormat::Reg => Action::reg(op, Reg::new(d), Reg::new(r), Reg::new(s)),
            };
            a.last = last;
            prop_assert_eq!(Action::decode(a.encode()), Some(a));
        }

        #[test]
        fn prop_decode_is_total(raw in 0u32..=u32::MAX) {
            // Decode totality: every 32-bit word either decodes to an
            // action whose re-encoding is a decode fixpoint, or is
            // rejected as an undefined opcode — never a panic. This is
            // what lets a lane treat corrupted action words (fault
            // injection, bad images) as LaneStatus::Fault data.
            match Action::decode(raw) {
                Some(a) => prop_assert_eq!(Action::decode(a.encode()), Some(a)),
                None => prop_assert!(Opcode::from_code((raw >> 25) as u8).is_none()),
            }
        }
    }
}

//! # udp-bench — the evaluation harness
//!
//! One binary per paper table/figure regenerates its rows (see
//! DESIGN.md's experiment index and EXPERIMENTS.md for measured-vs-paper
//! results):
//!
//! ```text
//! cargo run --release -p udp-bench --bin fig01_etl_load
//! cargo run --release -p udp-bench --bin fig05_branches
//! cargo run --release -p udp-bench --bin fig08_symbols
//! cargo run --release -p udp-bench --bin fig09_sources
//! cargo run --release -p udp-bench --bin fig11_addressing
//! cargo run --release -p udp-bench --bin fig13_csv          # …through fig20
//! cargo run --release -p udp-bench --bin fig21_overall      # + fig22 columns
//! cargo run --release -p udp-bench --bin tab01_coverage
//! cargo run --release -p udp-bench --bin tab03_power_area
//! cargo run --release -p udp-bench --bin tab04_accelerators
//! ```
//!
//! Criterion benches (`cargo bench`) cover the CPU baselines and the
//! simulator's own speed, and `--bin hostperf` reports the *host-side*
//! simulation throughput (how fast the simulator itself chews input,
//! as opposed to the modeled device rates above).
//!
//! Setting `UDP_PARALLEL=1` makes every kernel runner execute each
//! wave's lanes on host threads (`UdpRunOptions::parallel`); modeled
//! cycles/energy/conflict numbers are bit-identical, only host
//! wall-clock changes.
//!
//! Methodology (paper §4.4): CPU rates are wall-clock single-thread on
//! the host; the 8-thread figure is the paper's own optimistic 8×
//! estimate; CPU power is the 80 W TDP constant; UDP rates come from
//! the cycle-accurate simulator at 1 GHz and 0.864 W.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};
use udp::kernels::UdpKernelReport;

pub use udp::kernels::parallel_from_env;

/// CPU threads assumed for device-level comparisons (§4.4).
pub const CPU_THREADS: f64 = 8.0;
/// CPU TDP in watts.
pub const CPU_WATTS: f64 = 80.0;
/// UDP system power in watts.
pub const UDP_WATTS: f64 = udp_sim::UDP_SYSTEM_WATTS;

/// Measures a single-thread CPU kernel: runs `f` repeatedly for at
/// least `min_seconds` (and at least twice), returning MB/s over
/// `bytes` of input per run. The closure must do the full work each
/// call; use `std::hint::black_box` inside to defeat hoisting.
pub fn cpu_rate_mbps<F: FnMut()>(bytes: usize, min_seconds: f64, mut f: F) -> f64 {
    // Warm-up.
    f();
    let start = Instant::now();
    let mut runs = 0u32;
    while runs < 2 || start.elapsed().as_secs_f64() < min_seconds {
        f();
        runs += 1;
    }
    let s = start.elapsed().as_secs_f64() / f64::from(runs);
    bytes as f64 / s / 1e6
}

/// Host-side simulation throughput: `bytes` of modeled input chewed in
/// `elapsed` of host wall-clock, in MB/s. This measures the simulator
/// itself (the `hostperf` binary), not the modeled device.
pub fn host_rate_mbps(bytes: usize, elapsed: Duration) -> f64 {
    let s = elapsed.as_secs_f64();
    if s <= 0.0 {
        return 0.0;
    }
    bytes as f64 / s / 1e6
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// One CPU-vs-UDP comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Dataset / configuration label.
    pub dataset: String,
    /// Measured single-thread CPU rate, MB/s.
    pub cpu_1t_mbps: f64,
    /// The UDP-side report.
    pub udp: UdpKernelReport,
}

impl Comparison {
    /// One UDP lane vs one CPU thread (the per-figure "Rate" panel).
    pub fn lane_speedup(&self) -> f64 {
        self.udp.lane_rate_mbps / self.cpu_1t_mbps
    }

    /// Full device vs 8 CPU threads (Figure 21).
    pub fn device_speedup(&self) -> f64 {
        self.udp.throughput_mbps / (self.cpu_1t_mbps * CPU_THREADS)
    }

    /// Throughput-per-watt ratio (Figure 22).
    pub fn perf_per_watt_ratio(&self) -> f64 {
        (self.udp.throughput_mbps / UDP_WATTS) / (self.cpu_1t_mbps * CPU_THREADS / CPU_WATTS)
    }
}

/// Prints the standard per-figure table.
pub fn print_comparison_table(title: &str, rows: &[Comparison]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>12} {:>12} {:>8} {:>6} {:>14} {:>10} {:>12}",
        "dataset",
        "cpu-1t MB/s",
        "lane MB/s",
        "lane-x",
        "lanes",
        "device MB/s",
        "dev-x/8t",
        "perf/W-x"
    );
    for r in rows {
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>8.2} {:>6} {:>14.0} {:>10.1} {:>12.0}",
            r.dataset,
            r.cpu_1t_mbps,
            r.udp.lane_rate_mbps,
            r.lane_speedup(),
            r.udp.lanes,
            r.udp.throughput_mbps,
            r.device_speedup(),
            r.perf_per_watt_ratio()
        );
    }
    let sp: Vec<f64> = rows.iter().map(Comparison::device_speedup).collect();
    let pw: Vec<f64> = rows.iter().map(Comparison::perf_per_watt_ratio).collect();
    println!(
        "geomean: device speedup {:.1}x, perf/W {:.0}x",
        geomean(&sp),
        geomean(&pw)
    );
}

/// Standard workload bundle shared by the per-kernel figures so that
/// fig13…fig20 and fig21/fig22 measure identical configurations.
pub mod suite {
    use super::*;
    use udp::kernels;
    use udp_codecs::{CsvParser, Histogram, HuffmanTree, TriggerLut};
    use udp_workloads as w;

    /// Bytes of input handed to each UDP lane (duplicated across lanes).
    pub const LANE_BYTES: usize = 24 * 1024;
    /// Bytes used for CPU wall-clock measurement.
    pub const CPU_BYTES: usize = 1 << 20;
    /// Minimum wall-clock sampling window per CPU measurement.
    pub const MIN_SECS: f64 = 0.05;

    /// All kernel comparisons, in paper order (Figure 21's x-axis).
    pub fn run_all() -> Vec<(String, Vec<Comparison>)> {
        vec![
            ("CSV Parsing".into(), csv()),
            ("Huffman Encoding".into(), huffman_encode()),
            ("Huffman Decoding".into(), huffman_decode()),
            ("Pattern Matching".into(), patterns()),
            ("Dictionary".into(), dictionary()),
            ("Dictionary-RLE".into(), dictionary_rle()),
            ("Histogram".into(), histogram()),
            ("Snappy Compression".into(), snappy_compress()),
            ("Snappy Decompression".into(), snappy_decompress()),
            ("Signal Triggering".into(), trigger()),
        ]
    }

    /// CSV parsing on Crimes/Taxi/FoodInspection-like data (Figure 13).
    pub fn csv() -> Vec<Comparison> {
        let sets = [
            ("crimes", w::crimes_csv(CPU_BYTES, 1)),
            ("taxi", w::taxi_csv(CPU_BYTES, 2)),
            ("food-inspection", w::food_inspection_csv(CPU_BYTES, 3)),
        ];
        sets.into_iter()
            .map(|(name, data)| {
                let cpu = cpu_rate_mbps(data.len(), MIN_SECS, || {
                    std::hint::black_box(CsvParser::new().parse_stats(&data));
                });
                let lane_data = align_newline(&data, LANE_BYTES);
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp: kernels::csv::run(lane_data),
                }
            })
            .collect()
    }

    fn align_newline(data: &[u8], want: usize) -> &[u8] {
        let end = data[..want.min(data.len())]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(data.len(), |p| p + 1);
        &data[..end]
    }

    fn text_corpora() -> Vec<(&'static str, Vec<u8>)> {
        vec![
            (
                "canterbury-low",
                w::canterbury_like(w::Entropy::Low, CPU_BYTES, 4),
            ),
            (
                "canterbury-med",
                w::canterbury_like(w::Entropy::Medium, CPU_BYTES, 5),
            ),
            ("bdbench-crawl", w::bdbench_block(0, CPU_BYTES, 6)),
            ("bdbench-rank", w::bdbench_block(1, CPU_BYTES, 7)),
            ("bdbench-user", w::bdbench_block(2, CPU_BYTES, 8)),
        ]
    }

    /// Huffman encoding (Figure 14).
    pub fn huffman_encode() -> Vec<Comparison> {
        text_corpora()
            .into_iter()
            .map(|(name, data)| {
                let tree = HuffmanTree::from_data(&data);
                let cpu = cpu_rate_mbps(data.len(), MIN_SECS, || {
                    std::hint::black_box(tree.encode(&data));
                });
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp: kernels::huffman::run_encode(&data[..LANE_BYTES]),
                }
            })
            .collect()
    }

    /// Huffman decoding (Figure 15).
    pub fn huffman_decode() -> Vec<Comparison> {
        text_corpora()
            .into_iter()
            .map(|(name, data)| {
                let tree = HuffmanTree::from_data(&data);
                let (bits, nbits) = tree.encode(&data);
                let cpu = cpu_rate_mbps(bits.len(), MIN_SECS, || {
                    std::hint::black_box(tree.decode(&bits, nbits).expect("decodes"));
                });
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp: kernels::huffman::run_decode(&data[..LANE_BYTES]),
                }
            })
            .collect()
    }

    /// Pattern matching: ADFA strings + DFA and NFA regexes (Figure 16).
    pub fn patterns() -> Vec<Comparison> {
        let pats = w::nids_literals(64, 9);
        let (trace, _) = w::traffic_with_matches(&pats, CPU_BYTES, 700, 9);
        let adfa = udp_automata::Adfa::build(&pats);
        let cpu_simple = cpu_rate_mbps(trace.len(), MIN_SECS, || {
            std::hint::black_box(adfa.find_all(&trace));
        });
        let regexes = w::nids_regexes(8, 10);
        let refs: Vec<&str> = regexes.iter().map(String::as_str).collect();
        let asts: Vec<udp_automata::Regex> = refs
            .iter()
            .map(|p| udp_automata::Regex::parse(p).expect("generated regexes parse"))
            .collect();
        let dfa = udp_automata::Dfa::determinize(&udp_automata::Nfa::scanner(&asts)).minimize();
        let cpu_complex = cpu_rate_mbps(trace.len(), MIN_SECS, || {
            std::hint::black_box(dfa.find_all(&trace));
        });
        vec![
            Comparison {
                dataset: "simple (ADFA)".to_string(),
                cpu_1t_mbps: cpu_simple,
                udp: kernels::patterns::run_adfa(&pats, &trace[..LANE_BYTES]),
            },
            Comparison {
                dataset: "complex (DFA)".to_string(),
                cpu_1t_mbps: cpu_complex,
                udp: kernels::patterns::run_dfa(&refs, &trace[..LANE_BYTES]),
            },
            Comparison {
                dataset: "complex (NFA)".to_string(),
                cpu_1t_mbps: cpu_complex,
                udp: kernels::patterns::run_nfa_model(&refs, &trace[..LANE_BYTES / 2]),
            },
        ]
    }

    fn crimes_column(idx: usize, bytes: usize, seed: u64) -> Vec<Vec<u8>> {
        let data = w::crimes_csv(bytes, seed);
        CsvParser::new()
            .parse(&data)
            .into_iter()
            .skip(1)
            .map(|mut r| r.swap_remove(idx))
            .collect()
    }

    /// Dictionary encoding on Crimes attributes (Figure 17).
    pub fn dictionary() -> Vec<Comparison> {
        [("arrest", 7usize), ("district", 9), ("location-desc", 6)]
            .into_iter()
            .map(|(name, idx)| {
                let col = crimes_column(idx, CPU_BYTES / 2, 11);
                let cpu = {
                    let bytes: usize = col.iter().map(|v| v.len() + 1).sum();
                    cpu_rate_mbps(bytes, MIN_SECS, || {
                        let mut e = udp_codecs::DictionaryEncoder::default();
                        std::hint::black_box(e.encode_column(&col));
                    })
                };
                let small: Vec<Vec<u8>> = col.iter().take(2000).cloned().collect();
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp: kernels::dict::run(&small),
                }
            })
            .collect()
    }

    /// Dictionary-RLE on the same attributes.
    pub fn dictionary_rle() -> Vec<Comparison> {
        [("arrest", 7usize), ("location-desc", 6)]
            .into_iter()
            .map(|(name, idx)| {
                let col = crimes_column(idx, CPU_BYTES / 2, 12);
                let cpu = {
                    let bytes: usize = col.iter().map(|v| v.len() + 1).sum();
                    cpu_rate_mbps(bytes, MIN_SECS, || {
                        let mut e = udp_codecs::DictRleEncoder::new();
                        std::hint::black_box(e.encode_column(&col));
                    })
                };
                let small: Vec<Vec<u8>> = col.iter().take(2000).cloned().collect();
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp: kernels::dict::run_rle(&small),
                }
            })
            .collect()
    }

    /// Histogramming Crimes.Lat/Lon and Taxi.Fare (Figure 18).
    pub fn histogram() -> Vec<Comparison> {
        let n = CPU_BYTES / 4;
        let cases = [
            (
                "crimes.latitude/10",
                w::latitude_stream(n, 13),
                Histogram::uniform(41.6, 42.0, 10),
            ),
            (
                "crimes.longitude/10",
                w::longitude_stream(n, 14),
                Histogram::uniform(-87.9, -87.5, 10),
            ),
            (
                "taxi.fare/4",
                w::fare_stream(n, 15),
                Histogram::uniform(0.0, 100.0, 4),
            ),
        ];
        cases
            .into_iter()
            .map(|(name, le, hist)| {
                let cpu = cpu_rate_mbps(le.len(), MIN_SECS, || {
                    let mut h = Histogram::with_edges(hist.edges().to_vec());
                    h.add_le_bytes(&le);
                    std::hint::black_box(h.counts()[0]);
                });
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp: kernels::histogram::run(&le[..LANE_BYTES], &hist),
                }
            })
            .collect()
    }

    /// Snappy compression (Figure 19).
    pub fn snappy_compress() -> Vec<Comparison> {
        text_corpora()
            .into_iter()
            .map(|(name, data)| {
                let cpu = cpu_rate_mbps(data.len(), MIN_SECS, || {
                    std::hint::black_box(udp_codecs::snappy_compress(&data));
                });
                let (udp, _) = kernels::snappy::run_compress(&data[..LANE_BYTES]);
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp,
                }
            })
            .collect()
    }

    /// Snappy decompression (Figure 20).
    pub fn snappy_decompress() -> Vec<Comparison> {
        text_corpora()
            .into_iter()
            .map(|(name, data)| {
                let stream = udp_codecs::snappy_compress(&data);
                let cpu = cpu_rate_mbps(stream.len(), MIN_SECS, || {
                    std::hint::black_box(udp_codecs::snappy_decompress(&stream).expect("valid"));
                });
                Comparison {
                    dataset: name.to_string(),
                    cpu_1t_mbps: cpu,
                    udp: kernels::snappy::run_decompress(&data[..LANE_BYTES]),
                }
            })
            .collect()
    }

    /// Signal triggering, FSMs p2–p13 (§5.7).
    pub fn trigger() -> Vec<Comparison> {
        [2u32, 5, 9, 13]
            .into_iter()
            .map(|width| {
                let (samples, _) = w::pulsed_waveform(CPU_BYTES, &[width], 40, 16);
                let lut = TriggerLut::build(udp_codecs::TriggerFsm::new(64, 192, width));
                let cpu = cpu_rate_mbps(samples.len(), MIN_SECS, || {
                    std::hint::black_box(lut.run(&samples));
                });
                Comparison {
                    dataset: format!("p{width}"),
                    cpu_1t_mbps: cpu,
                    udp: kernels::trigger::run(width, &samples[..LANE_BYTES]),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn cpu_rate_is_positive() {
        let data = vec![1u8; 100_000];
        let r = cpu_rate_mbps(data.len(), 0.01, || {
            std::hint::black_box(data.iter().map(|&b| b as u64).sum::<u64>());
        });
        assert!(r > 0.0);
    }

    #[test]
    fn comparison_math() {
        let udp = UdpKernelReport {
            name: "x".into(),
            lane_rate_mbps: 400.0,
            throughput_mbps: 25_600.0,
            lanes: 64,
            banks_per_lane: 1,
            wall_cycles: 1,
            bytes_in: 1,
            code_bytes: 1,
        };
        let c = Comparison {
            dataset: "d".into(),
            cpu_1t_mbps: 100.0,
            udp,
        };
        assert!((c.lane_speedup() - 4.0).abs() < 1e-12);
        assert!((c.device_speedup() - 32.0).abs() < 1e-12);
        // perf/W: (25600/0.86368) / (800/80) ≈ 2964.
        assert!((c.perf_per_watt_ratio() - 2964.0).abs() < 2.0);
    }
}

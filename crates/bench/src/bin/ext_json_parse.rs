//! Extension experiments: JSON and XML tokenization on the UDP
//! (Table 1 lists both among the parsing targets; the paper evaluates
//! only CSV), plus bit-pack encoding (the DAX-Pack family). Same panel
//! format as Figures 13–20.

use udp_bench::{cpu_rate_mbps, print_comparison_table, Comparison};
use udp_codecs::json::JsonTokenizer;
use udp_codecs::xml::XmlTokenizer;
use udp_workloads::{ndjson_events, xml_records};

fn main() {
    let mut rows = Vec::new();
    for (name, seed) in [("ndjson-events-a", 1u64), ("ndjson-events-b", 2)] {
        let data = ndjson_events(1 << 20, seed);
        let cpu = cpu_rate_mbps(data.len(), 0.05, || {
            std::hint::black_box(
                JsonTokenizer::compat()
                    .tokenize(&data)
                    .expect("generator output tokenizes"),
            );
        });
        // Lane input: whole records only.
        let cut = data[..24 * 1024]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(24 * 1024, |p| p + 1);
        rows.push(Comparison {
            dataset: name.to_string(),
            cpu_1t_mbps: cpu,
            udp: udp::kernels::json::run(&data[..cut]),
        });
    }
    print_comparison_table("Extension: JSON tokenization (beyond the paper)", &rows);

    // XML tokenization (the PowerEN row's format, Table 1 / Table 4).
    let mut rows = Vec::new();
    for (name, seed) in [("xml-orders-a", 11u64), ("xml-orders-b", 12)] {
        let data = xml_records(1 << 20, seed);
        let cpu = cpu_rate_mbps(data.len(), 0.05, || {
            std::hint::black_box(
                XmlTokenizer::compat()
                    .tokenize(&data)
                    .expect("generator output tokenizes"),
            );
        });
        // Lane input: whole <batch> documents only.
        let needle = b"</batch>\n";
        let cut = data[..32 * 1024]
            .windows(needle.len())
            .rposition(|w| w == needle)
            .map(|p| p + needle.len())
            .expect("at least one complete batch");
        rows.push(Comparison {
            dataset: name.to_string(),
            cpu_1t_mbps: cpu,
            udp: udp::kernels::xml::run(&data[..cut]),
        });
    }
    print_comparison_table("Extension: XML tokenization (beyond the paper)", &rows);

    // Bit-pack, while we're in Table 1's encoding column.
    let codes: Vec<u8> = (0..32_768u32).map(|i| ((i * 7) % 29) as u8).collect();
    let width = udp_codecs::bits_needed(&codes.iter().map(|&c| u32::from(c)).collect::<Vec<_>>());
    let enc = udp::kernels::bitpack::run_encode(&codes[..24 * 1024], width);
    let packed = udp_codecs::bitpack_encode(
        &codes.iter().map(|&c| u32::from(c)).collect::<Vec<_>>(),
        width,
    );
    let dec = udp::kernels::bitpack::run_decode(
        &packed[..12 * 1024],
        width,
        12 * 1024 * 8 / width as usize,
    );
    println!(
        "\nExtension: bit-pack ({width}-bit codes): encode {:.0} MB/s/lane, decode {:.0} MB/s/lane",
        enc.lane_rate_mbps, dec.lane_rate_mbps
    );
}

//! Seeded service-chaos fuzzer for the `udp-serve` runtime
//! (DESIGN.md §10.6).
//!
//! Replays a deterministic [`udp_fault::serve`] plan — overload bursts,
//! mid-job client disconnects, stalled socket readers, poison tenants —
//! against a live multi-tenant runtime and checks the service
//! invariant: hostile load surfaces only as typed `ServeError` values;
//! the runtime never panics, never hangs a client, quarantines only the
//! offending tenant, and keeps clean tenants' outputs byte-identical to
//! the software reference.
//!
//! ```text
//! serve_fuzz [--iters N] [--seed 0xHEX|N] [--smoke] [--json]
//! ```
//!
//! Prints the machine-readable `key=value` summary and exits nonzero on
//! any violation. `--smoke` runs one cycle of every chaos mode (the CI
//! gate); `--json` appends one JSON object per mode to
//! `results/BENCH_serve_fuzz.json`. The backend is inherited from
//! `UDP_SIM_BACKEND`, so CI's backend matrix re-runs the whole plan on
//! the compiled engine too.

use std::fmt::Write as _;
use udp_fault::serve::{run_serve_plan, ServeChaosMode, ServeFuzzSummary};

fn render_json(summary: &ServeFuzzSummary) -> String {
    let mut s = String::new();
    for (mode, st) in &summary.stats {
        let _ = writeln!(
            s,
            "{{\"mode\":\"{}\",\"runs\":{},\"violations\":{},\"completed\":{},\
             \"shed\":{},\"quarantined\":{},\"dropped\":{}}}",
            mode.name(),
            st.runs,
            st.violations,
            st.completed,
            st.shed,
            st.quarantined,
            st.dropped,
        );
    }
    s
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut iters: u64 = 32;
    let mut seed: u64 = 0x5EED5;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" => iters = ServeChaosMode::ALL.len() as u64,
            "--iters" => {
                iters = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--iters needs a number");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                seed = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number (decimal or 0x-hex)");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!("usage: serve_fuzz [--iters N] [--seed 0xHEX|N] [--smoke] [--json]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let summary = run_serve_plan(seed, iters);
    print!("{summary}");
    if json {
        let payload = render_json(&summary);
        let path = "results/BENCH_serve_fuzz.json";
        if let Err(e) =
            std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &payload))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("json: {path}");
        }
    }
    if summary.panics() > 0 {
        eprintln!(
            "FAIL: {} service invariant violation(s) — replay with --seed {:#x}",
            summary.panics(),
            seed
        );
        std::process::exit(1);
    }
    println!("ok: service invariant held for all {iters} cases");
}

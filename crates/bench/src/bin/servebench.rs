//! Service-runtime throughput/latency benchmark (DESIGN.md §10.7).
//!
//! Drives the `udp-serve` runtime the way tenants do — concurrent
//! client threads, each submitting a stream of jobs over the in-process
//! API and waiting for results — and records aggregate throughput plus
//! the client-observed latency distribution (p50/p99). Two workload
//! shapes:
//!
//! * `small-rows` — many tiny CSV rows (the interactive ETL shape,
//!   where admission/wave-batching overhead dominates);
//! * `bulk-chunks` — fewer multi-KB chunks (the streaming shape, where
//!   device time dominates and batching should approach raw device
//!   throughput).
//!
//! Results go to stdout and, with `--json`, one JSON object per
//! scenario to `results/BENCH_serve.json`. Non-gating: the numbers are
//! a trajectory, not a pass/fail (scripts/ci.sh runs it after the
//! gates). The backend is inherited from `UDP_SIM_BACKEND`.
//!
//! ```text
//! servebench [--tenants N] [--jobs N] [--json]
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use udp_serve::{JobSpec, ServeConfig, ServeRuntime, Shutdown, TenantQuota};
use udp_workloads::lineitem_csv;

struct Scenario {
    name: &'static str,
    payload_bytes: usize,
    jobs_per_tenant: usize,
}

struct Outcome {
    name: &'static str,
    tenants: usize,
    jobs: usize,
    bytes: u64,
    wall: Duration,
    completed: u64,
    errors: u64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Outcome {
    fn throughput_mbps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / self.wall.as_secs_f64()
    }
}

fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn run_scenario(sc: &Scenario, tenants: usize) -> Outcome {
    let rt = ServeRuntime::start_with_builtin_kernels(ServeConfig {
        queue_capacity: tenants * sc.jobs_per_tenant + 64,
        default_quota: TenantQuota {
            max_queued: sc.jobs_per_tenant + 8,
            cycle_budget: None,
        },
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| panic!("runtime failed to start: {e}"));
    let start = Instant::now();
    let mut threads = Vec::new();
    for t in 0..tenants {
        let handle = rt.handle();
        let payload_bytes = sc.payload_bytes;
        let jobs = sc.jobs_per_tenant;
        threads.push(std::thread::spawn(move || {
            let tenant = format!("tenant{t}");
            let mut latencies_ms = Vec::with_capacity(jobs);
            let mut bytes = 0u64;
            let mut completed = 0u64;
            let mut errors = 0u64;
            for j in 0..jobs {
                let payload = lineitem_csv(payload_bytes, (t * jobs + j) as u64);
                bytes += payload.len() as u64;
                let t0 = Instant::now();
                match handle
                    .submit(JobSpec::new(tenant.clone(), "csv", payload))
                    .map(|ticket| ticket.wait())
                {
                    Ok(Ok(_)) => {
                        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        completed += 1;
                    }
                    _ => errors += 1,
                }
            }
            (latencies_ms, bytes, completed, errors)
        }));
    }
    let mut latencies_ms = Vec::new();
    let mut bytes = 0u64;
    let mut completed = 0u64;
    let mut errors = 0u64;
    for th in threads {
        if let Ok((lat, b, c, e)) = th.join() {
            latencies_ms.extend(lat);
            bytes += b;
            completed += c;
            errors += e;
        } else {
            errors += 1;
        }
    }
    let wall = start.elapsed();
    rt.shutdown(Shutdown::Drain);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Outcome {
        name: sc.name,
        tenants,
        jobs: tenants * sc.jobs_per_tenant,
        bytes,
        wall,
        completed,
        errors,
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
    }
}

fn main() {
    let mut tenants: usize = 4;
    let mut jobs: Option<usize> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--tenants" => {
                tenants = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tenants needs a number");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                jobs = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a number");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: servebench [--tenants N] [--jobs N] [--json]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let scenarios = [
        Scenario {
            name: "small-rows",
            payload_bytes: 128,
            jobs_per_tenant: jobs.unwrap_or(64),
        },
        Scenario {
            name: "bulk-chunks",
            payload_bytes: 8 * 1024,
            jobs_per_tenant: jobs.unwrap_or(64).div_ceil(2),
        },
    ];
    let mut text = String::new();
    let mut json_lines = String::new();
    for sc in &scenarios {
        let o = run_scenario(sc, tenants);
        let line = format!(
            "scenario={} tenants={} jobs={} bytes={} wall_ms={:.1} \
             throughput_mbps={:.2} p50_ms={:.3} p99_ms={:.3} completed={} errors={}",
            o.name,
            o.tenants,
            o.jobs,
            o.bytes,
            o.wall.as_secs_f64() * 1e3,
            o.throughput_mbps(),
            o.p50_ms,
            o.p99_ms,
            o.completed,
            o.errors,
        );
        println!("{line}");
        let _ = writeln!(text, "{line}");
        let _ = writeln!(
            json_lines,
            "{{\"scenario\":\"{}\",\"tenants\":{},\"jobs\":{},\"bytes\":{},\
             \"wall_ms\":{:.1},\"throughput_mbps\":{:.2},\"p50_ms\":{:.3},\
             \"p99_ms\":{:.3},\"completed\":{},\"errors\":{}}}",
            o.name,
            o.tenants,
            o.jobs,
            o.bytes,
            o.wall.as_secs_f64() * 1e3,
            o.throughput_mbps(),
            o.p50_ms,
            o.p99_ms,
            o.completed,
            o.errors,
        );
        if o.errors > 0 {
            eprintln!(
                "warning: {} job(s) errored in scenario {} (non-gating)",
                o.errors, o.name
            );
        }
    }
    if json {
        let path = "results/BENCH_serve.json";
        if let Err(e) =
            std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json_lines))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("json: {path}");
        }
    }
}

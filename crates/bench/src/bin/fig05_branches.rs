//! Figure 5: branch-offset (BO), branch-indirect (BI), and multi-way
//! dispatch on the ETL kernels.
//!
//! * 5a — fraction of modeled CPU cycles lost to branch misprediction;
//! * 5b — effective branch rate relative to BO (higher = faster);
//! * 5c — code size for BO/BI (model) and UAP/UDP (assembled images).

use udp_asm::LayoutOptions;
use udp_automata::dfa::DEAD;
use udp_codecs::{Histogram, HuffmanTree};
use udp_cpu_model::codesize;
use udp_cpu_model::kernels::{
    run_csv, run_histogram, run_huffman_decode, run_pattern_match, run_snappy_compress, Approach,
};
use udp_sim::{Lane, LaneConfig};
use udp_workloads as w;

/// Exception edges + default successor per DFA state (the software
/// structure a compiler would emit for a compare ladder).
fn dfa_rows(dfa: &udp_automata::Dfa) -> Vec<(Vec<(u8, u32)>, u32)> {
    (0..dfa.len() as u32)
        .map(|s| {
            let row = dfa.row(s);
            let mut counts = std::collections::HashMap::new();
            for &t in row {
                if t != DEAD {
                    *counts.entry(t).or_insert(0usize) += 1;
                }
            }
            let default = counts.iter().max_by_key(|(_, &c)| c).map_or(0, |(&t, _)| t);
            let edges: Vec<(u8, u32)> = row
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t != DEAD && t != default)
                .map(|(b, &t)| (b as u8, t))
                .collect();
            (edges, default)
        })
        .collect()
}

fn main() {
    let csv_data = w::crimes_csv(512 * 1024, 1);
    let text = w::canterbury_like(w::Entropy::Medium, 512 * 1024, 2);
    let fares = w::fare_stream(64 * 1024, 3);
    let hist = Histogram::uniform(0.0, 100.0, 16);
    let pats = w::nids_literals(48, 4);
    let (trace, _) = w::traffic_with_matches(&pats, 512 * 1024, 700, 4);
    let asts: Vec<udp_automata::Regex> = pats
        .iter()
        .map(|p| udp_automata::Regex::literal(p))
        .collect();
    let dfa = udp_automata::Dfa::determinize(&udp_automata::Nfa::scanner(&asts)).minimize();
    let rows = dfa_rows(&dfa);

    // ---- 5a: misprediction cycle fraction -------------------------
    println!("== Figure 5a: % cycles lost to branch misprediction (modeled Westmere) ==");
    println!("{:<16} {:>8} {:>8}", "kernel", "BO", "BI");
    let runs = [
        (
            "csv",
            run_csv(Approach::BranchOffset, &csv_data),
            run_csv(Approach::BranchIndirect, &csv_data),
        ),
        (
            "huffman-dec",
            run_huffman_decode(Approach::BranchOffset, &text),
            run_huffman_decode(Approach::BranchIndirect, &text),
        ),
        (
            "patterns",
            run_pattern_match(Approach::BranchOffset, &rows, dfa.start(), &trace),
            run_pattern_match(Approach::BranchIndirect, &rows, dfa.start(), &trace),
        ),
        (
            "snappy-comp",
            run_snappy_compress(Approach::BranchOffset, &text),
            run_snappy_compress(Approach::BranchIndirect, &text),
        ),
        (
            "histogram",
            run_histogram(Approach::BranchOffset, &fares, &hist),
            run_histogram(Approach::BranchIndirect, &fares, &hist),
        ),
    ];
    for (name, bo, bi) in &runs {
        println!(
            "{:<16} {:>7.1}% {:>7.1}%",
            name,
            bo.mispredict_fraction * 100.0,
            bi.mispredict_fraction * 100.0
        );
    }

    // ---- 5b: effective branch rate vs BO ---------------------------
    // UDP cycles-per-byte from the simulator on the same data.
    println!("\n== Figure 5b: effective branch rate relative to BO ==");
    println!("{:<16} {:>8} {:>8} {:>8}", "kernel", "BO", "BI", "UDP-MWD");
    let cfg = LaneConfig::default();

    let udp_cpb = {
        let mut v = Vec::new();
        // CSV
        let img = udp_compilers::csv::csv_to_udp()
            .assemble(&LayoutOptions::with_banks(1))
            .expect("csv fits");
        let chunk = &csv_data[..64 * 1024];
        let rep = Lane::run_program(&img, chunk, &cfg);
        v.push(rep.cycles as f64 / rep.bytes_consumed as f64);
        // Huffman decode (SsRef)
        let tree = HuffmanTree::from_data(&text);
        let (bits, nbits) = tree.encode(&text[..64 * 1024]);
        let padded = udp_compilers::huffman::pad_for_stride(
            &bits,
            nbits,
            udp_compilers::huffman::ssref_stride(&tree),
        );
        let img = udp_compilers::huffman::huffman_decode_to_udp(
            &tree,
            udp_compilers::huffman::SymbolMode::RegisterRefill,
        )
        .assemble(&LayoutOptions::with_banks(16))
        .expect("huffman fits");
        let rep = Lane::run_program(&img, &padded, &cfg);
        v.push(rep.cycles as f64 / rep.bytes_consumed.max(1) as f64);
        // Pattern matching (scanning DFA)
        let img = udp_compilers::automata::dfa_to_udp(&dfa)
            .assemble(&LayoutOptions::with_banks(64))
            .expect("dfa fits");
        let rep = Lane::run_program(&img, &trace[..64 * 1024], &cfg);
        v.push(rep.cycles as f64 / rep.bytes_consumed as f64);
        // Snappy compression
        let img = udp_compilers::snappy::snappy_compress_to_udp()
            .assemble(&LayoutOptions::with_banks(2))
            .expect("snappy fits");
        let block = &text[..32 * 1024];
        let staging = udp_sim::engine::Staging {
            segments: vec![],
            regs: vec![(udp_isa::Reg::new(2), block.len() as u32)],
        };
        let (rep, _) = Lane::run_program_capture(&img, block, &staging, &cfg);
        v.push(rep.cycles as f64 / block.len() as f64);
        // Histogram
        let (pb, _) = udp_compilers::histogram::histogram_to_udp(&hist);
        let img = pb
            .assemble(&LayoutOptions::with_banks(1))
            .expect("hist fits");
        let be = udp_compilers::histogram::to_big_endian(&fares);
        let rep = Lane::run_program(&img, &be, &cfg);
        v.push(rep.cycles as f64 / rep.bytes_consumed as f64);
        v
    };

    for (i, (name, bo, bi)) in runs.iter().enumerate() {
        let bo_cpb = bo.cycles / bo.stats.input_bytes as f64;
        let bi_cpb = bi.cycles / bi.stats.input_bytes as f64;
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2}",
            name,
            1.0,
            bo_cpb / bi_cpb,
            bo_cpb / udp_cpb[i]
        );
    }

    // ---- 5c: code size ---------------------------------------------
    println!("\n== Figure 5c: code size (KB) ==");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "BO", "BI", "UAP", "UDP"
    );
    // BO/BI from the model; UAP (offset attach, no sharing) and UDP
    // from assembled images.
    let images = [
        ("csv", udp_compilers::csv::csv_to_udp(), 1usize),
        (
            "huffman-dec",
            {
                let tree = HuffmanTree::from_data(&text);
                udp_compilers::huffman::huffman_decode_to_udp(
                    &tree,
                    udp_compilers::huffman::SymbolMode::RegisterRefill,
                )
            },
            16,
        ),
        ("patterns", udp_compilers::automata::dfa_to_udp(&dfa), 64),
        (
            "snappy-comp",
            udp_compilers::snappy::snappy_compress_to_udp(),
            2,
        ),
        (
            "histogram",
            udp_compilers::histogram::histogram_to_udp(&hist).0,
            1,
        ),
    ];
    let avg_edges = rows.iter().map(|(e, _)| e.len()).sum::<usize>() / rows.len().max(1) + 1;
    let model_sizes = [
        // (states, avg BO cases, BI classes)
        ("csv", codesize::bo_bytes(4, 5), codesize::bi_bytes(4, 256)),
        (
            "huffman-dec",
            codesize::bo_bytes(300, 2),
            codesize::bi_bytes(300, 2),
        ),
        (
            "patterns",
            codesize::bo_bytes(dfa.len(), avg_edges),
            codesize::bi_bytes(dfa.len(), 256),
        ),
        (
            "snappy-comp",
            codesize::bo_bytes(8, 6),
            codesize::bi_bytes(8, 8),
        ),
        (
            "histogram",
            codesize::bo_bytes(17, 5),
            codesize::bi_bytes(17, 16),
        ),
    ];
    for ((name, pb, banks), (_, bo_b, bi_b)) in images.into_iter().zip(model_sizes) {
        let udp_img = pb
            .assemble(&LayoutOptions::with_banks(banks))
            .expect("fits");
        let uap_img = pb
            .assemble(&LayoutOptions {
                window_words: banks * 4096 * 4,
                share_actions: false,
                uap_attach: true,
                ..LayoutOptions::default()
            })
            .expect("size model");
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            name,
            bo_b as f64 / 1024.0,
            bi_b as f64 / 1024.0,
            uap_img.stats.code_bytes() as f64 / 1024.0,
            udp_img.stats.code_bytes() as f64 / 1024.0,
        );
    }
}

//! Figure 13: CSV parsing (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::csv();
    udp_bench::print_comparison_table("Figure 13: CSV parsing", &rows);
}

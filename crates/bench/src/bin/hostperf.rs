//! Host-side simulator throughput: how fast the simulator itself chews
//! input, before/after predecoding and with threaded waves.
//!
//! Three configurations over the same 64-lane run:
//!
//! * `lazy-seq` — the pre-optimization baseline: one lane after
//!   another, decoding every transition/action word as it is read
//!   (`Lane::new`, no shared table).
//! * `predecoded-seq` — the engine's sequential path: the program is
//!   decoded once into a `DecodedProgram` all lanes index.
//! * `predecoded-par` — `UdpRunOptions::parallel`: predecoded plus one
//!   host thread per lane within each wave.
//!
//! All three produce bit-identical modeled results (see the
//! `determinism` test); only host wall-clock differs. Results go to
//! stdout and `results/hostperf.txt`.

use std::fmt::Write as _;
use std::time::Instant;
use udp_asm::{LayoutOptions, ProgramBuilder, ProgramImage};
use udp_bench::host_rate_mbps;
use udp_isa::mem::BANK_WORDS;
use udp_sim::engine::Staging;
use udp_sim::{BitStream, Lane, LaneConfig, LocalMemory, OutputSink, Udp, UdpRunOptions};

/// Assembles into the smallest power-of-two bank window that fits.
fn assemble(pb: &ProgramBuilder, max_banks: usize) -> ProgramImage {
    let mut banks = 1;
    loop {
        match pb.assemble(&LayoutOptions::with_banks(banks)) {
            Ok(img) => return img,
            Err(_) if banks < max_banks => banks *= 2,
            Err(e) => panic!("program does not fit {max_banks} banks: {e}"),
        }
    }
}

/// The pre-optimization engine loop: shared device memory, one lane at
/// a time, decode-on-read (no predecoded table), word-at-a-time window
/// zeroing, and the bit-at-a-time reference stream/sink routines the
/// simulator shipped with.
fn run_lazy_sequential(image: &ProgramImage, inputs: &[&[u8]], banks_per_lane: usize) {
    let window_words = banks_per_lane * BANK_WORDS;
    let mut mem = LocalMemory::new();
    for (i, input) in inputs.iter().enumerate() {
        let origin = (i * banks_per_lane * BANK_WORDS) as u32;
        mem.load_words(origin, &image.words);
        for w in image.stats.span_words..window_words {
            mem.load_words(origin + w as u32, &[0]);
        }
        let mut lane = Lane::new(image, origin);
        let mut stream = BitStream::reference(input);
        let mut out = OutputSink::reference();
        let rep = lane.run(&mut mem, &mut stream, &mut out, &LaneConfig::default());
        std::hint::black_box(rep.cycles);
    }
}

/// One timed run of `f`, in host seconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

fn bench_workload(name: &str, image: &ProgramImage, inputs: &[&[u8]], out: &mut String) {
    let banks = image.stats.span_words.div_ceil(BANK_WORDS).max(1);
    let bytes: usize = inputs.iter().map(|i| i.len()).sum();
    let reps = 7;

    let seq_opts = UdpRunOptions {
        banks_per_lane: banks,
        parallel: false,
        ..Default::default()
    };
    let par_opts = UdpRunOptions {
        parallel: true,
        ..seq_opts.clone()
    };
    let mut run_lazy = || run_lazy_sequential(image, inputs, banks);
    let mut run_seq = || {
        let mut udp = Udp::new();
        let rep = udp.run_data_parallel(image, inputs, &Staging::default(), &seq_opts);
        std::hint::black_box(rep.wall_cycles);
    };
    let mut run_par = || {
        let mut udp = Udp::new();
        let rep = udp.run_data_parallel(image, inputs, &Staging::default(), &par_opts);
        std::hint::black_box(rep.wall_cycles);
    };

    // Warm-up, then interleave the three configurations rep by rep and
    // take each one's best: external load (this is a shared host) then
    // hits all three alike instead of biasing whichever configuration
    // happened to run during a noisy burst.
    run_lazy();
    run_seq();
    run_par();
    let (mut lazy, mut seq, mut par) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..reps {
        lazy = lazy.min(time_once(&mut run_lazy));
        seq = seq.min(time_once(&mut run_seq));
        par = par.min(time_once(&mut run_par));
    }

    let lazy_r = host_rate_mbps(bytes, std::time::Duration::from_secs_f64(lazy));
    let seq_r = host_rate_mbps(bytes, std::time::Duration::from_secs_f64(seq));
    let par_r = host_rate_mbps(bytes, std::time::Duration::from_secs_f64(par));
    let _ = writeln!(
        out,
        "{name:<16} lanes={:<3} input={:>8} B  lazy-seq={:>8.1} MB/s  predecoded-seq={:>8.1} MB/s ({:>4.2}x)  predecoded-par={:>8.1} MB/s ({:>5.2}x)",
        inputs.len(),
        bytes,
        lazy_r,
        seq_r,
        seq_r / lazy_r,
        par_r,
        par_r / lazy_r,
    );
}

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "host-side simulator throughput (64-lane device run, interleaved best of 7)\n\
         threads available: {}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // CSV parsing: dispatch-heavy with per-field actions.
    let csv_img = assemble(&udp_compilers::csv::csv_to_udp(), 8);
    let csv_chunks: Vec<Vec<u8>> = (0..64u64)
        .map(|seed| udp_workloads::crimes_csv(24 * 1024, seed))
        .collect();
    let csv_inputs: Vec<&[u8]> = csv_chunks.iter().map(Vec::as_slice).collect();
    bench_workload("csv-parse", &csv_img, &csv_inputs, &mut out);

    // Huffman encoding: action-loop heavy (EmitBits per symbol).
    let huff_chunks: Vec<Vec<u8>> = (0..64u64)
        .map(|seed| udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 24 * 1024, seed))
        .collect();
    let all: Vec<u8> = huff_chunks.iter().flatten().copied().collect();
    let tree = udp_codecs::HuffmanTree::from_data(&all);
    let huff_img = assemble(&udp_compilers::huffman::huffman_encode_to_udp(&tree), 8);
    let huff_inputs: Vec<&[u8]> = huff_chunks.iter().map(Vec::as_slice).collect();
    bench_workload("huffman-encode", &huff_img, &huff_inputs, &mut out);

    print!("{out}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/hostperf.txt", &out))
    {
        eprintln!("could not write results/hostperf.txt: {e}");
    }
}

//! Host-side simulator throughput: how fast the simulator itself chews
//! input, before/after predecoding, with the persistent lane pool, and
//! on the tier-2 compiled backend.
//!
//! Five configurations over the same 64-lane run:
//!
//! * `lazy-seq` — the pre-optimization baseline: one lane after
//!   another, decoding every transition/action word as it is read
//!   (`Lane::new`, no shared table).
//! * `predecoded-seq` — the engine's sequential path: the program is
//!   decoded once into a `DecodedProgram` all lanes index, and windows
//!   reset incrementally between chunks.
//! * `predecoded-par` — `UdpRunOptions::parallel`: predecoded plus the
//!   persistent worker pool pulling chunks off a shared counter.
//! * `compiled-seq` / `compiled-par` — `ExecBackend::Compiled`
//!   (DESIGN.md §2.6.3): the program specialized into dense dispatch
//!   tables at load time, sequential and pooled.
//!
//! All five produce bit-identical modeled results (see the
//! `determinism` test and `backend_oracle`); only host wall-clock
//! differs.
//!
//! `--gate-csv-speedup <x>` exits nonzero unless `compiled-seq` is at
//! least `x`× `predecoded-seq` on every csv scenario — a same-process
//! ratio, so the gate is robust to absolute host load.
//! `--gate-huffman-speedup <x>` is the same gate over the huffman
//! scenarios (the bit-burst superop's action-per-symbol territory).
//!
//! Two workload shapes: big chunks (64 × 24 KB — the steady-stream
//! shape) and many small chunks (256 × 4 KB — the ETL shape, where
//! per-chunk reset and scheduling overhead dominate a naive host loop).
//!
//! Results go to stdout and `results/hostperf.txt`; with `--json`, a
//! machine-readable line per scenario goes to
//! `results/BENCH_hostperf.json` so the perf trajectory is diffable
//! across PRs (see `scripts/ci.sh`).

use std::fmt::Write as _;
use std::time::Instant;
use udp_asm::{LayoutOptions, ProgramBuilder, ProgramImage};
use udp_bench::host_rate_mbps;
use udp_isa::mem::{BANK_WORDS, NUM_BANKS};
use udp_sim::engine::Staging;
use udp_sim::{
    BitStream, ExecBackend, Lane, LaneConfig, LocalMemory, OutputSink, Udp, UdpRunOptions,
};

/// Assembles into the smallest power-of-two bank window that fits.
fn assemble(pb: &ProgramBuilder, max_banks: usize) -> ProgramImage {
    let mut banks = 1;
    loop {
        match pb.assemble(&LayoutOptions::with_banks(banks)) {
            Ok(img) => return img,
            Err(_) if banks < max_banks => banks *= 2,
            Err(e) => panic!("program does not fit {max_banks} banks: {e}"),
        }
    }
}

/// The pre-optimization engine loop: shared device memory, one lane at
/// a time, decode-on-read (no predecoded table), word-at-a-time window
/// zeroing, and the bit-at-a-time reference stream/sink routines the
/// simulator shipped with. Chunks beyond lane capacity wrap onto the
/// lane origins again, like the engine's waves.
fn run_lazy_sequential(image: &ProgramImage, inputs: &[&[u8]], banks_per_lane: usize) {
    let window_words = banks_per_lane * BANK_WORDS;
    let lanes_cap = (NUM_BANKS / banks_per_lane).max(1);
    let mut mem = LocalMemory::new();
    for (i, input) in inputs.iter().enumerate() {
        let origin = ((i % lanes_cap) * banks_per_lane * BANK_WORDS) as u32;
        mem.load_words(origin, &image.words);
        for w in image.stats.span_words..window_words {
            mem.load_words(origin + w as u32, &[0]);
        }
        let mut lane = Lane::new(image, origin);
        let mut stream = BitStream::reference(input);
        let mut out = OutputSink::reference();
        let rep = lane.run(&mut mem, &mut stream, &mut out, &LaneConfig::default());
        std::hint::black_box(rep.cycles);
    }
}

/// One timed run of `f`, in host seconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// One scenario's measured rates, for the text table and the JSON log.
struct ScenarioResult {
    name: String,
    chunks: usize,
    bytes: usize,
    lazy_seq_mbps: f64,
    predecoded_seq_mbps: f64,
    predecoded_par_mbps: f64,
    compiled_seq_mbps: f64,
    compiled_par_mbps: f64,
    /// Why the tier-2 backend declined this kernel (`None` when it
    /// compiled): a compiled-vs-interpreter ratio near 1.0 with a
    /// reason here is fallback, not a regression.
    compiled_declined: Option<&'static str>,
}

fn bench_workload(name: &str, image: &ProgramImage, inputs: &[&[u8]]) -> ScenarioResult {
    let banks = image.stats.span_words.div_ceil(BANK_WORDS).max(1);
    let bytes: usize = inputs.iter().map(|i| i.len()).sum();
    let reps = 7;

    // Backends are pinned explicitly: `Default` reads `UDP_SIM_BACKEND`,
    // and this bench's whole point is to measure both sides by name.
    let seq_opts = UdpRunOptions {
        banks_per_lane: banks,
        parallel: false,
        backend: ExecBackend::Interpreter,
        ..Default::default()
    };
    let par_opts = UdpRunOptions {
        parallel: true,
        ..seq_opts.clone()
    };
    let cseq_opts = UdpRunOptions {
        backend: ExecBackend::Compiled,
        ..seq_opts.clone()
    };
    let cpar_opts = UdpRunOptions {
        backend: ExecBackend::Compiled,
        ..par_opts.clone()
    };
    let run_engine = |opts: &UdpRunOptions| {
        let mut udp = Udp::new();
        let rep = udp.run_data_parallel(image, inputs, &Staging::default(), opts);
        std::hint::black_box(rep.wall_cycles);
    };
    let mut run_lazy = || run_lazy_sequential(image, inputs, banks);
    let mut run_seq = || run_engine(&seq_opts);
    let mut run_par = || run_engine(&par_opts);
    let mut run_cseq = || run_engine(&cseq_opts);
    let mut run_cpar = || run_engine(&cpar_opts);

    // Warm-up, then interleave the configurations rep by rep and take
    // each one's best: external load (this is a shared host) then hits
    // all of them alike instead of biasing whichever configuration
    // happened to run during a noisy burst.
    run_lazy();
    run_seq();
    run_par();
    run_cseq();
    run_cpar();
    let (mut lazy, mut seq, mut par) = (f64::MAX, f64::MAX, f64::MAX);
    let (mut cseq, mut cpar) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        lazy = lazy.min(time_once(&mut run_lazy));
        seq = seq.min(time_once(&mut run_seq));
        par = par.min(time_once(&mut run_par));
        cseq = cseq.min(time_once(&mut run_cseq));
        cpar = cpar.min(time_once(&mut run_cpar));
    }

    ScenarioResult {
        name: name.to_string(),
        chunks: inputs.len(),
        bytes,
        lazy_seq_mbps: host_rate_mbps(bytes, std::time::Duration::from_secs_f64(lazy)),
        predecoded_seq_mbps: host_rate_mbps(bytes, std::time::Duration::from_secs_f64(seq)),
        predecoded_par_mbps: host_rate_mbps(bytes, std::time::Duration::from_secs_f64(par)),
        compiled_seq_mbps: host_rate_mbps(bytes, std::time::Duration::from_secs_f64(cseq)),
        compiled_par_mbps: host_rate_mbps(bytes, std::time::Duration::from_secs_f64(cpar)),
        compiled_declined: udp_sim::compiled_decline_reason(image),
    }
}

fn render_line(r: &ScenarioResult, out: &mut String) {
    let _ = writeln!(
        out,
        "{:<16} lanes={:<3} input={:>8} B  lazy-seq={:>8.1} MB/s  predecoded-seq={:>8.1} MB/s ({:>4.2}x)  predecoded-par={:>8.1} MB/s ({:>5.2}x)  compiled-seq={:>8.1} MB/s ({:>4.2}x)  compiled-par={:>8.1} MB/s ({:>5.2}x)",
        r.name,
        r.chunks,
        r.bytes,
        r.lazy_seq_mbps,
        r.predecoded_seq_mbps,
        r.predecoded_seq_mbps / r.lazy_seq_mbps,
        r.predecoded_par_mbps,
        r.predecoded_par_mbps / r.lazy_seq_mbps,
        r.compiled_seq_mbps,
        r.compiled_seq_mbps / r.predecoded_seq_mbps,
        r.compiled_par_mbps,
        r.compiled_par_mbps / r.predecoded_seq_mbps,
    );
    if let Some(reason) = r.compiled_declined {
        let _ = writeln!(out, "{:<16}   compiled backend declined: {reason}", "");
    }
}

/// One JSON object per scenario, one per line — no dependency needed,
/// trivially greppable/awk-able from CI.
fn render_json(results: &[ScenarioResult]) -> String {
    let mut s = String::new();
    for r in results {
        let declined = match r.compiled_declined {
            Some(reason) => format!("\"{reason}\""),
            None => "null".to_string(),
        };
        let _ = writeln!(
            s,
            "{{\"name\":\"{}\",\"chunks\":{},\"bytes\":{},\"lazy_seq_mbps\":{:.2},\"predecoded_seq_mbps\":{:.2},\"predecoded_par_mbps\":{:.2},\"compiled_seq_mbps\":{:.2},\"compiled_par_mbps\":{:.2},\"compiled_declined\":{declined}}}",
            r.name, r.chunks, r.bytes, r.lazy_seq_mbps, r.predecoded_seq_mbps, r.predecoded_par_mbps, r.compiled_seq_mbps, r.compiled_par_mbps,
        );
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let gate_arg = |flag: &str| -> Option<f64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{flag} takes a number"))
            })
    };
    let gate_csv_speedup = gate_arg("--gate-csv-speedup");
    let gate_huffman_speedup = gate_arg("--gate-huffman-speedup");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "host-side simulator throughput (64-lane device run, interleaved best of 7)\n\
         threads available: {}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut results = Vec::new();

    // CSV parsing: dispatch-heavy with per-field actions.
    let csv_img = assemble(&udp_compilers::csv::csv_to_udp(), 8);
    let csv_chunks: Vec<Vec<u8>> = (0..64u64)
        .map(|seed| udp_workloads::crimes_csv(24 * 1024, seed))
        .collect();
    let csv_inputs: Vec<&[u8]> = csv_chunks.iter().map(Vec::as_slice).collect();
    results.push(bench_workload("csv-parse", &csv_img, &csv_inputs));

    // Many-small-chunks shape (the ETL figures): per-chunk reset and
    // scheduling overhead dominate a naive host loop here.
    let csv_small: Vec<Vec<u8>> = (0..256u64)
        .map(|seed| udp_workloads::crimes_csv(4 * 1024, seed))
        .collect();
    let csv_small_inputs: Vec<&[u8]> = csv_small.iter().map(Vec::as_slice).collect();
    results.push(bench_workload("csv-small", &csv_img, &csv_small_inputs));

    // Huffman encoding: action-loop heavy (EmitBits per symbol).
    let huff_chunks: Vec<Vec<u8>> = (0..64u64)
        .map(|seed| udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 24 * 1024, seed))
        .collect();
    let all: Vec<u8> = huff_chunks.iter().flatten().copied().collect();
    let tree = udp_codecs::HuffmanTree::from_data(&all);
    let huff_img = assemble(&udp_compilers::huffman::huffman_encode_to_udp(&tree), 8);
    let huff_inputs: Vec<&[u8]> = huff_chunks.iter().map(Vec::as_slice).collect();
    results.push(bench_workload("huffman-encode", &huff_img, &huff_inputs));

    let huff_small: Vec<Vec<u8>> = (0..256u64)
        .map(|seed| udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 4 * 1024, seed))
        .collect();
    let huff_small_inputs: Vec<&[u8]> = huff_small.iter().map(Vec::as_slice).collect();
    results.push(bench_workload(
        "huffman-small",
        &huff_img,
        &huff_small_inputs,
    ));

    for r in &results {
        render_line(r, &mut out);
    }
    print!("{out}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/hostperf.txt", &out))
    {
        eprintln!("could not write results/hostperf.txt: {e}");
    }
    if json {
        let payload = render_json(&results);
        if let Err(e) = std::fs::write("results/BENCH_hostperf.json", &payload) {
            eprintln!("could not write results/BENCH_hostperf.json: {e}");
        }
    }
    // Same-process ratios: absolute MB/s moves with host load, but
    // compiled and interpreter runs interleaved in one process see the
    // same load, so the ratio is what CI can gate on.
    let mut failed = false;
    for (flag, prefix, min) in [
        ("--gate-csv-speedup", "csv", gate_csv_speedup),
        ("--gate-huffman-speedup", "huffman", gate_huffman_speedup),
    ] {
        let Some(min) = min else { continue };
        let mut below = false;
        for r in results.iter().filter(|r| r.name.starts_with(prefix)) {
            let ratio = r.compiled_seq_mbps / r.predecoded_seq_mbps;
            let verdict = if ratio >= min { "ok" } else { "FAIL" };
            println!(
                "gate {:<16} compiled-seq/predecoded-seq = {ratio:.2}x (need {min:.2}x): {verdict}",
                r.name
            );
            below |= ratio < min;
        }
        if below {
            eprintln!("{flag} {min}: compiled backend below required speedup");
        }
        failed |= below;
    }
    if failed {
        std::process::exit(1);
    }
}

//! Table 4: UDP vs specialized accelerators — published operating
//! points against our measured device throughput for the matching UDP
//! algorithm.

use udp::comparison::{measured_relative_perf, TABLE4};
use udp_bench::{suite, Comparison};

fn device_mbps(rows: &[Comparison], pick: usize) -> f64 {
    rows.get(pick).map_or(0.0, |r| r.udp.throughput_mbps)
}

fn main() {
    // Measure the UDP algorithms Table 4 references.
    let pat = suite::patterns(); // [adfa, dfa, nfa]
    let comp = suite::snappy_compress();
    let decomp = suite::snappy_decompress();
    let csvp = suite::csv();
    let huff = suite::huffman_decode();

    let measured = |udp_algorithm: &str| -> f64 {
        match udp_algorithm {
            "String match (ADFA)" => device_mbps(&pat, 0),
            "Regex match (NFA)" => device_mbps(&pat, 2),
            "Snappy compress" => device_mbps(&comp, 1),
            "Snappy decompress" => device_mbps(&decomp, 1),
            "CSV parse" => device_mbps(&csvp, 0),
            "Huffman/RLE/Dictionary" => device_mbps(&huff, 0),
            other => panic!("unmapped algorithm {other}"),
        }
    };

    println!("== Table 4: UDP vs specialized accelerators ==");
    println!(
        "{:<26} {:<22} {:>10} {:>12} {:>10} {:>10}",
        "accelerator", "algorithm", "acc GB/s", "udp GB/s", "rel(ours)", "rel(paper)"
    );
    for row in TABLE4 {
        let udp_mbps = measured(row.udp_algorithm);
        println!(
            "{:<26} {:<22} {:>10.1} {:>12.2} {:>10.2} {:>10.2}",
            row.accelerator,
            row.algorithm,
            row.perf_gbps,
            udp_mbps / 1000.0,
            measured_relative_perf(row, udp_mbps),
            row.paper_udp_relative_perf
        );
    }
    println!("\nnote: our simulator reproduces shape, not the authors' testbed absolutes;");
    println!("paper range: 0.4x (DAX) to 13x (PowerEN decompress).");
}

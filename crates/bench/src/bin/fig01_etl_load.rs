//! Figure 1: loading compressed CSV into a relational store.
//!
//! Reproduces the stage breakdown (1a) and the CPU-vs-IO split (1b) for
//! Snappy-compressed TPC-H-like lineitem at scale factors scaled down
//! ×300 from the paper's 1–30 (DESIGN.md §4), plus the UDP-offload
//! model using measured simulator rates.

use udp_bench::suite::LANE_BYTES;
use udp_codecs::snappy_compress;
use udp_etl::{run_cpu_etl, udp_offload_model, OffloadRates};
use udp_workloads::lineitem_csv;

fn main() {
    println!("== Figure 1: ETL load of compressed lineitem CSV ==");
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scale", "raw MB", "rows", "io(mod)", "decomp", "parse", "deser", "load", "cpu s", "cpu %"
    );

    // Paper scale factors 1..30 → ours ×1/300 (raw ≈ 1 GB/sf).
    let mut last_report = None;
    for sf in [1usize, 3, 10] {
        let raw_bytes = sf * 3_500_000; // ~3.5 MB per scaled unit
        let raw = lineitem_csv(raw_bytes, 42 + sf as u64);
        let compressed = snappy_compress(&raw);
        let (_, rep) = run_cpu_etl(&compressed);
        println!(
            "{:<8} {:>9.1} {:>9} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7.1}%",
            format!("sf{sf}/300"),
            rep.raw_bytes as f64 / 1e6,
            rep.rows,
            rep.io_model_s,
            rep.decompress_s,
            rep.parse_s,
            rep.deserialize_s,
            rep.load_s,
            rep.cpu_s(),
            rep.cpu_fraction() * 100.0
        );
        last_report = Some(rep);
    }

    // UDP offload model at measured simulator rates.
    let rep = last_report.expect("ran at least one scale");
    let sample = lineitem_csv(200_000, 7);
    let cut = sample[..LANE_BYTES]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(LANE_BYTES, |p| p + 1);
    let parse = udp::kernels::csv::run(&sample[..cut]);
    let decomp = udp::kernels::snappy::run_decompress(&sample[..LANE_BYTES]);
    let (cpu_only, offloaded) = udp_offload_model(
        &rep,
        OffloadRates {
            decompress_mbps: decomp.lane_rate_mbps * decomp.lanes as f64,
            parse_mbps: parse.lane_rate_mbps * parse.lanes as f64,
        },
    );
    println!(
        "\nUDP offload model (largest scale): cpu-only {:.3}s -> offloaded {:.3}s ({:.2}x)",
        cpu_only,
        offloaded,
        cpu_only / offloaded
    );
    println!(
        "paper shape: load time dominated by CPU transformation (>99.5% CPU in the paper's\nGzip+HDD-era setup; ours: {:.1}% CPU against a 500 MB/s SSD model with Snappy)",
        rep.cpu_fraction() * 100.0
    );
}

//! Figure 14: Huffman encoding (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::huffman_encode();
    udp_bench::print_comparison_table("Figure 14: Huffman encoding", &rows);
}

//! Figure 16: Pattern matching (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::patterns();
    udp_bench::print_comparison_table("Figure 16: Pattern matching", &rows);
}

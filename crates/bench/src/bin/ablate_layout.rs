//! Ablations of DESIGN.md §5 that the paper's figures do not cover:
//!
//! * **EffCLiP vs naive layout** — naive gives every state a private
//!   257-word block; EffCLiP interleaves footprints.
//! * **Fallback (majority/default) compression vs fully-labeled DFAs**
//!   — code size vs the +1-cycle signature-miss cost.
//! * **Action-block sharing** — UDP's deduplicated attach regions vs
//!   per-arc private copies.

use udp_asm::LayoutOptions;
use udp_automata::{Adfa, Dfa, Nfa, Regex};
use udp_sim::{Lane, LaneConfig};
use udp_workloads as w;

fn main() {
    // ---- EffCLiP vs naive -------------------------------------------
    println!("== EffCLiP packing vs naive 257-words-per-state layout ==");
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>8}",
        "program", "states", "effclip KB", "naive KB", "gain"
    );
    let pats = w::nids_literals(48, 1);
    let adfa = Adfa::build(&pats);
    let programs: Vec<(&str, udp_asm::ProgramBuilder)> = vec![
        ("csv", udp_compilers::csv::csv_to_udp()),
        ("json", udp_compilers::json::json_to_udp()),
        ("adfa-48rules", udp_compilers::automata::adfa_to_udp(&adfa)),
        (
            "trigger-p13",
            udp_compilers::trigger::trigger_to_udp(&udp_codecs::TriggerFsm::new(64, 192, 13)),
        ),
    ];
    for (name, pb) in &programs {
        let img = pb.assemble(&LayoutOptions::with_banks(16)).expect("fits");
        let naive_words = img.stats.n_states * 257 + img.stats.n_action_words + 1;
        println!(
            "{:<18} {:>8} {:>12.1} {:>12.1} {:>7.2}x",
            name,
            img.stats.n_states,
            img.stats.code_bytes() as f64 / 1024.0,
            naive_words as f64 * 4.0 / 1024.0,
            naive_words as f64 / img.stats.span_words as f64
        );
    }

    // ---- fallback compression vs fully labeled ----------------------
    println!("\n== Majority/default fallback compression (scanning DFA, 4 regexes) ==");
    let regexes = w::nids_regexes(4, 2);
    let asts: Vec<Regex> = regexes.iter().map(|p| Regex::parse(p).unwrap()).collect();
    let dfa = Dfa::determinize(&Nfa::scanner(&asts)).minimize();
    let (trace, _) = w::traffic_with_matches(&w::nids_literals(8, 2), 32 * 1024, 900, 2);

    let with_fb = udp_compilers::automata::dfa_to_udp(&dfa)
        .assemble(&LayoutOptions::with_banks(64))
        .expect("fits");
    let rep_fb = Lane::run_program(&with_fb, &trace, &LaneConfig::default());
    println!(
        "with fallback:  {:>8.1} KB, {:>6.0} MB/s, {} signature misses",
        with_fb.stats.code_bytes() as f64 / 1024.0,
        rep_fb.rate_mbps(1.0),
        rep_fb.fallback_misses
    );
    let full = udp_compilers::automata::dfa_to_udp_full(&dfa)
        .assemble(&LayoutOptions::with_banks(64))
        .expect("fits");
    let rep_full = Lane::run_program(&full, &trace, &LaneConfig::default());
    println!(
        "fully labeled:  {:>8.1} KB, {:>6.0} MB/s, {} signature misses",
        full.stats.code_bytes() as f64 / 1024.0,
        rep_full.rate_mbps(1.0),
        rep_full.fallback_misses
    );
    println!(
        "-> compression: {:.2}x smaller for {:.0}% rate cost",
        full.stats.code_bytes() as f64 / with_fb.stats.code_bytes() as f64,
        (1.0 - rep_fb.rate_mbps(1.0) / rep_full.rate_mbps(1.0)) * 100.0
    );

    // ---- action sharing ----------------------------------------------
    println!("\n== Action-block sharing (UDP attach) vs private copies (UAP attach) ==");
    for (name, pb) in &programs {
        let shared = pb.assemble(&LayoutOptions::with_banks(16)).expect("fits");
        let private = pb
            .assemble(&LayoutOptions {
                window_words: 64 * 4096,
                share_actions: false,
                uap_attach: true,
                ..LayoutOptions::default()
            })
            .expect("size model");
        println!(
            "{:<18} shared {:>7} action words, private {:>7} ({:.2}x)",
            name,
            shared.stats.n_action_words,
            private.stats.n_action_words,
            private.stats.n_action_words.max(1) as f64 / shared.stats.n_action_words.max(1) as f64
        );
    }
}

//! Figure 17: dictionary and dictionary-RLE encoding on Crimes
//! attributes (the paper prints only the RLE panel for space; both are
//! reproduced here).

fn main() {
    let rows = udp_bench::suite::dictionary();
    udp_bench::print_comparison_table("Figure 17: Dictionary encoding", &rows);
    let rows = udp_bench::suite::dictionary_rle();
    udp_bench::print_comparison_table("Figure 17: Dictionary-RLE encoding", &rows);
}

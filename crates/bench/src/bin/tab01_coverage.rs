//! Table 1 (accelerator coverage) and Table 5 (UAP vs UDP features).

use udp::coverage::{Capability, TABLE1, TABLE5};

fn main() {
    println!("== Table 1: coverage of transformation/encoding algorithms ==");
    let caps = [
        ("compress", Capability::Compression),
        ("encode", Capability::Encoding),
        ("parse", Capability::Parsing),
        ("patterns", Capability::PatternMatching),
        ("histogram", Capability::Histogram),
    ];
    print!("{:<28}", "accelerator");
    for (label, _) in &caps {
        print!(" {label:>12}");
    }
    println!();
    for row in TABLE1 {
        print!("{:<28}", row.name);
        for (_, cap) in &caps {
            let cell = row
                .coverage
                .iter()
                .find(|(c, _)| c == cap)
                .map_or("-", |(_, what)| what);
            let short: String = cell.chars().take(12).collect();
            print!(" {short:>12}");
        }
        println!();
    }

    println!("\n== Table 5: UAP vs UDP highlighted differences ==");
    for row in TABLE5 {
        println!(
            "{:<16} | UAP: {:<38} | UDP: {}",
            row.dimension, row.uap, row.udp
        );
    }
}

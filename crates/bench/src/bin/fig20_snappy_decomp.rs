//! Figure 20: Snappy decompression (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::snappy_decompress();
    udp_bench::print_comparison_table("Figure 20: Snappy decompression", &rows);
}

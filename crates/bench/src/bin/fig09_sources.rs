//! Figure 9: the benefit of adding the scalar data register as a
//! dispatch source (§3.2.3).
//!
//! The comparison uses the kernels not used in the two prior
//! architecture studies: dictionary, dictionary-RLE, Snappy compression
//! and decompression, and signal triggering. Model: with a stream-only
//! UAP-style design, kernels whose programs require flagged (register)
//! dispatch cannot be offloaded at all and fall back to the CPU
//! (speedup 1×); stream-only kernels keep their measured speedups.

use udp_bench::{geomean, suite, Comparison};

fn needs_scalar_dispatch(kernel: &str) -> bool {
    matches!(
        kernel,
        "Dictionary" | "Dictionary-RLE" | "Snappy Compression"
    )
}

fn main() {
    let kernels: Vec<(String, Vec<Comparison>)> = vec![
        ("Dictionary".into(), suite::dictionary()),
        ("Dictionary-RLE".into(), suite::dictionary_rle()),
        ("Snappy Compression".into(), suite::snappy_compress()),
        ("Snappy Decompression".into(), suite::snappy_decompress()),
        ("Signal Triggering".into(), suite::trigger()),
    ];

    println!("== Figure 9: dispatch-source ablation (geomean speedup vs 8-thread CPU) ==");
    println!(
        "{:<22} {:>14} {:>18}",
        "kernel", "stream-only", "stream+scalar"
    );
    let mut stream_only = Vec::new();
    let mut with_scalar = Vec::new();
    for (name, rows) in &kernels {
        let sp = geomean(
            &rows
                .iter()
                .map(Comparison::device_speedup)
                .collect::<Vec<_>>(),
        );
        let so = if needs_scalar_dispatch(name) { 1.0 } else { sp };
        println!("{name:<22} {so:>14.2} {sp:>18.2}");
        stream_only.push(so);
        with_scalar.push(sp);
    }
    println!(
        "{:<22} {:>14.2} {:>18.2}",
        "GEOMEAN",
        geomean(&stream_only),
        geomean(&with_scalar)
    );
}

//! Static-verification sweep over the full compiler corpus
//! (DESIGN.md §9).
//!
//! Assembles every `udp_compilers::corpus` program at its smallest
//! bank split, runs `udp-verify` over the image, and prints one
//! machine-readable `key=value` line per program plus per-check and
//! aggregate totals. Any `Error`-severity finding is a soundness
//! violation — every corpus backend must verify clean — and the binary
//! exits nonzero so `scripts/ci.sh` can gate on it. The resource
//! certification pass (§9.1) is also summarized: every program must
//! receive either a complete [`udp_asm::ResourceCert`] or structured
//! `cost-unbounded` findings explaining why not.
//!
//! ```text
//! verify [--annotate NAME] [--json]
//! ```
//!
//! `--annotate NAME` additionally dumps the named program's annotated
//! disassembly (findings attached to their words) for debugging.
//! `--json` writes `results/BENCH_verify.json` with per-check wall
//! times and finding counts, plus the certification coverage ratio.

use std::fmt::Write as _;
use std::time::Instant;
use udp_compilers::corpus::{assemble_smallest, corpus};
use udp_verify::{annotate, verify_image, Check, Severity, VerifyOptions};

fn main() {
    let mut annotate_name: Option<String> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--annotate" => {
                annotate_name = args.next().or_else(|| {
                    eprintln!("--annotate needs a program name");
                    std::process::exit(2);
                });
            }
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: verify [--annotate NAME] [--json]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let entries = corpus();
    let mut total_errors = 0usize;
    let mut total_warns = 0usize;
    let mut total_lints = 0usize;
    // (errors, warns, lints) per check.
    let mut per_check = [(0usize, 0usize, 0usize); Check::ALL.len()];
    let mut failed: Vec<String> = Vec::new();
    let mut images = Vec::new();
    let mut certified = 0usize;
    let mut uncertified: Vec<String> = Vec::new();

    for (name, pb) in &entries {
        let img = match assemble_smallest(pb, 64) {
            Ok(img) => img,
            Err(e) => {
                println!("program={name} assemble_error=\"{e}\"");
                failed.push(name.clone());
                continue;
            }
        };
        let report = verify_image(&img, &VerifyOptions::default());
        let errors = report.errors();
        let warns = report.warnings();
        let lints = report.lints();
        total_errors += errors;
        total_warns += warns;
        total_lints += lints;
        for (i, check) in Check::ALL.iter().enumerate() {
            for f in report.by_check(*check) {
                match f.severity {
                    Severity::Error => per_check[i].0 += 1,
                    Severity::Warn => per_check[i].1 += 1,
                    Severity::Lint => per_check[i].2 += 1,
                }
            }
        }
        let cert_summary = match &report.cert {
            Some(cert) if cert.is_complete() => {
                certified += 1;
                cert.summary()
            }
            Some(cert) => {
                // Incomplete certificate: the blockers must say why.
                if cert.unbounded.is_empty() {
                    failed.push(name.clone());
                }
                uncertified.push(name.clone());
                cert.summary()
            }
            None => {
                // Structural errors suppressed the pass; the errors
                // themselves already fail the run.
                uncertified.push(name.clone());
                "none".to_string()
            }
        };
        println!(
            "program={name} words={} states={} errors={errors} warns={warns} lints={lints} cert=\"{cert_summary}\"",
            img.stats.words_used,
            img.state_bases.len()
        );
        if errors > 0 {
            failed.push(name.clone());
            for f in &report.findings {
                println!("  {f}");
            }
        }
        if annotate_name.as_deref() == Some(name.as_str()) {
            println!("{}", annotate(&img, &report));
        }
        images.push(img);
    }

    // Per-check wall time across the whole corpus, measured through the
    // check-selection API so each pass runs in isolation.
    let mut check_times_us = [0u128; Check::ALL.len()];
    for (i, check) in Check::ALL.iter().enumerate() {
        let opts = VerifyOptions {
            checks: Some(vec![*check]),
            ..VerifyOptions::default()
        };
        let start = Instant::now();
        for img in &images {
            let _ = verify_image(img, &opts);
        }
        check_times_us[i] = start.elapsed().as_micros();
    }

    for (i, check) in Check::ALL.iter().enumerate() {
        println!(
            "check={} errors={} warns={} lints={} time_us={}",
            check.name(),
            per_check[i].0,
            per_check[i].1,
            per_check[i].2,
            check_times_us[i]
        );
    }
    println!(
        "verify programs={} errors={total_errors} warns={total_warns} lints={total_lints} certified={certified}",
        entries.len()
    );
    if !uncertified.is_empty() {
        println!("uncertified: {}", uncertified.join(" "));
    }

    if json {
        let mut checks_json = String::new();
        for (i, check) in Check::ALL.iter().enumerate() {
            if i > 0 {
                checks_json.push(',');
            }
            let _ = write!(
                checks_json,
                "\n    {{\"check\": \"{}\", \"errors\": {}, \"warns\": {}, \"lints\": {}, \"time_us\": {}}}",
                check.name(),
                per_check[i].0,
                per_check[i].1,
                per_check[i].2,
                check_times_us[i]
            );
        }
        let pct = if images.is_empty() {
            0.0
        } else {
            100.0 * certified as f64 / images.len() as f64
        };
        let payload = format!(
            "{{\n  \"bench\": \"verify\",\n  \"programs\": {},\n  \"errors\": {},\n  \"warns\": {},\n  \"lints\": {},\n  \"certified\": {},\n  \"certified_pct\": {:.1},\n  \"checks\": [{}\n  ]\n}}\n",
            images.len(),
            total_errors,
            total_warns,
            total_lints,
            certified,
            pct,
            checks_json
        );
        let path = "results/BENCH_verify.json";
        if let Err(e) =
            std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &payload))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("json: {path}");
        }
    }

    if total_errors > 0 || !failed.is_empty() {
        eprintln!("FAIL: corpus programs failed verification: {failed:?}");
        std::process::exit(1);
    }
    println!(
        "ok: all {} corpus programs verify clean ({certified} certified)",
        entries.len()
    );
}

//! Static-verification sweep over the full compiler corpus
//! (DESIGN.md §9).
//!
//! Assembles every `udp_compilers::corpus` program at its smallest
//! bank split, runs `udp-verify` over the image, and prints one
//! machine-readable `key=value` line per program plus per-check and
//! aggregate totals. Any `Error`-severity finding is a soundness
//! violation — every corpus backend must verify clean — and the binary
//! exits nonzero so `scripts/ci.sh` can gate on it.
//!
//! ```text
//! verify [--annotate NAME]
//! ```
//!
//! `--annotate NAME` additionally dumps the named program's annotated
//! disassembly (findings attached to their words) for debugging.

use udp_compilers::corpus::{assemble_smallest, corpus};
use udp_verify::{annotate, verify_image, Check, Severity, VerifyOptions};

fn main() {
    let mut annotate_name: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--annotate" => {
                annotate_name = args.next().or_else(|| {
                    eprintln!("--annotate needs a program name");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("usage: verify [--annotate NAME]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let entries = corpus();
    let mut total_errors = 0usize;
    let mut total_warns = 0usize;
    let mut per_check = [(0usize, 0usize); Check::ALL.len()];
    let mut failed: Vec<String> = Vec::new();

    for (name, pb) in &entries {
        let img = match assemble_smallest(pb, 64) {
            Ok(img) => img,
            Err(e) => {
                println!("program={name} assemble_error=\"{e}\"");
                failed.push(name.clone());
                continue;
            }
        };
        let report = verify_image(&img, &VerifyOptions::default());
        let errors = report.errors();
        let warns = report.warnings();
        total_errors += errors;
        total_warns += warns;
        for (i, check) in Check::ALL.iter().enumerate() {
            for f in report.by_check(*check) {
                match f.severity {
                    Severity::Error => per_check[i].0 += 1,
                    Severity::Warn => per_check[i].1 += 1,
                }
            }
        }
        println!(
            "program={name} words={} states={} errors={errors} warns={warns}",
            img.stats.words_used,
            img.state_bases.len()
        );
        if errors > 0 {
            failed.push(name.clone());
            for f in &report.findings {
                println!("  {f}");
            }
        }
        if annotate_name.as_deref() == Some(name.as_str()) {
            println!("{}", annotate(&img, &report));
        }
    }

    for (i, check) in Check::ALL.iter().enumerate() {
        println!(
            "check={} errors={} warns={}",
            check.name(),
            per_check[i].0,
            per_check[i].1
        );
    }
    println!(
        "verify programs={} errors={total_errors} warns={total_warns}",
        entries.len()
    );
    if total_errors > 0 || !failed.is_empty() {
        eprintln!("FAIL: corpus programs failed verification: {failed:?}");
        std::process::exit(1);
    }
    println!("ok: all {} corpus programs verify clean", entries.len());
}

//! Figure 11: local vs global vs restricted addressing.
//!
//! * 11a — Snappy compression rate vs block size (bigger blocks need
//!   bigger hash tables, which local addressing cannot grant);
//! * 11b — net benefit: rate × compression-benefit, local vs restricted;
//! * 11c — memory reference energy per addressing mode (CACTI-lite).

use udp_asm::LayoutOptions;
use udp_codecs::snappy_decompress;
use udp_compilers::snappy::{frame_compressed, snappy_compress_to_udp_with};
use udp_isa::mem::AddressingMode;
use udp_isa::Reg;
use udp_sim::energy::mem_energy_pj;
use udp_sim::engine::Staging;
use udp_sim::{Lane, LaneConfig};
use udp_workloads as w;

/// Hash-table bits affordable in a window of `banks` banks (4 KB code
/// area + 2^k × 4-byte table must fit).
fn hash_bits_for(banks: usize) -> u32 {
    let budget = banks * 16 * 1024 - 4096;
    (((budget / 4) as f64).log2().floor() as u32).clamp(8, 14)
}

fn main() {
    let cfg = LaneConfig::default();
    let corpus = w::canterbury_like(w::Entropy::Medium, 64 * 1024, 9);

    println!("== Figure 11a/11b: Snappy compression vs block size ==");
    println!(
        "{:<10} {:>6} {:>12} {:>8} {:>12} {:>8} {:>12}",
        "block", "mode", "rate MB/s", "ratio", "mode", "rate MB/s", "ratio"
    );
    println!(
        "{:<10} {:>6} {:>12} {:>8} | restricted ->",
        "", "local", "", ""
    );
    // Local addressing confines a lane to one 16 KB bank: code + hash
    // table + staged block must fit, capping blocks at 8 KB. Restricted
    // addressing widens the window to match the block (paper §3.2.4:
    // "no way to run with 16 lanes with 64KB memory for each lane"
    // under local).
    const LOCAL_MAX_KB: usize = 8;
    let mut local_net = Vec::new();
    let mut restricted_net = Vec::new();
    for block_kb in [1usize, 2, 4, 8, 16, 32, 48] {
        let block = &corpus[..block_kb * 1024];
        let run = |banks: usize| {
            let bits = hash_bits_for(banks);
            let img = snappy_compress_to_udp_with(bits, 4096)
                .assemble(&LayoutOptions::with_banks(banks))
                .expect("fits");
            let staging = Staging {
                segments: vec![],
                regs: vec![(Reg::new(2), block.len() as u32)],
            };
            let (rep, _) = Lane::run_program_capture(&img, block, &staging, &cfg);
            let framed = frame_compressed(block.len(), &rep.output);
            assert_eq!(
                snappy_decompress(&framed).expect("valid"),
                block,
                "round trip at {block_kb}KB/{banks} banks"
            );
            let ratio = framed.len() as f64 / block.len() as f64;
            (rep.rate_mbps(1.0), ratio)
        };
        let local = (block_kb <= LOCAL_MAX_KB).then(|| run(1));
        let banks = (block_kb * 1024 * 2 / (16 * 1024)).clamp(1, 8);
        let (rr, rratio) = run(banks);
        match local {
            Some((lr, lratio)) => {
                println!(
                    "{:<10} {:>6} {:>12.1} {:>8.3} {:>12} {:>12.1} {:>8.3}",
                    format!("{block_kb}KB"),
                    "1-bank",
                    lr,
                    lratio,
                    format!("{banks}-bank"),
                    rr,
                    rratio
                );
                local_net.push(lr / lratio);
            }
            None => println!(
                "{:<10} {:>6} {:>12} {:>8} {:>12} {:>12.1} {:>8.3}",
                format!("{block_kb}KB"),
                "1-bank",
                "(block too",
                "large)",
                format!("{banks}-bank"),
                rr,
                rratio
            ),
        }
        // Net benefit: rate × compression benefit (1/ratio).
        restricted_net.push(rr / rratio);
    }
    let best_local = local_net.iter().copied().fold(0.0f64, f64::max);
    let best_restricted = restricted_net.iter().copied().fold(0.0f64, f64::max);
    println!(
        "11b: best net benefit (rate x compression benefit): local {:.0}, restricted {:.0} (+{:.0}%)",
        best_local,
        best_restricted,
        (best_restricted / best_local - 1.0) * 100.0
    );

    println!("\n== Figure 11c: memory reference energy (1MB, 64 banks) ==");
    for (name, mode) in [
        ("local", AddressingMode::Local),
        ("restricted", AddressingMode::Restricted),
        ("global", AddressingMode::Global),
    ] {
        println!("{name:<12} {:.1} pJ/ref", mem_energy_pj(1 << 20, 64, mode));
    }
}

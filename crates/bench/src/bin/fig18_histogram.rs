//! Figure 18: Histogram (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::histogram();
    udp_bench::print_comparison_table("Figure 18: Histogram", &rows);
}

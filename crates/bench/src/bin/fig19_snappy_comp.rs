//! Figure 19: Snappy compression (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::snappy_compress();
    udp_bench::print_comparison_table("Figure 19: Snappy compression", &rows);
}
